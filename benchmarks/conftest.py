"""Shared helpers for the per-table / per-figure benchmark harness.

Every bench both *regenerates* its table or figure (writing the rendered
text to ``benchmarks/results/`` and attaching headline numbers to the
pytest-benchmark ``extra_info``) and *asserts* the paper's shape claims —
who wins, by roughly what factor, where the crossovers fall.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_report(results_dir):
    """Write a rendered report under benchmarks/results/<name>.txt."""

    def _save(name: str, text: str) -> pathlib.Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text)
        print(f"\n{text}")
        return path

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive function a single time.

    Model evaluations are microseconds (benchmarked normally); cycle
    simulations take seconds, so benches wrap them with one round.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)
