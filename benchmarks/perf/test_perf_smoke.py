"""Perf-trajectory smoke suite (quick-mode ``bonsai bench``).

Runs the benchmark harness in quick mode, which *also* differentially
verifies on every scenario that the event-driven engine and the naive
stepper produce identical outputs and statistics (the runner raises if
they diverge).  Speedup floors here are deliberately conservative —
about half the full-run targets recorded in ``BENCH_simulator.json`` —
so CI noise cannot flake them; the committed trajectory carries the
headline numbers.
"""

from __future__ import annotations

import copy
import json
import pathlib

import pytest

from repro.bench import SCENARIOS, compare_to_baseline, run_suite
from repro.bench.runner import SCHEMA, build_report
from repro.bench.scenarios import BY_NAME
from repro.errors import ConfigurationError

BASELINE_PATH = pathlib.Path(__file__).parent / "baseline.json"


@pytest.fixture(scope="module")
def quick_results():
    """One quick run of the bandwidth-bound + optimizer scenarios."""
    names = [s.name for s in SCENARIOS if s.bandwidth_bound] + ["optimizer_sweep"]
    return run_suite(names=names, quick=True)


def test_bandwidth_bound_shapes_speed_up(quick_results):
    """The fast engine beats the stepper on every bandwidth-bound shape.

    The runner has already asserted bit-identical outputs; this checks
    the speedups that motivate the engine, at noise-proof floors.
    """
    for result in quick_results:
        if result.kind == "optimizer":
            continue
        floor = (BY_NAME[result.name].target_speedup or 2.0) / 2
        assert result.speedup >= floor, (
            f"{result.name}: {result.speedup:.1f}x under quick-mode "
            f"floor {floor:.1f}x"
        )


def test_end_to_end_figure_benchmark_speeds_up(quick_results):
    """The Fig. 13-regime full sort clears the end-to-end floor."""
    by_name = {result.name: result for result in quick_results}
    assert by_name["e2e_hdd_sort"].speedup >= 1.5
    assert by_name["e2e_hdd_sort"].extra["stages"] >= 2  # genuinely multi-stage


def test_optimizer_memoization_speeds_up(quick_results):
    """A warm shared Bonsai beats fresh instances, with identical ranks."""
    by_name = {result.name: result for result in quick_results}
    sweep = by_name["optimizer_sweep"]
    assert sweep.speedup >= 1.5  # runner asserts the rankings match


def test_report_schema(quick_results):
    report = build_report(quick_results, quick=True)
    assert report["schema"] == SCHEMA
    assert report["quick"] is True
    for name, payload in report["scenarios"].items():
        assert name in BY_NAME
        for key in ("kind", "naive_seconds", "fast_seconds", "speedup"):
            assert key in payload, f"{name} missing {key}"


def test_committed_baseline_is_coherent():
    """The CI gate's baseline names real scenarios and quick mode."""
    baseline = json.loads(BASELINE_PATH.read_text())
    assert baseline["schema"] == SCHEMA
    assert baseline["quick"] is True
    assert set(baseline["scenarios"]) == set(BY_NAME)
    for payload in baseline["scenarios"].values():
        assert payload["fast_seconds"] > 0


def test_baseline_gate_catches_slowdowns():
    baseline = json.loads(BASELINE_PATH.read_text())
    assert compare_to_baseline(baseline, baseline) == []
    slowed = copy.deepcopy(baseline)
    name = next(iter(slowed["scenarios"]))
    slowed["scenarios"][name]["fast_seconds"] = (
        3 * baseline["scenarios"][name]["fast_seconds"]
    )
    problems = compare_to_baseline(slowed, baseline, max_slowdown=2.0)
    assert len(problems) == 1 and name in problems[0]
    # Scenarios unknown to the baseline are ignored, not failed.
    extra = copy.deepcopy(baseline)
    extra["scenarios"]["brand_new_shape"] = {"fast_seconds": 99.0}
    assert compare_to_baseline(extra, baseline) == []


def test_unknown_scenario_rejected():
    with pytest.raises(ConfigurationError, match="unknown scenario"):
        run_suite(names=["no_such_shape"])
