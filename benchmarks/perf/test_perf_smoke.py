"""Perf-trajectory smoke suite (quick-mode ``bonsai bench``).

Runs the benchmark harness in quick mode, which *also* differentially
verifies on every scenario that the event-driven engine and the naive
stepper produce identical outputs and statistics (the runner raises if
they diverge).  Speedup floors here are deliberately conservative —
about half the full-run targets recorded in ``BENCH_simulator.json`` —
so CI noise cannot flake them; the committed trajectory carries the
headline numbers.
"""

from __future__ import annotations

import copy
import dataclasses
import json
import pathlib

import pytest

from repro.bench import SCENARIOS, compare_to_baseline, run_suite
from repro.bench.runner import SCHEMA, build_report
from repro.bench.scenarios import BY_NAME
from repro.errors import ConfigurationError

BASELINE_PATH = pathlib.Path(__file__).parent / "baseline.json"


#: The compute-bound parity shapes: the vectorized record path's claim
#: is that these no longer regress below 1.0x (gated at the quick-mode
#: half-target like every other floor).
COMPUTE_BOUND_NAMES = (
    "micro_balanced",
    "micro_unconstrained",
    "micro_compute_wide",
    "micro_dup_heavy",
)


@pytest.fixture(scope="module")
def quick_results():
    """One quick run of the bandwidth-bound + optimizer scenarios."""
    names = [s.name for s in SCENARIOS if s.bandwidth_bound] + ["optimizer_sweep"]
    return run_suite(names=names, quick=True)


@pytest.fixture(scope="module")
def compute_results():
    """One quick run of the compute-bound parity scenarios."""
    return run_suite(names=list(COMPUTE_BOUND_NAMES), quick=True)


def test_bandwidth_bound_shapes_speed_up(quick_results):
    """The fast engine beats the stepper on every bandwidth-bound shape.

    The runner has already asserted bit-identical outputs; this checks
    the speedups that motivate the engine, at noise-proof floors.
    """
    for result in quick_results:
        if result.kind == "optimizer":
            continue
        floor = (BY_NAME[result.name].target_speedup or 2.0) / 2
        assert result.speedup >= floor, (
            f"{result.name}: {result.speedup:.1f}x under quick-mode "
            f"floor {floor:.1f}x"
        )


def test_compute_bound_shapes_hold_parity(compute_results):
    """The former regression shapes clear their ≥1.0x targets.

    Quick mode halves the floor (0.5x) so host noise cannot flake CI;
    the committed full-mode trajectory carries the real ≥1.0x claim.
    """
    for result in compute_results:
        floor = (BY_NAME[result.name].target_speedup or 1.0) / 2
        assert result.speedup >= floor, (
            f"{result.name}: {result.speedup:.2f}x under quick-mode "
            f"floor {floor:.2f}x"
        )


def test_compute_bound_targets_are_real(compute_results):
    """Every compute-bound shape carries an explicit ≥1.0x target (the
    old null targets let regressions hide) and the runner cross-checked
    the merge backends on each."""
    for name in COMPUTE_BOUND_NAMES:
        assert (BY_NAME[name].target_speedup or 0.0) >= 1.0
    for result in compute_results:
        assert "python" in result.extra["backends_identical"]


def test_end_to_end_figure_benchmark_speeds_up(quick_results):
    """The Fig. 13-regime full sort clears the end-to-end floor."""
    by_name = {result.name: result for result in quick_results}
    assert by_name["e2e_hdd_sort"].speedup >= 1.5
    assert by_name["e2e_hdd_sort"].extra["stages"] >= 2  # genuinely multi-stage


def test_optimizer_memoization_speeds_up(quick_results):
    """A warm shared Bonsai beats fresh instances, with identical ranks."""
    by_name = {result.name: result for result in quick_results}
    sweep = by_name["optimizer_sweep"]
    assert sweep.speedup >= 1.5  # runner asserts the rankings match


def test_report_schema(quick_results):
    report = build_report(quick_results, quick=True)
    assert report["schema"] == SCHEMA
    assert report["quick"] is True
    for name, payload in report["scenarios"].items():
        assert name in BY_NAME
        for key in ("kind", "naive_seconds", "fast_seconds", "speedup"):
            assert key in payload, f"{name} missing {key}"


def test_committed_baseline_is_coherent():
    """The CI gate's baseline names real scenarios and quick mode."""
    baseline = json.loads(BASELINE_PATH.read_text())
    assert baseline["schema"] == SCHEMA
    assert baseline["quick"] is True
    assert set(baseline["scenarios"]) == set(BY_NAME)
    for payload in baseline["scenarios"].values():
        assert payload["fast_seconds"] > 0


def test_baseline_gate_catches_slowdowns():
    baseline = json.loads(BASELINE_PATH.read_text())
    assert compare_to_baseline(baseline, baseline) == []
    slowed = copy.deepcopy(baseline)
    name = next(iter(slowed["scenarios"]))
    slowed["scenarios"][name]["fast_seconds"] = (
        3 * baseline["scenarios"][name]["fast_seconds"]
    )
    problems = compare_to_baseline(slowed, baseline, max_slowdown=2.0)
    assert len(problems) == 1 and name in problems[0]
    # Scenarios unknown to the baseline are ignored, not failed.
    extra = copy.deepcopy(baseline)
    extra["scenarios"]["brand_new_shape"] = {"fast_seconds": 99.0}
    assert compare_to_baseline(extra, baseline) == []


@pytest.fixture(scope="module")
def parallel_results():
    """One quick worker-count scan of both parallel scenarios."""
    results = run_suite(
        names=["parallel_unrolled_sort", "parallel_optimizer_sweep"], quick=True
    )
    return {result.name: result for result in results}


def test_scenarios_carry_one_explicit_seed():
    """Every scenario is seeded (no unseeded data paths) and the suite
    shares one default, so ``--seed`` overrides apply uniformly."""
    assert {scenario.seed for scenario in SCENARIOS} == {1}


def test_workload_generators_are_seed_deterministic():
    micro = BY_NAME["micro_balanced"]
    assert micro.make_runs(quick=True) == micro.make_runs(quick=True)
    assert (
        dataclasses.replace(micro, seed=99).make_runs(quick=True)
        != micro.make_runs(quick=True)
    )
    e2e = BY_NAME["e2e_hdd_sort"]
    assert e2e.make_records(quick=True) == e2e.make_records(quick=True)
    assert (
        dataclasses.replace(e2e, seed=99).make_records(quick=True)
        != e2e.make_records(quick=True)
    )


def test_suite_seed_override_reaches_the_workload(parallel_results):
    """``run_suite(seed=N)`` must rewrite the scenario's data, not just
    its label: the output digest moves with the seed and is stable for
    repeated runs at the same seed."""
    base = parallel_results["parallel_unrolled_sort"]
    (reseeded,) = run_suite(names=["parallel_unrolled_sort"], quick=True, seed=2)
    assert reseeded.extra["digest"] != base.extra["digest"]
    (again,) = run_suite(names=["parallel_unrolled_sort"], quick=True, seed=2)
    assert reseeded.extra["digest"] == again.extra["digest"]


def test_parallel_scenarios_stay_bit_identical(parallel_results):
    """The runner raises on any serial/parallel divergence; `identical`
    records that every jobs setting was actually compared."""
    for result in parallel_results.values():
        assert result.extra["identical"] is True
        assert set(result.extra["jobs_seconds"]) == {"1", "2", "4", "auto"}
        assert result.extra["host_cpus"] >= 1
    assert parallel_results["parallel_unrolled_sort"].extra["digest"]


def test_parallel_headline_matches_host_shape(parallel_results):
    """On a multicore host the headline times four workers; on a
    single-CPU host the pooled legs are annotated and excluded (they
    time process-spawn overhead, not parallelism, and recorded 0.05x
    "slowdowns" before)."""
    from repro.parallel import available_cpus

    expected = "4" if available_cpus() >= 2 else "1"
    for result in parallel_results.values():
        assert result.extra["headline_jobs"] == expected
        assert round(result.fast_seconds, 4) == result.extra["jobs_seconds"][expected]
        if expected == "1":
            assert "multi_job_timing" in result.extra
            assert result.speedup == 1.0
        else:
            assert "multi_job_timing" not in result.extra


def test_headline_key_picks_serial_leg_on_one_cpu(monkeypatch):
    import repro.bench.runner as runner

    monkeypatch.setattr(runner, "available_cpus", lambda: 1)
    key, note = runner._headline_jobs_key()
    assert key == "1" and "single-CPU" in note
    monkeypatch.setattr(runner, "available_cpus", lambda: 8)
    key, note = runner._headline_jobs_key()
    assert key == "4" and note == ""


def test_parallel_sort_speedup_floor_on_multicore(parallel_results):
    """Half the full-run 2.5x target, and only where 4 workers can
    physically exist; single-core hosts record honest <1x numbers."""
    result = parallel_results["parallel_unrolled_sort"]
    if result.extra["host_cpus"] < 4:
        pytest.skip("speedup floor needs >= 4 host CPUs")
    assert result.speedup >= 1.25


@pytest.fixture(scope="module")
def cluster_result():
    """One quick run of the executed cluster-sort scenario."""
    (result,) = run_suite(names=["cluster_sort"], quick=True)
    return result


def test_cluster_sort_executes_verified_with_full_report(cluster_result):
    """Every jobs leg landed on the serial single-tree output bytes
    (the runner raises otherwise), and the measured Table I figure sits
    next to the model's prediction in the report."""
    extra = cluster_result.extra
    assert extra["identical"] is True
    assert set(extra["jobs_seconds"]) == {"1", "2", "4", "auto"}
    assert extra["digest"]
    assert extra["cluster_nodes"] == 4
    assert extra["measured_ms_per_gb"] > 0
    assert extra["modeled_ms_per_gb"] > 0
    assert extra["measured_vs_modeled"] > 0
    assert extra["measured_skew"] >= 1.0
    assert extra["skew_leg"]["identical"] is True
    assert extra["skew_leg"]["measured_skew"] >= 1.0


def test_cluster_sort_headline_matches_host_shape(cluster_result):
    """Same exclusion rule as the parallel scenarios: single-CPU hosts
    pin the headline to the serial leg and annotate why."""
    from repro.parallel import available_cpus

    expected = "4" if available_cpus() >= 2 else "1"
    assert cluster_result.extra["headline_jobs"] == expected
    assert (
        round(cluster_result.fast_seconds, 4)
        == cluster_result.extra["jobs_seconds"][expected]
    )
    if expected == "1":
        assert "multi_job_timing" in cluster_result.extra
    else:
        assert "multi_job_timing" not in cluster_result.extra


def test_cluster_sort_speedup_floor_on_multicore(cluster_result):
    """Half the ≥1.0x full-run target, and only where four workers can
    physically exist: the executed multi-node leg must not cost more
    than twice the single-process serial sort it replaces."""
    if cluster_result.extra["host_cpus"] < 4:
        pytest.skip("speedup floor needs >= 4 host CPUs")
    floor = (BY_NAME["cluster_sort"].target_speedup or 1.0) / 2
    assert cluster_result.speedup >= floor


def test_unknown_scenario_rejected():
    with pytest.raises(ConfigurationError, match="unknown scenario"):
        run_suite(names=["no_such_shape"])


class TestObservabilityOverhead:
    """The ≤2% instrumentation-off overhead gate.

    Strategy: count every instrumentation call the obs workload makes
    (one observed pass), measure the per-call cost of the disabled
    path, and require that their product fits in 2% of the workload's
    uninstrumented wall clock.  This bounds what instrumentation *could*
    add — it fails if the disabled path grows allocations/locks, or if
    someone lands per-record instrumentation (call counts scaling with
    data size blow the budget immediately) — without flaking on the
    noise of comparing two close wall-clock measurements.
    """

    def test_obs_scenario_reports_budget_inputs(self):
        from repro.bench import run_suite as run

        (result,) = run(names=["obs_noop_overhead"], quick=True)
        assert result.extra["metric_updates"] > 0
        assert result.extra["spans_closed"] > 0
        assert result.fast_seconds > 0 and result.naive_seconds > 0

    def test_disabled_instrumentation_fits_two_percent_budget(self):
        import time

        from repro.bench.scenarios import run_obs_workload
        from repro.obs.runtime import DISABLED, activated, live_observation

        scenario = BY_NAME["obs_noop_overhead"]
        records = scenario.make_records(quick=True)

        live = live_observation()
        with activated(live):
            run_obs_workload(scenario, records)
        updates = live.registry.total_updates
        spans = live.tracer.spans_closed
        assert updates > 0 and spans > 0

        calls = 200_000
        start = time.perf_counter()
        for _ in range(calls):
            DISABLED.count("x", 1)
        count_cost = (time.perf_counter() - start) / calls
        start = time.perf_counter()
        for _ in range(calls):
            with DISABLED.span("x"):
                pass
        span_cost = (time.perf_counter() - start) / calls

        with activated(DISABLED):
            start = time.perf_counter()
            run_obs_workload(scenario, records)
            runtime = time.perf_counter() - start

        ceiling = updates * count_cost + spans * span_cost
        assert ceiling <= 0.02 * runtime, (
            f"{updates} counter updates and {spans} spans could add "
            f"{ceiling * 1e6:.0f}us to a {runtime * 1e3:.1f}ms run "
            f"(gate: {0.02 * runtime * 1e6:.0f}us)"
        )
