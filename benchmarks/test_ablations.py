"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation switches one mechanism off (or mis-sizes it) and verifies
the performance consequence the paper attributes to it:

* the 16-record presorter saves one stage and 10-20% of sorting time
  (§VI-C1);
* batched reads are what keep DRAM at peak bandwidth — unbatched access
  loses a large fraction of it (§II, §V-A);
* bit-reversed run placement keeps partial final stages at full rate
  (the consecutive-placement alternative halves root throughput);
* p-scaling beats l-scaling until bandwidth saturates (§III-A1).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import render_table
from repro.core import presets
from repro.core.configuration import AmtConfig
from repro.core.parameters import ArrayParams, MergerArchParams
from repro.core.performance import PerformanceModel
from repro.memory.dram import DdrDram
from repro.units import GB, KiB


class TestPresorterAblation:
    def test_presorter_saves_10_to_20_percent(self, benchmark, save_report):
        platform = presets.aws_f1_measured()
        arch = MergerArchParams()
        config = AmtConfig(p=32, leaves=64)

        sizes = (4, 8, 16, 64)

        def evaluate():
            out = {}
            for label, presort in (("without presorter", 1), ("with presorter", 16)):
                model = PerformanceModel(
                    hardware=platform.hardware, arch=arch, presort_run=presort
                )
                out[label] = [
                    model.latency_single(config, ArrayParams.from_bytes(size * GB))
                    for size in sizes
                ]
            return out

        results = run_once(benchmark, evaluate)
        rows = []
        savings = []
        for index, size in enumerate(sizes):
            without = results["without presorter"][index]
            with_presort = results["with presorter"][index]
            saving = 1 - with_presort / without
            savings.append(saving)
            rows.append((f"{size} GB", round(without, 2), round(with_presort, 2),
                         f"{100 * saving:.0f}%"))
        # §VI-C1: "reduces ... total execution time by 10-20%, depending
        # on input size" — sizes where the presorter crosses a stage
        # boundary save 1/6 of the stages; others (4 GB here) save none.
        for saving in savings[1:]:
            assert 0.10 <= saving <= 0.25
        assert savings[0] == pytest.approx(0.0)
        save_report(
            "ablation_presorter",
            render_table(("size", "no presort s", "presort s", "saving"), rows,
                         title="Ablation: 16-record presorter (§VI-C1)"),
        )


class TestBatchingAblation:
    def test_unbatched_reads_lose_bandwidth(self, benchmark, save_report):
        dram = DdrDram()

        def evaluate():
            return {
                "64 B (unbatched)": dram.batching_efficiency(64),
                "1 KiB": dram.batching_efficiency(1 * KiB),
                "4 KiB (paper)": dram.batching_efficiency(4 * KiB),
            }

        efficiencies = run_once(benchmark, evaluate)
        rows = [(k, f"{100 * v:.1f}%") for k, v in efficiencies.items()]
        save_report(
            "ablation_batching",
            render_table(("burst size", "of peak bandwidth"), rows,
                         title="Ablation: read batching (§II, §V-A)"),
        )
        assert efficiencies["64 B (unbatched)"] < 0.75
        assert efficiencies["4 KiB (paper)"] > 0.99


class TestLateStageHandlingAblation:
    def test_shrink_and_placement_keep_late_stages_fast(
        self, benchmark, save_report
    ):
        """Merge 2 long runs on an AMT(8, 16) under three policies.

        Late stages have few long runs.  Without care they trickle
        record-by-record through 1-merger leaves: tree auto-shrink (runs
        enter near the root as wide tuples) recovers full rate, and
        bit-reversed placement at least keeps both root subtrees busy.
        Eq. 1's full-rate-per-stage assumption relies on the first.
        """
        import random

        import repro.hw.loader as loader_module
        from repro.hw.tree import simulate_merge

        rng = random.Random(1)
        runs = [
            sorted(rng.randrange(1, 10**9) for _ in range(8192)) for _ in range(2)
        ]

        def simulate_all():
            _, shrunk = simulate_merge(p=8, leaves=16, runs=runs)
            _, spread = simulate_merge(p=8, leaves=16, runs=runs, auto_shrink=False)
            original = loader_module._bit_reverse
            loader_module._bit_reverse = lambda value, bits: value  # identity
            try:
                _, consecutive = simulate_merge(
                    p=8, leaves=16, runs=runs, auto_shrink=False
                )
            finally:
                loader_module._bit_reverse = original
            return shrunk.cycles, spread.cycles, consecutive.cycles

        shrunk, spread, consecutive = run_once(benchmark, simulate_all)
        save_report(
            "ablation_late_stage",
            render_table(
                ("policy", "stage cycles"),
                [
                    ("auto-shrink (default)", shrunk),
                    ("full tree, bit-reversed leaves", spread),
                    ("full tree, consecutive leaves", consecutive),
                ],
                title="Ablation: merging 2 runs of 8192 records on AMT(8, 16)",
            ),
        )
        # Both mechanisms matter: shrink ~2x over spread, spread ~2x over
        # consecutive (one subtree carries everything).
        assert spread > 1.6 * shrunk
        assert consecutive > 1.6 * spread


class TestPVersusLeavesAblation:
    def test_p_beats_leaves_until_saturation(self, benchmark, save_report):
        platform = presets.aws_f1()
        model = PerformanceModel(
            hardware=platform.hardware, arch=MergerArchParams(), presort_run=16
        )
        array = ArrayParams.from_bytes(16 * GB)

        def evaluate():
            return {
                "AMT(4, 256)": model.latency_single(AmtConfig(p=4, leaves=256), array),
                "AMT(8, 256)": model.latency_single(AmtConfig(p=8, leaves=256), array),
                "AMT(4, 1024)": model.latency_single(AmtConfig(p=4, leaves=1024), array),
                "AMT(32, 64)": model.latency_single(AmtConfig(p=32, leaves=64), array),
                "AMT(32, 256)": model.latency_single(AmtConfig(p=32, leaves=256), array),
            }

        latencies = run_once(benchmark, evaluate)
        save_report(
            "ablation_p_vs_leaves",
            render_table(
                ("config", "seconds"),
                [(k, round(v, 2)) for k, v in latencies.items()],
                title="Ablation: p-scaling vs leaf-scaling (§III-A1)",
            ),
        )
        # Below saturation doubling p beats quadrupling leaves.
        assert latencies["AMT(8, 256)"] < latencies["AMT(4, 1024)"]
        # At saturation (p=32 = beta), only leaves still help.
        assert latencies["AMT(32, 256)"] <= latencies["AMT(32, 64)"]
