"""Energy extension of Fig. 12 (§VI-C2).

"Memory accesses account for most of the energy consumed by many
computer systems.  Thus, bandwidth-efficiency is directly related to
energy consumption."  This bench quantifies that link: joules per sorted
GB, computed from each approach's data-movement pass count.
"""

from __future__ import annotations


from benchmarks.conftest import run_once
from repro.analysis.energy import (
    EnergyModel,
    baseline_energy_per_gb,
    bonsai_energy_per_gb,
)
from repro.analysis.tables import render_table
from repro.units import GB


def compute_energy_table():
    size = 16 * GB
    model = EnergyModel()
    return {
        # Bonsai DRAM sorter: 4 stages at this size with l = 256.
        "Bonsai AMT(32, 256)": bonsai_energy_per_gb(size, stages=4, model=model),
        # Implemented l = 64 sorter: 5 stages.
        "Bonsai AMT(32, 64)": bonsai_energy_per_gb(size, stages=5, model=model),
        # LSD radix over 32-bit keys: 4 digit passes, 2 bytes moved per
        # byte per pass.
        "radix sort (4 passes)": baseline_energy_per_gb(
            size, bytes_moved_per_byte_sorted=8, model=model
        ),
        # Sample sort: scatter + per-bucket sort + gather ~ 3 passes.
        "sample sort (~3 passes)": baseline_energy_per_gb(
            size, bytes_moved_per_byte_sorted=6, model=model
        ),
        # Flash-based external sort (Terabyte Sort style): 7 flash trips.
        "flash merge (7 passes)": EnergyModel().joules_per_gb(
            size, dram_passes=0, flash_passes=7
        ),
    }


def test_energy(benchmark, save_report):
    table = run_once(benchmark, compute_energy_table)

    rows = [(name, f"{joules:.2f} J/GB") for name, joules in table.items()]
    report = render_table(
        ("approach", "energy per sorted GB"),
        rows,
        title="Energy extension of Fig. 12 - data movement energy at 16 GB",
    )
    save_report("energy_comparison", report)

    # Energy tracks pass counts: fewer stages, less energy.
    assert table["Bonsai AMT(32, 256)"] < table["Bonsai AMT(32, 64)"]
    # The flash path's per-byte cost dwarfs everything DRAM-resident.
    assert table["flash merge (7 passes)"] > 5 * table["Bonsai AMT(32, 64)"]
    # Bonsai's wide tree is within the same energy class as radix (both
    # are pass-count-optimal families); the flash external sorter is not.
    ratio = table["Bonsai AMT(32, 256)"] / table["radix sort (4 passes)"]
    assert 0.8 < ratio < 1.3
    benchmark.extra_info["bonsai_j_per_gb"] = table["Bonsai AMT(32, 256)"]
