"""Fig. 10: measured LUT utilization of various AMTs vs the resource model.

The paper synthesised every AMT with p <= 32 and l <= 256 and found Eq. 8
within 5% of Vivado's reports.  Here the structural component enumeration
(what a synthesis report counts) plays "measured" against Eq. 8's
closed form, over the same configuration grid.
"""

from __future__ import annotations


from benchmarks.conftest import run_once
from repro.analysis.tables import render_table
from repro.core import presets
from repro.core.configuration import AmtConfig
from repro.core.parameters import MergerArchParams
from repro.core.validation import (
    geometric_mean_error,
    validate_resources,
    worst_relative_error,
)

GRID = [
    AmtConfig(p=p, leaves=leaves)
    for p in (1, 2, 4, 8, 16, 32)
    for leaves in (4, 16, 64, 256)
]


def run_grid():
    platform = presets.aws_f1()
    return validate_resources(
        GRID, hardware=platform.hardware, arch=MergerArchParams()
    )


def test_fig10(benchmark, save_report):
    points = run_once(benchmark, run_grid)

    rows = [
        (
            point.config.describe(),
            round(point.measured),
            round(point.predicted),
            f"{100 * point.relative_error:.1f}%",
        )
        for point in points
    ]
    report = render_table(
        ("AMT", "structural LUTs", "Eq. 8 LUTs", "error"),
        rows,
        title="Fig. 10 - LUT utilization: structural enumeration vs Eq. 8",
    )
    save_report("fig10_lut_validation", report)

    # Paper claim: within 5% on average; every config within ~12%
    # (Eq. 8 deliberately over-counts couplers on 1-merger levels).
    assert geometric_mean_error(points) < 0.08
    assert worst_relative_error(points) < 0.12
    benchmark.extra_info["mean_error"] = geometric_mean_error(points)
