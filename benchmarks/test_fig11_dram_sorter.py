"""Fig. 11: the DRAM sorter vs the best CPU / GPU / FPGA sorters, 4-32 GB.

Regenerates the comparison at each size and checks the paper's headline
speedups: "when sorting 32 GB data our implementation has 2.3x, 3.7x, and
1.3x lower sorting time than the best designs on CPUs, FPGAs, and GPUs".
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.charts import ascii_bar_chart
from repro.analysis.sweeps import size_sweep
from repro.analysis.tables import render_table
from repro.baselines.published import PUBLISHED_SORTERS
from repro.units import GB

SIZES_GB = (4, 8, 16, 32)


def compute_ours():
    return size_sweep([int(size * GB) for size in SIZES_GB])


def test_fig11(benchmark, save_report):
    ours = run_once(benchmark, compute_ours)

    paradis = PUBLISHED_SORTERS["paradis"]
    hrs = PUBLISHED_SORTERS["hrs"]
    samplesort = PUBLISHED_SORTERS["samplesort"]
    rows = []
    for size, point in zip(SIZES_GB, ours):
        rows.append(
            (
                f"{size} GB",
                paradis.at_size_gb(size),
                hrs.at_size_gb(size),
                samplesort.at_size_gb(size),
                round(point["ms_per_gb"], 1),
            )
        )
    report = render_table(
        ("size", "PARADIS (CPU)", "HRS (GPU)", "SampleSort (FPGA)", "Bonsai"),
        rows,
        title="Fig. 11 - sorting time per GB (lower is better)",
    )
    chart = ascii_bar_chart(
        ["PARADIS", "HRS", "SampleSort", "Bonsai"],
        [
            paradis.at_size_gb(32),
            hrs.at_size_gb(32),
            samplesort.at_size_gb(32),
            ours[-1]["ms_per_gb"],
        ],
        title="at 32 GB (ms/GB)",
        unit=" ms/GB",
    )
    save_report("fig11_dram_sorter", report + "\n" + chart)

    our_32 = ours[-1]["ms_per_gb"]
    assert paradis.at_size_gb(32) / our_32 == pytest.approx(2.3, abs=0.1)
    assert samplesort.at_size_gb(32) / our_32 == pytest.approx(3.7, abs=0.1)
    assert hrs.at_size_gb(32) / our_32 == pytest.approx(1.3, abs=0.1)
    # Bonsai's per-GB latency is flat across 4-32 GB (same stage count).
    per_gb = [point["ms_per_gb"] for point in ours]
    assert max(per_gb) == pytest.approx(min(per_gb))
    # Bonsai leads at every size.
    for size, point in zip(SIZES_GB, ours):
        for spec in (paradis, hrs, samplesort):
            assert point["ms_per_gb"] < spec.at_size_gb(size)
    benchmark.extra_info["speedup_cpu_32gb"] = paradis.at_size_gb(32) / our_32
