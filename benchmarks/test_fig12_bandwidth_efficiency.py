"""Fig. 12: bandwidth-efficiency at 16 GB input size.

Bonsai at 8 GB/s and 32 GB/s DRAM against PARADIS / HRS / SampleSort,
each normalised by its platform's memory bandwidth.  Headline claim:
"3.3x better bandwidth-efficiency than any other sorter" at 8 GB/s and
"2.25x" at 32 GB/s (we reproduce the ordering and a >= 3x lead; the
exact paper ratios embed their measured 7.19 GB/s throughput).
"""

from __future__ import annotations


from benchmarks.conftest import run_once
from repro.analysis.bandwidth_efficiency import efficiency_comparison
from repro.analysis.charts import ascii_bar_chart
from repro.analysis.tables import render_table


def test_fig12(benchmark, save_report):
    entries = run_once(benchmark, efficiency_comparison, 16.0)

    rows = [
        (
            entry.name,
            round(entry.throughput_gb_per_s, 2),
            round(entry.bandwidth_gb_per_s, 1),
            round(entry.efficiency, 3),
        )
        for entry in entries
    ]
    report = render_table(
        ("sorter", "sort GB/s", "memory GB/s", "efficiency"),
        rows,
        title="Fig. 12 - bandwidth-efficiency at 16 GB",
        precision=3,
    )
    chart = ascii_bar_chart(
        [entry.name for entry in entries],
        [entry.efficiency for entry in entries],
        title="bandwidth-efficiency",
    )
    save_report("fig12_bandwidth_efficiency", report + "\n" + chart)

    efficiency = {entry.name: entry.efficiency for entry in entries}
    best_other = max(
        value for name, value in efficiency.items() if not name.startswith("Bonsai")
    )
    assert efficiency["Bonsai 8"] / best_other > 3.0   # paper: 3.3x
    assert efficiency["Bonsai 32"] / best_other > 2.25  # paper: 2.25x
    # Ordering of the non-Bonsai bars: SampleSort > PARADIS > HRS.
    assert efficiency["SampleSort"] > efficiency["PARADIS"] > efficiency["HRS"]
    benchmark.extra_info["bonsai8_over_best"] = efficiency["Bonsai 8"] / best_other
