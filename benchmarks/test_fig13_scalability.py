"""Fig. 13: latency per GB of latency-optimized Bonsai sorters across
0.5 GB - 1 PB, with the four annotated latency steps.

Shape claims under test: the curve is a staircase with steps at 2 GB
(extra DRAM stage), past 64 GB (switch to the SSD sorter), and past the
single-round-trip capacity of phase two (extra second-phase stage,
x1.5), with a flat plateau between steps.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.charts import ascii_line_chart
from repro.analysis.tables import render_table
from repro.core.scalability import ScalabilityModel
from repro.units import GB, TB, format_bytes


def compute_curve():
    model = ScalabilityModel()
    sizes = ScalabilityModel.paper_sizes()
    return model, sizes, model.curve(sizes)


def test_fig13(benchmark, save_report):
    model, sizes, points = run_once(benchmark, compute_curve)

    rows = [
        (
            format_bytes(point.total_bytes),
            point.regime,
            point.stages,
            round(point.latency_ms_per_gb, 1),
        )
        for point in points
    ]
    report = render_table(
        ("input size", "regime", "stages", "ms/GB"),
        rows,
        title="Fig. 13 - latency per GB across input sizes",
    )
    chart = ascii_line_chart(
        [point.total_bytes for point in points],
        {"bonsai": [point.latency_ms_per_gb for point in points]},
        title="Fig. 13 (log x)",
        log_x=True,
    )
    jumps = model.breakpoints(sizes)
    annotations = "\n".join(
        f"  at {format_bytes(jump['at_bytes'])}: x{jump['factor']:.2f} ({jump['cause']})"
        for jump in jumps
    )
    save_report("fig13_scalability", report + "\n" + chart + "\nbreakpoints:\n" + annotations)

    causes = [jump["cause"] for jump in jumps]
    assert causes[0] == "extra stage"
    assert causes[1] == "switch to SSD sorter"
    assert "extra stage in second phase" in causes
    positions = {jump["cause"]: jump["at_bytes"] for jump in jumps}
    assert positions["extra stage"] == 2 * GB
    assert positions["switch to SSD sorter"] == 128 * GB
    # The second-phase step lands at the first sampled size past the
    # 256 x 64 GB = ~16 TB single-trip capacity (paper's arrow: 32 TB).
    assert 16 * TB < positions["extra stage in second phase"] <= 64 * TB
    # Plateaus are flat: 4-64 GB all share one latency.
    dram_plateau = [
        point.latency_ms_per_gb
        for point in points
        if 4 * GB <= point.total_bytes <= 64 * GB
    ]
    assert max(dram_plateau) == pytest.approx(min(dram_plateau))
    benchmark.extra_info["steps"] = len(jumps)
