"""Fig. 4 / §III-A3: pipelined AMTs keep the I/O bus at constant rate.

Fig. 4 is the paper's pipelined-configuration diagram; its testable
claim is behavioural: "the pipelined approach ensures a constant
throughput of sorted data to the I/O bus."  This bench drives a queue of
arrays through the cycle-level two-stage pipeline and measures the
completion cadence: after the fill, sorted arrays must emerge at even
intervals close to the single-stage service time (not the two-stage
sum), and the pipeline's makespan must beat back-to-back execution.
"""

from __future__ import annotations

import random


from benchmarks.conftest import run_once
from repro.analysis.tables import render_table
from repro.hw.pipeline import PipelineSimulation

ARRAY_COUNT = 6
ARRAY_RECORDS = 256


def run_pipeline():
    rng = random.Random(4)
    arrays = [
        [rng.randrange(1, 10**6) for _ in range(ARRAY_RECORDS)]
        for _ in range(ARRAY_COUNT)
    ]
    pipeline = PipelineSimulation(p=4, leaves=4, lambda_pipe=2, presort_run=16)
    total = pipeline.run(arrays)
    sequential = 0
    for array in arrays:
        fresh = PipelineSimulation(p=4, leaves=4, lambda_pipe=2, presort_run=16)
        sequential += fresh.run([array])
    return pipeline, total, sequential, arrays


def test_fig4_pipeline_cadence(benchmark, save_report):
    pipeline, total, sequential, arrays = run_once(benchmark, run_pipeline)

    intervals = pipeline.completion_intervals()
    rows = [
        (index, pipeline.completion_cycles[index])
        for index in sorted(pipeline.completion_cycles)
    ]
    report = render_table(
        ("array", "completion cycle"),
        rows,
        title="Fig. 4 / §III-A3 - pipelined completion cadence "
              f"(intervals: {intervals})",
    )
    report += (
        f"\npipelined makespan: {total} cycles; "
        f"back-to-back: {sequential} cycles "
        f"({sequential / total:.2f}x slower)\n"
    )
    save_report("fig4_pipeline_cadence", report)

    for index, array in enumerate(arrays):
        assert pipeline.outputs[index] == sorted(array)
    # Constant cadence after the fill.
    steady = intervals[1:]
    assert max(steady) - min(steady) <= 0.2 * max(steady)
    # Overlap wins: the pipeline is meaningfully faster than serial runs.
    assert total < 0.75 * sequential
    benchmark.extra_info["speedup_vs_serial"] = sequential / total
