"""Fig. 5: optimal sorting time vs off-chip memory bandwidth.

Sweeps DRAM bandwidth, re-optimising the AMT configuration at each point
(16 GB of 32-bit records), against the flat published CPU/GPU/FPGA lines
and the I/O lower bound.  Shape claims: Bonsai tracks the lower bound
within its stage count, adapts its configuration across the sweep, and
overtakes every baseline once bandwidth passes a small threshold.
"""

from __future__ import annotations


from benchmarks.conftest import run_once
from repro.analysis.charts import ascii_line_chart
from repro.analysis.sweeps import bandwidth_sweep
from repro.analysis.tables import render_table
from repro.baselines.lower_bounds import io_lower_bound_seconds
from repro.baselines.published import PUBLISHED_SORTERS
from repro.units import GB

BANDWIDTHS_GB = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
SIZE_BYTES = 16 * GB


def compute_sweep():
    return bandwidth_sweep([b * GB for b in BANDWIDTHS_GB], total_bytes=SIZE_BYTES)


def test_fig5(benchmark, save_report):
    points = run_once(benchmark, compute_sweep)

    baselines = {
        "PARADIS (CPU)": PUBLISHED_SORTERS["paradis"].at_size_gb(16) * 16 / 1e3,
        "HRS (GPU)": PUBLISHED_SORTERS["hrs"].at_size_gb(16) * 16 / 1e3,
        "SampleSort (FPGA)": PUBLISHED_SORTERS["samplesort"].at_size_gb(16) * 16 / 1e3,
    }
    rows = []
    for point in points:
        bound = io_lower_bound_seconds(SIZE_BYTES, point["bandwidth"])
        rows.append(
            (
                f"{point['bandwidth'] / GB:.0f} GB/s",
                point["config"].describe(),
                round(point["seconds"], 2),
                round(bound, 2),
            )
        )
    report = render_table(
        ("DRAM bandwidth", "optimal config", "Bonsai s", "I/O bound s"),
        rows,
        title="Fig. 5 - optimal sorting time vs DRAM bandwidth (16 GB)",
    )
    chart = ascii_line_chart(
        list(BANDWIDTHS_GB),
        {
            "bonsai": [p["seconds"] for p in points],
            "io-bound": [
                io_lower_bound_seconds(SIZE_BYTES, b * GB) for b in BANDWIDTHS_GB
            ],
            "paradis": [baselines["PARADIS (CPU)"]] * len(BANDWIDTHS_GB),
            "hrs": [baselines["HRS (GPU)"]] * len(BANDWIDTHS_GB),
        },
        title="Fig. 5 (log-log)",
        log_x=True,
        log_y=True,
    )
    save_report("fig5_bandwidth_sweep", report + "\n" + chart)

    seconds = {b: p["seconds"] for b, p in zip(BANDWIDTHS_GB, points)}
    # Never beats the I/O bound; always within a small stage factor of it.
    for b, point in zip(BANDWIDTHS_GB, points):
        bound = io_lower_bound_seconds(SIZE_BYTES, b * GB)
        assert point["seconds"] >= bound
        # Within a small stage-count factor of the bound; at extreme
        # bandwidths the p <= 32 compute cap (not memory) dominates and
        # the gap widens to ~stages x (beta / (lambda p f r)).
        assert point["seconds"] <= 16 * bound
    # Monotone improvement with bandwidth.
    ordered = [seconds[b] for b in BANDWIDTHS_GB]
    assert ordered == sorted(ordered, reverse=True)
    # Crossovers: sorting takes ~4 streamed passes, so Bonsai's curve
    # crosses a baseline's flat line at roughly 4x that baseline's
    # sorted-throughput — the CPU line by 16 GB/s, the GPU/FPGA lines by
    # 32 GB/s — and leads everything comfortably from 32 GB/s up.
    assert seconds[8] > baselines["PARADIS (CPU)"] / 2  # still contested low
    assert seconds[16] < baselines["PARADIS (CPU)"]
    assert seconds[32] < baselines["HRS (GPU)"]
    assert seconds[32] < baselines["SampleSort (FPGA)"]
    assert seconds[64] < min(baselines.values())
    # Configuration adapts: low-beta picks small p, high-beta unrolls.
    assert points[0]["config"].p < points[5]["config"].p
    benchmark.extra_info["seconds_at_32GBs"] = seconds[32]
