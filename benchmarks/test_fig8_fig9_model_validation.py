"""Figs. 8 and 9: measured vs model-predicted sorting time of various AMTs.

The paper's bars are hardware measurements at 512 MB-16 GB; here the
cycle-level simulator plays the hardware at a reduced scale and the
performance model (Eq. 1) provides the dots.  §VI-B's claim under test:
"All sorting time results are within 10% of those predicted by our
performance model" (we allow 15% at simulation scale, where startup
transients weigh relatively more).

Fig. 8's AMT set varies throughput p at fixed leaves; Fig. 9 varies
leaves at fixed p — covering both axes of the §VI-B2 observations.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import render_table
from repro.core import presets
from repro.core.configuration import AmtConfig
from repro.core.parameters import MergerArchParams
from repro.core.validation import validate_performance

FIG8_CONFIGS = [
    AmtConfig(p=1, leaves=16),
    AmtConfig(p=2, leaves=16),
    AmtConfig(p=4, leaves=16),
    AmtConfig(p=8, leaves=16),
]
FIG9_CONFIGS = [
    AmtConfig(p=4, leaves=4),
    AmtConfig(p=4, leaves=8),
    AmtConfig(p=4, leaves=32),
    AmtConfig(p=4, leaves=64),
]
#: The paper sweeps 512 MB-16 GB per AMT; we sweep the simulator's scale.
N_RECORDS_SWEEP = (16_384, 32_768, 65_536)


def run_validation(configs):
    platform = presets.aws_f1()
    return {
        n_records: validate_performance(
            configs,
            n_records=n_records,
            hardware=platform.hardware,
            arch=MergerArchParams(),
        )
        for n_records in N_RECORDS_SWEEP
    }


@pytest.mark.parametrize(
    "figure,configs",
    [("fig8", FIG8_CONFIGS), ("fig9", FIG9_CONFIGS)],
    ids=["fig8_vary_p", "fig9_vary_leaves"],
)
def test_model_validation(benchmark, save_report, figure, configs):
    by_size = run_once(benchmark, run_validation, configs)

    rows = []
    for n_records, points in by_size.items():
        for point in points:
            rows.append(
                (
                    point.config.describe(),
                    n_records,
                    round(point.measured * 1e6, 1),
                    round(point.predicted * 1e6, 1),
                    f"{100 * point.relative_error:.1f}%",
                )
            )
    report = render_table(
        ("AMT", "records", "simulated us", "predicted us", "error"),
        rows,
        title=f"{figure}: measured (cycle sim) vs model across input sizes",
    )
    save_report(f"{figure}_model_validation", report)

    worst = 0.0
    for n_records, points in by_size.items():
        for point in points:
            worst = max(worst, point.relative_error)
            assert point.relative_error < 0.15, (
                f"{point.config.describe()} at {n_records} records"
            )
        measured = [point.measured for point in points]
        if figure == "fig8":
            # §VI-B2: higher p strictly faster below bandwidth saturation.
            assert measured == sorted(measured, reverse=True)
        else:
            # §VI-B2: more leaves never slower (stage-count steps down).
            assert measured[-1] <= measured[0]
    # Error shrinks (or at least does not grow) with input size: the
    # residual is the startup transient, amortised at scale.
    largest = max(N_RECORDS_SWEEP)
    smallest = min(N_RECORDS_SWEEP)
    mean_large = sum(p.relative_error for p in by_size[largest]) / len(configs)
    mean_small = sum(p.relative_error for p in by_size[smallest]) / len(configs)
    assert mean_large <= mean_small + 0.02
    benchmark.extra_info["worst_error"] = worst
