"""§VI-D: HBM sorter validation — unrolling scales linearly.

The paper could not access HBM hardware, so it validated the projection
on DRAM banks: "we showed that two p = 16 AMTs saturate DRAM bandwidth,
with each AMT using two DRAM banks.  We also showed that four p = 8 AMTs
saturate DRAM bandwidth, with each AMT working independently on a single
DRAM bank.  This demonstrates that unrolling scales both performance and
resource utilization linearly with the unrolling amount."

We rerun that experiment: simulate a single AMT at its per-bank
bandwidth share and check the aggregate over λ AMTs reaches the full
32 GB/s; check resource usage is exactly λ-linear.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import render_table
from repro.core import presets
from repro.core.configuration import AmtConfig
from repro.core.parameters import MergerArchParams
from repro.core.resources import ResourceModel
from repro.hw.tree import simulate_merge
from repro.units import GB

#: The paper's two validation points: (p, lambda) pairs saturating 32 GB/s.
VALIDATION_POINTS = ((16, 2), (8, 4))


def simulate_unrolled_point(p: int, lam: int) -> float:
    """Aggregate throughput of λ AMTs, each on a β/λ bandwidth share."""
    per_amt_bandwidth = 32 * GB / lam
    budget = per_amt_bandwidth / 250e6  # bytes per cycle
    rng = random.Random(p * lam)
    runs = [sorted(rng.randrange(1, 10**9) for _ in range(2048)) for _ in range(8)]
    _, stats = simulate_merge(
        p=p,
        leaves=8,
        runs=runs,
        read_bytes_per_cycle=budget,
        write_bytes_per_cycle=budget,
        check_sorted_inputs=False,
    )
    per_amt_bytes_per_s = stats.records_per_cycle * 4 * 250e6
    return lam * per_amt_bytes_per_s


def run_points():
    return {point: simulate_unrolled_point(*point) for point in VALIDATION_POINTS}


def test_hbm_unrolling(benchmark, save_report):
    aggregates = run_once(benchmark, run_points)

    platform = presets.aws_f1()
    resources = ResourceModel(
        hardware=platform.hardware, library=MergerArchParams().library
    )
    rows = []
    for (p, lam), aggregate in aggregates.items():
        single = resources.lut_usage(AmtConfig(p=p, leaves=8))
        unrolled = resources.lut_usage(AmtConfig(p=p, leaves=8, lambda_unroll=lam))
        rows.append(
            (
                f"{lam} x AMT({p}, 8)",
                f"{aggregate / GB:.1f} GB/s",
                round(unrolled),
                round(unrolled / single, 2),
            )
        )
    report = render_table(
        ("configuration", "aggregate throughput", "LUTs", "LUT ratio vs single"),
        rows,
        title="§VI-D - unrolling scales performance and resources linearly",
    )
    save_report("hbm_unrolling", report)

    for (p, lam), aggregate in aggregates.items():
        # Each AMT saturates its bank share, so the aggregate reaches
        # the full 32 GB/s within the simulator's startup transient.
        assert aggregate > 0.85 * 32 * GB, f"{lam} x p={p}"
        # Resource linearity is exact (§III-B).
        single = resources.lut_usage(AmtConfig(p=p, leaves=8))
        unrolled = resources.lut_usage(AmtConfig(p=p, leaves=8, lambda_unroll=lam))
        assert unrolled == pytest.approx(lam * single)
    benchmark.extra_info["aggregate_16x2"] = aggregates[(16, 2)] / GB
