"""§VI-B's accuracy claims as a standing benchmark.

Performance model vs cycle simulator across a mixed configuration sweep
(the paper's 10% band, widened to 15% at simulation scale), and the
resource model vs structural enumeration (the paper's 5% band on
average).  This is the regression gate for any change to the merger,
loader, or model code.
"""

from __future__ import annotations


from benchmarks.conftest import run_once
from repro.analysis.tables import render_table
from repro.core import presets
from repro.core.configuration import AmtConfig
from repro.core.parameters import MergerArchParams
from repro.core.validation import (
    geometric_mean_error,
    validate_performance,
    validate_resources,
    worst_relative_error,
)

PERF_CONFIGS = [
    AmtConfig(p=2, leaves=8),
    AmtConfig(p=4, leaves=16),
    AmtConfig(p=8, leaves=16),
    AmtConfig(p=8, leaves=64),
    AmtConfig(p=16, leaves=32),
]

RESOURCE_CONFIGS = [
    AmtConfig(p=p, leaves=leaves)
    for p in (2, 8, 32)
    for leaves in (8, 64, 256)
]


def run_both():
    platform = presets.aws_f1()
    arch = MergerArchParams()
    perf = validate_performance(
        PERF_CONFIGS, n_records=32_768, hardware=platform.hardware, arch=arch
    )
    resources = validate_resources(
        RESOURCE_CONFIGS, hardware=platform.hardware, arch=arch
    )
    return perf, resources


def test_model_accuracy(benchmark, save_report):
    perf, resources = run_once(benchmark, run_both)

    rows = [
        ("performance " + point.config.describe(), f"{100 * point.relative_error:.1f}%")
        for point in perf
    ] + [
        ("resources " + point.config.describe(), f"{100 * point.relative_error:.1f}%")
        for point in resources
    ]
    report = render_table(
        ("model vs measured", "relative error"),
        rows,
        title="§VI-B accuracy claims (paper: 10% performance, 5% resources)",
    )
    save_report("model_accuracy", report)

    assert worst_relative_error(perf) < 0.15
    assert geometric_mean_error(perf) < 0.10
    assert geometric_mean_error(resources) < 0.08
    benchmark.extra_info["perf_mean_error"] = geometric_mean_error(perf)
    benchmark.extra_info["resource_mean_error"] = geometric_mean_error(resources)
