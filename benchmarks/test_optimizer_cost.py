"""The optimizer's own cost: exhaustive search is cheap.

§I promises reconfiguration "within hundreds of milliseconds"; for that
to matter, picking the configuration must be far cheaper still.  This
bench times Bonsai's full exhaustive search (the §III-C "exhaustively
prunes all AMT configurations") — it completes in milliseconds, orders
of magnitude under the reprogramming time it gates.
"""

from __future__ import annotations

from repro.core import presets
from repro.core.parameters import ArrayParams
from repro.units import GB


def test_latency_search_cost(benchmark):
    bonsai = presets.aws_f1().bonsai()
    array = ArrayParams.from_bytes(16 * GB)

    result = benchmark(lambda: bonsai.latency_optimal(array))
    assert result.config.p == 32
    # The search must be negligible next to the 4.3 s reprogramming it
    # precedes (and the paper's "hundreds of milliseconds" partial
    # reconfiguration).
    assert benchmark.stats["mean"] < 0.5


def test_throughput_search_cost(benchmark):
    bonsai = presets.ssd_node().bonsai(presort_run=256)
    array = ArrayParams.from_bytes(8 * GB)

    result = benchmark(lambda: bonsai.throughput_optimal(array))
    assert result.config.lambda_pipe == 4
    assert benchmark.stats["mean"] < 2.0
