"""§VI-F: scalability in record width.

"1 GB of wider records requires less resources to be sorted in the same
amount of time as one GB of narrower records."  This bench sweeps the
record width, letting the optimizer re-balance p against the fixed
32 GB/s memory, and checks the claims: equal sorted-bytes throughput at
every width, with LUT cost *falling* as records widen.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import render_table
from repro.core import presets
from repro.core.optimizer import Bonsai
from repro.core.parameters import ArrayParams, MergerArchParams
from repro.records.record import RecordFormat
from repro.units import GB

WIDTHS = (4, 8, 16, 32)


def _format_for(record_bytes: int) -> RecordFormat:
    return RecordFormat(
        key_bytes=min(record_bytes, 8),
        value_bytes=max(0, record_bytes - 8),
        name=f"u{8 * record_bytes}",
    )


def sweep_widths():
    platform = presets.aws_f1()
    out = []
    for width in WIDTHS:
        bonsai = Bonsai(
            hardware=platform.hardware,
            arch=MergerArchParams(record_bytes=width),
            unroll_max=1,
        )
        array = ArrayParams.from_bytes(16 * GB, fmt=_format_for(width))
        best = bonsai.latency_optimal(array)
        out.append((width, best))
    return out


def test_record_width(benchmark, save_report):
    results = run_once(benchmark, sweep_widths)

    rows = [
        (
            f"{8 * width}-bit",
            best.config.describe(),
            round(best.latency_seconds, 3),
            f"{best.throughput_bytes / GB:.1f} GB/s",
            round(best.lut_usage),
        )
        for width, best in results
    ]
    report = render_table(
        ("record width", "optimal AMT", "seconds (16 GB)", "throughput", "LUTs"),
        rows,
        title="§VI-F - record-width scalability at 32 GB/s DRAM",
    )
    save_report("record_width", report)

    base = results[0][1]
    for width, best in results[1:]:
        # Same byte throughput (the memory is the ceiling at every width;
        # a small stage-count wobble from differing record counts aside).
        assert best.latency_seconds == pytest.approx(base.latency_seconds, rel=0.35)
        # Wider records hit the ceiling with a narrower p.
        assert best.config.p < base.config.p

    # §VI-F's resource claim holds where the paper states it — at the
    # element level and for trees whose wide mergers dominate: "a 128-bit
    # record 4-merger has the same throughput as a 32-bit record
    # 16-merger, but almost 50% less logic utilization."
    lib32 = MergerArchParams(record_bytes=4).library
    lib128 = MergerArchParams(record_bytes=16).library
    assert lib128.merger_luts(4) < 0.7 * lib32.merger_luts(16)
    # Whole small trees at matched throughput: AMT(8, 8) on 128-bit vs
    # AMT(32, 8) on 32-bit.
    platform = presets.aws_f1()
    from repro.core.resources import ResourceModel

    narrow_tree = ResourceModel(
        hardware=platform.hardware, library=lib32
    ).lut_eq8(32, 8)
    wide_tree = ResourceModel(
        hardware=platform.hardware, library=lib128
    ).lut_eq8(8, 8)
    assert wide_tree < narrow_tree
    # Caveat the full-size sweep exposes (visible in the table): at
    # l = 256 the 1-merger leaf levels dominate and cost more per merger
    # at 128 bits, so the *whole-tree* LUT ordering inverts — the paper's
    # per-element claim does not extend to deep trees.
    assert dict(results)[16].lut_usage > base.lut_usage
    benchmark.extra_info["element_ratio_128_vs_32"] = (
        lib128.merger_luts(4) / lib32.merger_luts(16)
    )
