"""§VI-E: SSD sorter validation under throttled bandwidth.

The paper validated its SSD projections by throttling DRAM to flash
speed: "We throttled the DRAM throughput to that of modern SSD Flash
(8 GB/s), and run the pipeline in phase one ... The pipeline effectively
saturates I/O bandwidth of 8 GB/s"; likewise phase two's AMT(8, 256)
"operates at 8 GB/s".  We rerun both checks against the model and the
cycle simulator, plus the headline: 17.3x lower latency than the best
prior single-node terabyte sorter.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import render_table
from repro.baselines.published import PUBLISHED_SORTERS
from repro.core.configuration import AmtConfig
from repro.core.parameters import ArrayParams, MergerArchParams
from repro.core.performance import PerformanceModel
from repro.core.ssd_planner import SsdSortPlan
from repro.core import presets
from repro.hw.tree import simulate_merge
from repro.memory.dram import DdrDram
from repro.units import GB


def simulate_throttled_phase_two() -> float:
    """AMT(8, 256)-shaped stage at an 8 GB/s budget (simulated at l=16)."""
    budget = 8 * GB / 250e6
    rng = random.Random(9)
    # Long runs amortise the leaf-priming transient, which is what the
    # hardware's GB-scale stages do; at exactly-critical bandwidth there
    # is no headroom to recover fill cycles.
    runs = [sorted(rng.randrange(1, 10**9) for _ in range(4096)) for _ in range(16)]
    _, stats = simulate_merge(
        p=8,
        leaves=16,
        runs=runs,
        read_bytes_per_cycle=budget,
        write_bytes_per_cycle=budget,
        check_sorted_inputs=False,
    )
    return stats.records_per_cycle * 4 * 250e6


def test_ssd_validation(benchmark, save_report):
    simulated_rate = run_once(benchmark, simulate_throttled_phase_two)

    # --- model-side checks -------------------------------------------------
    throttled = DdrDram().throttled(8 * GB)
    arch = MergerArchParams()
    plan = SsdSortPlan()
    phase_one_rate = plan.phase_one_throughput()

    model = PerformanceModel(
        hardware=presets.ssd_as_memory().hardware, arch=arch, presort_run=16
    )
    phase_two_rate = min(
        model.amt_throughput(AmtConfig(p=8, leaves=256)), throttled.peak_bandwidth
    )

    # --- 17.3x headline ------------------------------------------------------
    terabyte_ms = PUBLISHED_SORTERS["terabyte-sort"].at_size_gb(1024)
    ours_seconds = plan.plan(ArrayParams.from_bytes(1024 * GB)).total_seconds
    ours_ms = ours_seconds * 1e3 / 1024
    speedup = terabyte_ms / ours_ms

    rows = [
        ("phase one pipeline rate (model)", f"{phase_one_rate / GB:.1f} GB/s"),
        ("phase two AMT(8, 256) rate (model)", f"{phase_two_rate / GB:.1f} GB/s"),
        ("phase two stage rate (cycle sim)", f"{simulated_rate / GB:.1f} GB/s"),
        ("1 TB sort, Terabyte Sort (published)", f"{terabyte_ms:.0f} ms/GB"),
        ("1 TB sort, Bonsai two-phase (model)", f"{ours_ms:.0f} ms/GB"),
        ("speedup", f"{speedup:.1f}x"),
    ]
    report = render_table(
        ("quantity", "value"),
        rows,
        title="§VI-E - SSD sorter validation at throttled 8 GB/s",
    )
    save_report("ssd_validation", report)

    assert phase_one_rate == pytest.approx(8 * GB)
    assert phase_two_rate == pytest.approx(8 * GB)
    assert simulated_rate > 0.85 * 8 * GB
    # Paper: "17.3x lower latency on sorting 1 TB of data compared to the
    # best previous single server node terabyte-scale sorter".
    assert speedup == pytest.approx(17.3, rel=0.05)
    benchmark.extra_info["speedup_vs_terabyte_sort"] = speedup
