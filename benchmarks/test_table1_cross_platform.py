"""Table I: sorting time in ms per GB across platforms and input sizes.

Regenerates the paper's headline table: the best published CPU / GPU /
FPGA / distributed sorters against Bonsai, from 4 GB to 100 TB, and
checks the shape claims — Bonsai's model-reproduced row matches the
published row, and it leads every column.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import render_table, rows_to_csv
from repro.baselines.published import (
    BONSAI_TABLE_I_MS_PER_GB,
    PUBLISHED_SORTERS,
    TABLE_I_SIZE_LABELS,
    TABLE_I_SIZES_GB,
    best_published_at,
)
from repro.core.scalability import ScalabilityModel
from repro.units import GB


def reproduce_bonsai_row() -> list[float]:
    """Our model's ms/GB at every Table I column."""
    model = ScalabilityModel()
    return [
        model.point(int(size_gb * GB)).latency_ms_per_gb
        for size_gb in TABLE_I_SIZES_GB
    ]


def test_table1(benchmark, save_report):
    ours = run_once(benchmark, reproduce_bonsai_row)

    headers = ("sorter",) + TABLE_I_SIZE_LABELS
    rows = []
    for spec in PUBLISHED_SORTERS.values():
        rows.append((f"{spec.platform}: {spec.name}",) + spec.ms_per_gb)
    rows.append(("Bonsai (paper)",) + BONSAI_TABLE_I_MS_PER_GB)
    rows.append(("Bonsai (this repro)",) + tuple(round(v, 1) for v in ours))
    report = render_table(headers, rows, title="Table I - sorting time, ms/GB (lower is better)")
    save_report("table1_cross_platform", report)
    save_report("table1_cross_platform_csv", rows_to_csv(headers, rows))

    # --- shape assertions ------------------------------------------------
    for size_gb, paper_ms, our_ms in zip(
        TABLE_I_SIZES_GB, BONSAI_TABLE_I_MS_PER_GB, ours
    ):
        # DRAM columns reproduce exactly; SSD columns carry the honest
        # reprogramming overhead Table I neglects (<= 14% at 128 GB).
        tolerance = 0.01 if size_gb <= 64 else 0.15
        assert our_ms == pytest.approx(paper_ms, rel=tolerance), f"at {size_gb} GB"

    for size_gb, our_ms in zip(TABLE_I_SIZES_GB, ours):
        name, best_ms = best_published_at(size_gb)
        if size_gb == 128:
            # The honest FPGA-reprogramming cost (4.3 s, amortised worst
            # at this smallest SSD-regime size: +34 ms/GB) puts our row
            # 6% above HRS's 267; the paper's idealised 250 leads it.
            # See EXPERIMENTS.md.
            assert our_ms < best_ms * 1.10, f"at {size_gb} GB vs {name}"
            continue
        assert our_ms < best_ms, f"Bonsai must lead at {size_gb} GB (vs {name})"

    benchmark.extra_info["ms_per_gb_4gb"] = ours[0]
    benchmark.extra_info["ms_per_gb_100tb"] = ours[-1]
