"""Table IV: resource-utilization breakdown of the optimal DRAM sorter.

Regenerates the LUT / flip-flop / BRAM breakdown of the implemented
AMT(32, 64) DRAM sorter (data loader, merge tree, presorter) against the
paper's synthesis numbers and the VU9P's capacities.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import render_table
from repro.core.configuration import AmtConfig
from repro.core.parameters import FpgaSpec, HardwareParams, MergerArchParams
from repro.core.resources import ResourceModel
from repro.memory.dram import DdrDram

PAPER_ROWS = {
    "Data loader": (110_102, 604_550, 960),
    "Merge tree": (102_158, 100_264, 0),
    "Presorter": (75_412, 64_092, 0),
    "Total": (287_672, 768_906, 960),
}


def compute_breakdown():
    hardware = HardwareParams.from_platform(DdrDram(), FpgaSpec())
    model = ResourceModel(hardware=hardware, library=MergerArchParams().library)
    return model.breakdown(AmtConfig(p=32, leaves=64))


def test_table4(benchmark, save_report):
    breakdown = run_once(benchmark, compute_breakdown)
    spec = FpgaSpec()

    ours = {
        "Data loader": (breakdown.loader_luts, breakdown.loader_ffs,
                        breakdown.loader_bram_blocks),
        "Merge tree": (breakdown.tree_luts, breakdown.tree_ffs, 0),
        "Presorter": (breakdown.presorter_luts, breakdown.presorter_ffs, 0),
        "Total": (breakdown.total_luts, breakdown.total_ffs,
                  breakdown.loader_bram_blocks),
    }
    rows = []
    for component, (paper_lut, paper_ff, paper_bram) in PAPER_ROWS.items():
        our_lut, our_ff, our_bram = ours[component]
        rows.append(
            (component, paper_lut, round(our_lut), paper_ff, round(our_ff),
             paper_bram, round(our_bram))
        )
    rows.append(("Available", spec.lut_capacity, spec.lut_capacity,
                 spec.flipflop_capacity, spec.flipflop_capacity,
                 spec.bram_blocks, spec.bram_blocks))
    report = render_table(
        ("component", "LUT paper", "LUT ours", "FF paper", "FF ours",
         "BRAM paper", "BRAM ours"),
        rows,
        title="Table IV - resource breakdown of the optimal DRAM sorter (AMT(32,64))",
    )
    save_report("table4_resources", report)

    # Calibrated rows exact; the merge tree (pure model) within 10%.
    assert breakdown.loader_luts == pytest.approx(110_102, rel=0.01)
    assert breakdown.presorter_luts == pytest.approx(75_412, rel=0.01)
    assert breakdown.tree_luts == pytest.approx(102_158, rel=0.10)
    assert breakdown.total_luts == pytest.approx(287_672, rel=0.06)
    # Utilization claims: the paper reports 33.3% LUT, 43.6% FF, 60% BRAM.
    assert breakdown.total_luts / spec.lut_capacity == pytest.approx(0.333, abs=0.03)
    assert breakdown.total_ffs / spec.flipflop_capacity == pytest.approx(0.436, abs=0.03)
    assert breakdown.loader_bram_blocks / spec.bram_blocks == pytest.approx(0.60, abs=0.01)
