"""Table V: execution-time breakdown of sorting 2 TB of data.

Phase one 256 s (49.6%), reprogramming 4.3 s (0.8%), phase two 256 s
(49.6%), total 516.3 s — the two-phase plan must reproduce these rows
exactly ("2 TB" = 256 runs x 8 GB, the paper's convention).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import render_table
from repro.core.parameters import ArrayParams
from repro.core.ssd_planner import SsdSortPlan
from repro.units import GB

PAPER_ROWS = {
    "Phase One": (256.0, 49.6),
    "Reprogramming": (4.3, 0.8),
    "Phase Two": (256.0, 49.6),
}


def compute_plan():
    return SsdSortPlan().plan(ArrayParams.from_bytes(2048 * GB))


def test_table5(benchmark, save_report):
    breakdown = run_once(benchmark, compute_plan)

    rows = []
    for phase, seconds, percentage in breakdown.rows():
        paper_seconds, paper_pct = PAPER_ROWS[phase]
        rows.append((phase, paper_seconds, round(seconds, 1),
                     paper_pct, round(percentage, 1)))
    rows.append(("Total", 516.3, round(breakdown.total_seconds, 1), 100.0, 100.0))
    report = render_table(
        ("phase", "paper s", "ours s", "paper %", "ours %"),
        rows,
        title='Table V - execution time breakdown of sorting "2 TB" (256 x 8 GB)',
    )
    save_report("table5_ssd_breakdown", report)

    assert breakdown.phase_one_seconds == pytest.approx(256.0)
    assert breakdown.reprogram_seconds == pytest.approx(4.3)
    assert breakdown.phase_two_seconds == pytest.approx(256.0)
    assert breakdown.total_seconds == pytest.approx(516.3)
    assert breakdown.phase_two_stages == 1
    benchmark.extra_info["total_seconds"] = breakdown.total_seconds
