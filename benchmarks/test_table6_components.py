"""Table VI: LUT utilization and throughput of building-block elements.

Regenerates both sub-tables (32-bit and 128-bit records) from the
component library and checks the paper's §VI-F claims: equal-throughput
elements cost comparably, with wide records cheaper per byte.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import render_table
from repro.core.components import ComponentLibrary
from repro.units import GB

SIZES = (1, 2, 4, 8, 16, 32)


def build_tables():
    return {
        4: ComponentLibrary(record_bytes=4),
        16: ComponentLibrary(record_bytes=16),
    }


def test_table6(benchmark, save_report):
    libraries = run_once(benchmark, build_tables)

    text_parts = []
    for width, label in ((4, "(a) 32-bit records"), (16, "(b) 128-bit records")):
        library = libraries[width]
        rows = []
        for k in SIZES:
            rows.append(
                (
                    f"{k}-merger",
                    f"{library.element_throughput_bytes(k) / GB:.0f} GB/s",
                    round(library.merger_luts(k)),
                    "FIFO" if k == 1 else f"{k}-coupler",
                    round(library.fifo_luts() if k == 1 else library.coupler_luts(k)),
                )
            )
        text_parts.append(
            render_table(
                ("element", "th-put", "LUT", "element", "LUT"),
                rows,
                title=f"Table VI {label}",
            )
        )
    save_report("table6_components", "\n".join(text_parts))

    lib32 = libraries[4]
    lib128 = libraries[16]
    # Throughput law: k records/cycle at 250 MHz.
    assert lib32.element_throughput_bytes(32) == pytest.approx(32 * GB)
    assert lib128.element_throughput_bytes(8) == pytest.approx(32 * GB)
    # §VI-F: "a 128-bit record 4-merger has the same throughput as a
    # 32-bit record 16-merger, but almost 50% less logic utilization."
    assert lib128.element_throughput_bytes(4) == lib32.element_throughput_bytes(16)
    ratio = lib128.merger_luts(4) / lib32.merger_luts(16)
    assert ratio == pytest.approx(0.66, abs=0.08)
    # Superlinear merger growth vs linear-ish coupler growth.
    assert lib32.merger_luts(32) / lib32.merger_luts(16) > 2.0
    assert lib32.coupler_luts(32) / lib32.coupler_luts(16) < 2.1
