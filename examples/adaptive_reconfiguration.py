#!/usr/bin/env python3
"""Adaptive reconfiguration: when does reprogramming pay? (§I, §VI-E)

Bonsai's selling point is that the FPGA can be re-targeted to each
workload — "within hundreds of milliseconds" with partial
reconfiguration [38], or the measured 4.3 s for a full bitstream
(§VI-E).  This example starts from a *leftover* bitstream (a small tree
some previous tenant loaded), feeds a queue of MapReduce spills and
batch sorts, and shows the keep-or-reprogram decision per job:

* small spills can never amortise a 4.3 s swap — the mediocre loaded
  tree keeps the job;
* a 64 GB batch sort saves minutes by switching — it reprograms;
* at partial-reconfiguration cost the break-even moves and even the
  spill burst flips to the optimal tree.

Run:  python examples/adaptive_reconfiguration.py
"""

from __future__ import annotations

from repro import AmtConfig, ArrayParams, presets
from repro.analysis.tables import render_table
from repro.engine.scheduler import AdaptiveScheduler
from repro.units import GB, MB, format_bytes, format_seconds

#: The bitstream left loaded by a previous tenant: a small, slow tree.
LEFTOVER = AmtConfig(p=2, leaves=16)


def main() -> None:
    bonsai = presets.aws_f1().bonsai()
    queue = [
        ArrayParams.from_bytes(size)
        for size in (256 * MB, 256 * MB, 128 * MB,   # spill burst
                     64 * GB,                         # batch sort
                     256 * MB, 32 * GB)               # mixed tail
    ]

    for swap_cost, label in ((4.3, "full bitstream (4.3 s, §VI-E)"),
                             (0.3, "partial reconfiguration (~0.3 s, [38])")):
        scheduler = AdaptiveScheduler(
            bonsai=bonsai, reprogram_seconds=swap_cost, initial_config=LEFTOVER
        )
        adaptive = scheduler.plan(queue)
        rows = [
            (
                format_bytes(job.array.total_bytes),
                job.config.describe(),
                "reprogram" if job.reprogrammed else "keep",
                format_seconds(job.total_seconds),
            )
            for job in adaptive.jobs
        ]
        print(render_table(
            ("job", "configuration", "decision", "time"),
            rows,
            title=f"adaptive schedule - {label}",
        ))

        # The no-adaptivity comparison: stuck with the leftover tree.
        frozen_total = sum(
            scheduler.latency_with(LEFTOVER, array) for array in queue
        )
        print(f"  adaptive total: {format_seconds(adaptive.total_seconds)} "
              f"({adaptive.reprogram_count} reprograms)")
        print(f"  frozen on leftover {LEFTOVER.describe()}: "
              f"{format_seconds(frozen_total)}")
        saving = 1 - adaptive.total_seconds / frozen_total
        print(f"  adaptivity saves {100 * saving:.0f}%\n")


if __name__ == "__main__":
    main()
