#!/usr/bin/env python3
"""Design-space exploration: what future memories buy (§III, Fig. 5).

"Our general approach helps computer architects better understand what
performance benefits future compute and memory technology may bring."
This example sweeps off-chip bandwidth and record width, showing how the
optimal AMT configuration and achievable sorting rate move — the Fig. 5
exercise plus a record-width dimension.

Run:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro import ArrayParams, MergerArchParams, presets
from repro.analysis.charts import ascii_line_chart
from repro.analysis.sweeps import bandwidth_sweep
from repro.analysis.tables import render_table
from repro.baselines.lower_bounds import io_lower_bound_seconds
from repro.core.optimizer import Bonsai
from repro.units import GB


def sweep_bandwidth() -> None:
    bandwidths = [2 * GB, 8 * GB, 32 * GB, 128 * GB, 512 * GB]
    points = bandwidth_sweep(bandwidths, total_bytes=16 * GB)
    rows = []
    for point in points:
        bound = io_lower_bound_seconds(16 * GB, point["bandwidth"])
        rows.append(
            (
                f"{point['bandwidth'] / GB:.0f} GB/s",
                point["config"].describe(),
                round(point["seconds"], 3),
                round(point["seconds"] / bound, 1),
            )
        )
    print(render_table(
        ("memory bandwidth", "optimal AMT", "seconds (16 GB)", "x of I/O bound"),
        rows,
        title="bandwidth sweep: the optimum moves with the memory",
    ))
    print(ascii_line_chart(
        [b / GB for b in bandwidths],
        {"bonsai": [p["seconds"] for p in points],
         "io bound": [io_lower_bound_seconds(16 * GB, b) for b in bandwidths]},
        title="sorting time vs bandwidth (log-log)",
        log_x=True, log_y=True,
    ))


def sweep_record_width() -> None:
    platform = presets.aws_f1()
    rows = []
    for record_bytes in (4, 8, 16, 32):
        bonsai = Bonsai(
            hardware=platform.hardware,
            arch=MergerArchParams(record_bytes=record_bytes),
        )
        array = ArrayParams.from_bytes(16 * GB,
                                       fmt=_format_for(record_bytes))
        best = bonsai.latency_optimal(array)
        rows.append(
            (
                f"{8 * record_bytes}-bit",
                best.config.describe(),
                round(best.latency_seconds, 3),
                round(best.lut_usage),
            )
        )
    print(render_table(
        ("record width", "optimal AMT", "seconds (16 GB)", "LUTs"),
        rows,
        title="record-width sweep: wider records need smaller p for the "
              "same bandwidth",
    ))


def _format_for(record_bytes: int):
    from repro.records.record import RecordFormat

    return RecordFormat(key_bytes=min(record_bytes, 8),
                        value_bytes=max(0, record_bytes - 8),
                        name=f"u{8 * record_bytes}")


def sweep_roofline() -> None:
    from repro.analysis.roofline import balanced_p, classify, unroll_for_bandwidth
    from repro.core.configuration import AmtConfig

    arch = MergerArchParams()
    rows = []
    for name, factory in (
        ("AWS F1 DDR4", presets.aws_f1),
        ("SSD as memory", presets.ssd_as_memory),
        ("Alveo U50 HBM", presets.alveo_u50),
    ):
        platform = factory()
        p_star = balanced_p(platform.hardware, arch)
        lam = unroll_for_bandwidth(platform.hardware, arch)
        point = classify(
            AmtConfig(p=min(p_star, 32), leaves=64), platform.hardware, arch
        )
        rows.append(
            (
                name,
                f"{platform.hardware.beta_dram / GB:.0f} GB/s",
                f"p = {p_star}" if p_star <= 32 else f"p = 32, unroll x{lam}",
                point.bound,
            )
        )
    print(render_table(
        ("memory", "bandwidth", "balanced datapath", "single-tree bound"),
        rows,
        title="roofline view: where each memory puts the optimum (§III-A1)",
    ))


def sweep_sensitivity() -> None:
    from repro.core.sensitivity import analyze, binding_parameters

    platform = presets.aws_f1()
    entries = analyze(
        hardware=platform.hardware,
        arch=MergerArchParams(),
        array=ArrayParams.from_bytes(64 * GB),
        factors=(2.0,),
    )
    rows = [
        (
            entry.parameter,
            f"x{entry.factor:g}",
            entry.config.describe(),
            f"{entry.speedup:.2f}x",
        )
        for entry in entries
        if entry.factor != 1.0
    ]
    print(render_table(
        ("parameter doubled", "factor", "new optimum", "speedup"),
        rows,
        title="sensitivity: which resource actually gates the sorter (64 GB)",
    ))
    print(f"binding parameters: {', '.join(binding_parameters(entries))}")
    print("(Table IV's point, quantified: DRAM bandwidth is the bottleneck;\n"
          " the FPGA's logic has slack for future memory generations.)\n")


def main() -> None:
    sweep_bandwidth()
    sweep_record_width()
    sweep_roofline()
    sweep_sensitivity()


if __name__ == "__main__":
    main()
