#!/usr/bin/env python3
"""Scaling Bonsai out: a cluster of FPGA nodes sorting 100 TB (§II-B).

The paper argues a single Bonsai node has "much better per-node
performance on terabyte-scale problems than any distributed sorting
system" (Table I normalises cluster results per node).  This example
builds the distributed system the paper sketches — range partition +
exchange, then node-local two-phase sorts — and compares its per-node
efficiency against the published Tencent Sort and GPU-cluster rows.

Run:  python examples/distributed_sort.py
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.baselines.distributed import CLUSTER_RESULTS
from repro.core.scalability import ScalabilityModel
from repro.distributed import Cluster, SortingNode
from repro.memory.dram import DdrDram
from repro.memory.hierarchy import TwoTierHierarchy
from repro.memory.ssd import Ssd
from repro.units import GB, TB, format_bytes, format_seconds


def main() -> None:
    total = 100 * TB

    # An F1-style node with the paper's 2048 GB SSD and a 100 GbE NIC.
    node = SortingNode(
        sorter=ScalabilityModel(
            hierarchy=TwoTierHierarchy(
                fast=DdrDram(), slow=Ssd(capacity_bytes=2048 * GB)
            )
        ),
        network_bandwidth=12.5 * GB,
    )
    cluster = Cluster(node=node, nodes=Cluster(node=node).nodes_needed(total))
    print(f"sorting {format_bytes(total)} needs {cluster.nodes} nodes "
          f"({format_bytes(node.capacity_bytes())} SSD each)")

    report = cluster.sort_report(total)
    print(f"  exchange phase: {format_seconds(report.exchange_seconds)} "
          f"(all-to-all over {node.network_bandwidth / GB:.1f} GB/s NICs)")
    print(f"  local sorts:    {format_seconds(report.local_sort_seconds)} "
          f"({format_bytes(cluster.partition_bytes(total))} per node, "
          "two-phase SSD sorter)")
    print(f"  makespan:       {format_seconds(report.elapsed_seconds)}  "
          f"({report.aggregate_gb_per_s:.1f} GB/s aggregate)")

    rows = [
        ("Bonsai cluster (this repro)", cluster.nodes,
         round(report.per_node_ms_per_gb)),
        ("Tencent Sort (CPU cluster)", CLUSTER_RESULTS["tencent-100tb"].nodes,
         round(CLUSTER_RESULTS["tencent-100tb"].per_node_ms_per_gb)),
        ("GPU cluster (2 TB run)", CLUSTER_RESULTS["gpu-cluster-2tb"].nodes,
         round(CLUSTER_RESULTS["gpu-cluster-2tb"].per_node_ms_per_gb)),
        ("single Bonsai node (Table I, 100 TB)", 1, 375),
    ]
    print()
    print(render_table(
        ("system", "nodes", "per-node ms/GB"),
        rows,
        title="per-node efficiency (elapsed x nodes / GB; lower is better)",
    ))

    # Skew sensitivity: imperfect splitters stretch the slowest node.
    print("splitter-skew sensitivity:")
    for skew in (1.0, 1.2, 1.5):
        skewed = Cluster(node=node, nodes=cluster.nodes, skew_factor=skew)
        if skewed.partition_bytes(total) > node.capacity_bytes():
            print(f"  skew {skew:.1f}: partitions no longer fit - add nodes")
            continue
        r = skewed.sort_report(total)
        print(f"  skew {skew:.1f}: makespan {format_seconds(r.elapsed_seconds)}")


if __name__ == "__main__":
    main()
