#!/usr/bin/env python3
"""The DRAM-scale sorter of §IV-A / §VI-C, end to end.

Reproduces the paper's DRAM sorting story at laptop scale:

* the optimizer picks AMT(32, 256); routing congestion caps the
  implemented design at 64 leaves (§VI-C1);
* the 16-record presorter removes one merge stage;
* the resulting sorter runs at 172 ms/GB on the measured 29 GB/s DRAM —
  Table I's Bonsai row — beating the published CPU/GPU/FPGA numbers.

Run:  python examples/dram_sort_aws_f1.py
"""

from __future__ import annotations

import numpy as np

from repro import AmtConfig, AmtSorter, ArrayParams, MergerArchParams, presets
from repro.analysis.tables import render_table
from repro.baselines.published import PUBLISHED_SORTERS
from repro.core.performance import PerformanceModel
from repro.records.workloads import uniform_random
from repro.units import GB


def main() -> None:
    platform = presets.aws_f1_measured()
    arch = MergerArchParams()

    # --- what Bonsai picks, and what was implementable -----------------
    bonsai = platform.bonsai()
    model_best = bonsai.latency_optimal(ArrayParams.from_bytes(32 * GB))
    implemented = platform.bonsai(leaves_cap=64).latency_optimal(
        ArrayParams.from_bytes(32 * GB)
    )
    print(f"Bonsai-optimal:   {model_best.config.describe()}")
    print(f"implemented (routing-capped leaves): {implemented.config.describe()}")

    # --- presorter effect ----------------------------------------------
    for presort, label in ((1, "without presorter"), (16, "with presorter")):
        model = PerformanceModel(
            hardware=platform.hardware, arch=arch, presort_run=presort
        )
        stages = model.stage_count(implemented.config, ArrayParams.from_bytes(32 * GB).n_records)
        seconds = model.latency_single(implemented.config, ArrayParams.from_bytes(32 * GB))
        print(f"  {label}: {stages} stages, {seconds:.2f} s for 32 GB")

    # --- Table I comparison at 32 GB ------------------------------------
    model = PerformanceModel(hardware=platform.hardware, arch=arch, presort_run=16)
    ours_ms = (
        model.latency_single(implemented.config, ArrayParams.from_bytes(32 * GB))
        * 1e3 / 32
    )
    rows = [
        ("Bonsai (this repro)", round(ours_ms, 1)),
        ("PARADIS (CPU)", PUBLISHED_SORTERS["paradis"].at_size_gb(32)),
        ("HRS (GPU)", PUBLISHED_SORTERS["hrs"].at_size_gb(32)),
        ("SampleSort (FPGA)", PUBLISHED_SORTERS["samplesort"].at_size_gb(32)),
    ]
    print()
    print(render_table(("sorter", "ms/GB at 32 GB"), rows))

    # --- run the actual data path on half a million records ------------
    data = uniform_random(500_000, seed=2020)
    sorter = AmtSorter(
        config=AmtConfig(p=32, leaves=64),
        hardware=platform.hardware,
        arch=arch,
        presort_run=16,
    )
    outcome = sorter.sort(data)
    assert np.array_equal(outcome.data, np.sort(data))
    print(f"functional check: {outcome.n_records:,} records sorted in "
          f"{outcome.stages} stages - OK")
    print(f"modeled rate at this scale: {outcome.latency_ms_per_gb:.0f} ms/GB "
          f"({outcome.stages} stages; a 32 GB array needs 5 stages, "
          "giving the paper's 172 ms/GB)")


if __name__ == "__main__":
    main()
