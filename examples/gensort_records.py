#!/usr/bin/env python3
"""Sorting wide records: the gensort / sort-benchmark path (§VI-A).

The paper benchmarks 100-byte records (10-byte key, 90-byte value) by
hashing each value to a 6-byte index and sorting packed 16-byte records.
This example runs that pipeline end to end:

1. generate benchmark-layout records,
2. pack them (key prefix + hashed payload index),
3. sort the packed records through the merge engine,
4. recover full records via the index table and verify memcmp order.

Run:  python examples/gensort_records.py
"""

from __future__ import annotations

import numpy as np

from repro import AmtConfig, AmtSorter, MergerArchParams, presets
from repro.records import gensort
from repro.units import GB


def main() -> None:
    n_records = 20_000
    records = gensort.generate_gensort(n_records, seed=100)
    print(f"generated {n_records:,} records of "
          f"{gensort.RECORD_BYTES} bytes (key {gensort.KEY_BYTES}, "
          f"value {gensort.VALUE_BYTES})")

    # --- pack: 10-byte key + 6-byte hashed index = 16 bytes -------------
    sort_keys, packed_low, index_table = gensort.pack_records(records)
    print(f"packed to {gensort.PACKED_BYTES}-byte records; "
          f"{len(index_table):,} distinct payload indices")

    # --- sort the packed stream through a 16-byte-record AMT ------------
    platform = presets.aws_f1_measured()
    arch = MergerArchParams(record_bytes=gensort.PACKED_BYTES)
    sorter = AmtSorter(
        config=AmtConfig(p=8, leaves=64),
        hardware=platform.hardware,
        arch=arch,
    )
    # Sort (prefix, ordinal) jointly so ties resolve by the full key:
    # the hardware compares the remaining key bytes bit-serially (§II);
    # here the packed low word rides in the low bits of a compound key.
    compound = (sort_keys.astype(object) << 64) | packed_low.astype(object)
    order = np.argsort(np.array([int(x) for x in compound], dtype=object),
                       kind="stable")
    outcome = sorter.sort(sort_keys)  # engine pass for timing + stage count
    assert outcome.is_sorted()

    # --- recover and verify ----------------------------------------------
    sorted_records = gensort.unpack_sorted(order, records)
    keys = [record.key for record in sorted_records]
    assert keys == sorted(keys), "memcmp order violated"
    print(f"sorted and recovered {len(sorted_records):,} full records - "
          "memcmp order verified")

    # --- throughput advantage of wide records (§VI-F) --------------------
    narrow = MergerArchParams(record_bytes=4)
    wide = MergerArchParams(record_bytes=16)
    print("\nrecord-width scaling (Table VI):")
    print(f"  32-bit records: 8-merger = "
          f"{narrow.amt_throughput_bytes(8) / GB:.0f} GB/s at "
          f"{narrow.library.merger_luts(8):,.0f} LUTs")
    print(f"  128-bit records: 8-merger = "
          f"{wide.amt_throughput_bytes(8) / GB:.0f} GB/s at "
          f"{wide.library.merger_luts(8):,.0f} LUTs")
    print("  -> 1 GB of wider records sorts with fewer LUTs per GB/s")
    print(f"\nmodeled packed-record sort: {outcome.stages} stages, "
          f"{outcome.latency_ms_per_gb:.0f} ms/GB")


if __name__ == "__main__":
    main()
