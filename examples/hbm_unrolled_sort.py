#!/usr/bin/env python3
"""High-bandwidth-memory sorting via AMT unrolling (§IV-B, §VI-D).

With a 512 GB/s HBM, no single p <= 32 tree can use the bandwidth
(p f r = 32 GB/s), so Bonsai unrolls: many small AMTs sort address
ranges in parallel, then progressively fewer AMTs merge the ranges
("half of the AMTs are idled" per final stage).

Shows the model-optimal configuration next to the paper's 16x AMT(32, 2)
pick, and runs the address-range data path functionally.

Run:  python examples/hbm_unrolled_sort.py
"""

from __future__ import annotations

import numpy as np

from repro import AmtConfig, ArrayParams, MergerArchParams, UnrolledSorter, presets
from repro.analysis.tables import render_table
from repro.records.workloads import uniform_random
from repro.units import GB


def main() -> None:
    platform = presets.alveo_u50()
    print(f"platform: {platform.name}, "
          f"{platform.hardware.beta_dram / GB:.0f} GB/s HBM "
          f"({platform.memory.banks} banks)")

    array = ArrayParams.from_bytes(16 * GB)
    bonsai = platform.bonsai()
    model = bonsai.performance

    paper_config = AmtConfig(p=32, leaves=2, lambda_unroll=16)
    model_best = bonsai.latency_optimal(array, unroll_mode="address_range")

    rows = []
    for label, config in (
        ("model-optimal", model_best.config),
        ("paper's pick (§IV-B)", paper_config),
        ("no unrolling", AmtConfig(p=32, leaves=256)),
    ):
        seconds = model.latency_unrolled_address_range(config, array)
        rows.append(
            (
                label,
                config.describe(),
                round(seconds, 3),
                round(bonsai.resources.lut_usage(config)),
            )
        )
    print()
    print(render_table(("choice", "configuration", "seconds for 16 GB", "LUTs"),
                       rows, title="HBM configurations under the model"))
    print("note: the paper's 2-leaf pick reflects per-bank wiring limits the\n"
          "analytic model does not see; both unrolled designs use the full\n"
          "512 GB/s during the main stages, the un-unrolled tree only 32 GB/s.")

    # --- run the address-range scheme functionally ----------------------
    data = uniform_random(200_000, seed=3)
    sorter = UnrolledSorter(
        config=paper_config,
        hardware=platform.hardware,
        arch=MergerArchParams(),
        partitioning="address",
    )
    outcome = sorter.sort(data)
    assert np.array_equal(outcome.data, np.sort(data))
    print(f"\naddress-range sort of {outcome.n_records:,} records: "
          f"{outcome.detail['final_merge_stages']} halving merge stages - OK")

    # --- range partitioning alternative ----------------------------------
    ranged = UnrolledSorter(
        config=paper_config,
        hardware=platform.hardware,
        arch=MergerArchParams(),
        partitioning="range",
    ).sort(data)
    assert np.array_equal(ranged.data, np.sort(data))
    print(f"range-partitioned sort: no final merges needed, modeled "
          f"{ranged.seconds * 1e3:.2f} ms vs {outcome.seconds * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
