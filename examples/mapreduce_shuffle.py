#!/usr/bin/env python3
"""A MapReduce-style shuffle stage built on the Bonsai sorter.

The paper's opening motivation: "MapReduce keys coming out of the mapping
stage must be sorted prior to being fed into the reduce stage.  Thus, the
throughput of the sorting procedure limits the throughput of the whole
MapReduce process" (§I).

This example models that workload shape: a steady queue of mapper-output
partitions (skewed key distributions, many duplicates) that must each be
sorted before reduction.  It uses the *throughput-optimal pipelined*
configuration — the regime where AMT pipelining exists (§III-A3: "AMT
pipelining is useful when multiple arrays need to be sorted") — and
compares the makespan against sorting the queue one array at a time.

Run:  python examples/mapreduce_shuffle.py
"""

from __future__ import annotations

import numpy as np

from repro import AmtConfig, ArrayParams, MergerArchParams, PipelinedSorter, presets
from repro.analysis.tables import render_table
from repro.records.workloads import zipfian
from repro.units import GB, format_seconds


def main() -> None:
    platform = presets.ssd_node()

    # Mapper partitions arrive as ~8 GB spills (at true scale); the
    # optimizer picks the Eq. 7 throughput-optimal pipeline for them.
    best = platform.bonsai(presort_run=256).throughput_optimal(
        ArrayParams.from_bytes(8 * GB)
    )
    print(f"throughput-optimal shuffle configuration: {best.config.describe()}")
    print(f"  steady-state rate: {best.throughput_bytes / GB:.1f} GB/s "
          "(saturates the I/O bus)")

    # Laptop-scale stand-ins: 12 partitions of skewed (zipf) keys, the
    # realistic shape of mapper output.
    partitions = [zipfian(60_000, seed=seed) for seed in range(12)]
    pipeline = PipelinedSorter(
        config=AmtConfig(p=8, leaves=64, lambda_pipe=4),
        hardware=platform.hardware,
        arch=MergerArchParams(),
        presort_run=256,
    )

    sorted_partitions, makespan = pipeline.sort_batch(partitions)
    for original, result in zip(partitions, sorted_partitions):
        assert np.array_equal(result, np.sort(original))
    sequential = sum(pipeline.sort(p).seconds for p in partitions)

    rows = [
        ("one-at-a-time (Eq. 4 each)", format_seconds(sequential)),
        ("pipelined queue (Eq. 3 steady state)", format_seconds(makespan)),
        ("speedup", f"{sequential / makespan:.2f}x"),
    ]
    print()
    print(render_table(("shuffle schedule", "modeled time"), rows,
                       title=f"shuffling {len(partitions)} mapper partitions"))
    print("all partitions verified sorted - reducers can stream-merge them.")

    # Reducer-side check: merging the sorted partitions is now a single
    # linear pass (the sort-merge join primitive of §I).
    from repro.engine.stage import merge_runs_numpy

    merged = merge_runs_numpy(sorted_partitions)
    assert merged.size == sum(p.size for p in partitions)
    assert bool(np.all(merged[:-1] <= merged[1:]))
    print(f"reduce-side merge of {merged.size:,} records verified.")


if __name__ == "__main__":
    main()
