#!/usr/bin/env python3
"""Quickstart: optimise an AMT for your hardware, then sort with it.

This walks the three core steps of the Bonsai workflow:

1. describe the platform (here: the paper's AWS F1 instance),
2. ask the Bonsai optimizer for the latency-optimal AMT configuration,
3. sort data through that configuration — once with modeled timing and
   once through the cycle-level hardware simulator — and verify.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import AmtConfig, AmtSorter, ArrayParams, MergerArchParams, presets
from repro.records.workloads import uniform_random
from repro.units import GB, format_seconds


def main() -> None:
    # 1. The platform: VU9P FPGA + 64 GB DDR4 at 32 GB/s (§IV-A).
    platform = presets.aws_f1()
    print(f"platform: {platform.name}")
    print(f"  DRAM: {platform.hardware.beta_dram / GB:.0f} GB/s, "
          f"{platform.hardware.c_dram / GB:.0f} GB")
    print(f"  FPGA: {platform.hardware.c_lut:,} LUTs")

    # 2. Optimise for sorting 16 GB of 32-bit records.
    bonsai = platform.bonsai()
    best = bonsai.latency_optimal(ArrayParams.from_bytes(16 * GB))
    print(f"\nlatency-optimal configuration for 16 GB: {best.config.describe()}")
    print(f"  modeled sorting time: {format_seconds(best.latency_seconds)} "
          f"({best.throughput_bytes / GB:.1f} GB/s)")
    print(f"  resources: {best.lut_usage:,.0f} LUTs, {best.bram_bytes:,} B BRAM")

    print("\nrunner-up configurations:")
    for entry in bonsai.rank_by_latency(ArrayParams.from_bytes(16 * GB), top=4)[1:]:
        print(f"  {entry.describe()}")

    # 3a. Sort real data at laptop scale with modeled timing.
    data = uniform_random(500_000, seed=42)
    sorter = AmtSorter(
        config=AmtConfig(p=best.config.p, leaves=64),  # implemented leaf cap
        hardware=platform.hardware,
        arch=MergerArchParams(),
    )
    outcome = sorter.sort(data)
    assert np.array_equal(outcome.data, np.sort(data)), "sort mismatch!"
    print(f"\nsorted {outcome.n_records:,} records in {outcome.stages} stages")
    print(f"  modeled FPGA time: {format_seconds(outcome.seconds)} "
          f"({outcome.latency_ms_per_gb:.0f} ms/GB)")

    # 3b. The same sort through the cycle-level simulator.
    small = uniform_random(30_000, seed=7)
    simulated = AmtSorter(
        config=AmtConfig(p=8, leaves=16),
        hardware=platform.hardware,
        arch=MergerArchParams(),
        mode="simulate",
    ).sort(small)
    assert np.array_equal(simulated.data, np.sort(small))
    print(f"\ncycle simulation of {simulated.n_records:,} records: "
          f"{simulated.seconds * 1e6:.1f} us of FPGA time "
          f"across {simulated.stages} stages — output verified")


if __name__ == "__main__":
    main()
