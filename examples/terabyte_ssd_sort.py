#!/usr/bin/env python3
"""Terabyte-scale SSD sorting (§IV-C, Fig. 6, Table V).

Demonstrates the two-phase procedure on a laptop-scale stand-in:

* phase one: the throughput-optimal pipeline (4x AMT(8, 64)) forms
  DRAM-scale sorted runs at I/O line rate;
* the FPGA is reprogrammed (4.3 s) to the latency-optimal AMT(8, 256);
* phase two: one SSD round trip merges up to 256 runs.

The data path runs on a few hundred thousand records; the timing is the
plan's model at true scale ("2 TB" = 256 x 8 GB -> 516.3 s, Table V).

Run:  python examples/terabyte_ssd_sort.py
"""

from __future__ import annotations

import numpy as np

from repro import ArrayParams, SsdSorter, presets
from repro.analysis.tables import render_table
from repro.records.workloads import uniform_random
from repro.units import GB, TB, format_bytes


def main() -> None:
    # --- what the optimizer picks per phase ------------------------------
    phase_one = (
        presets.ssd_node().bonsai(presort_run=256)
        .throughput_optimal(ArrayParams.from_bytes(8 * GB))
    )
    phase_two = (
        presets.ssd_as_memory().bonsai()
        .latency_optimal(ArrayParams.from_bytes(64 * GB))
    )
    print("phase one (throughput-optimal, Eq. 7):", phase_one.config.describe())
    print("phase two (latency-optimal with SSD as memory):",
          phase_two.config.describe())

    # --- Table V: the modeled breakdown for "2 TB" ----------------------
    sorter = SsdSorter()
    breakdown = sorter.modeled_breakdown(2048 * GB)
    rows = [(phase, f"{seconds:.1f} s", f"{pct:.1f}%")
            for phase, seconds, pct in breakdown.rows()]
    rows.append(("Total", f"{breakdown.total_seconds:.1f} s", "100%"))
    print()
    print(render_table(("phase", "time", "share"), rows,
                       title='Table V - sorting "2 TB" (256 runs x 8 GB)'))
    rate = 2048 * GB / breakdown.total_seconds / GB
    print(f"effective rate: {rate:.2f} GB/s "
          "(paper: ~4 GB/s, 17.3x the best prior single-node terabyte sorter)")

    # --- capacity scaling -------------------------------------------------
    plan = sorter.plan
    print(f"\none phase-two round trip sorts up to "
          f"{format_bytes(plan.max_capacity_bytes(stages=1))}")
    print(f"two round trips extend that to "
          f"{format_bytes(plan.max_capacity_bytes(stages=2))} at 8/3 GB/s")

    # --- run the scaled data path ----------------------------------------
    data = uniform_random(400_000, seed=11)
    outcome = sorter.sort(data)
    assert np.array_equal(outcome.data, np.sort(data))
    print(f"\nfunctional check: {outcome.n_records:,} records as "
          f"{outcome.detail['scaled_runs']} runs, "
          f"{outcome.detail['phase_two_stages_executed']} phase-two stage(s) - OK")
    print(f"modeled at true scale "
          f"({format_bytes(outcome.detail['true_bytes_modeled'])}): "
          f"{outcome.seconds:.1f} s")


if __name__ == "__main__":
    main()
