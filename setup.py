"""Setuptools shim.

The offline evaluation environment lacks the ``wheel`` package, which
setuptools' PEP-660 editable-install backend requires; keeping a
``setup.py`` (and no ``[build-system]`` table in ``pyproject.toml``) lets
``pip install -e .`` take the legacy editable path that works without it.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
