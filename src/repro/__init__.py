"""Bonsai: high-performance adaptive merge tree sorting — reproduction.

A complete Python reproduction of *Bonsai: High-Performance Adaptive
Merge Tree Sorting* (ISCA 2020): the adaptive merge tree (AMT)
architecture as a cycle-level simulator, the analytical performance and
resource models (Eqs. 1-10), the Bonsai configuration optimizer, the
two-phase SSD sorting procedure, and the cross-platform baselines the
paper compares against.

Quickstart::

    from repro import presets, ArrayParams
    from repro.units import GB

    platform = presets.aws_f1()
    bonsai = platform.bonsai()
    best = bonsai.latency_optimal(ArrayParams.from_bytes(16 * GB))
    print(best.describe())   # -> AMT(32, 256): 2.000 s, ...

See ``examples/`` for runnable end-to-end scenarios and ``benchmarks/``
for the per-table/per-figure reproduction harness.
"""

from repro._version import __version__
from repro.core import presets
from repro.core.configuration import AmtConfig
from repro.core.optimizer import Bonsai, RankedConfig
from repro.core.parameters import (
    ArrayParams,
    FpgaSpec,
    HardwareParams,
    MergerArchParams,
)
from repro.core.performance import PerformanceModel
from repro.core.resources import ResourceModel
from repro.core.scalability import ScalabilityModel
from repro.core.ssd_planner import SsdSortPlan
from repro.engine import AmtSorter, PipelinedSorter, SortOutcome, SsdSorter, UnrolledSorter
from repro.errors import (
    BonsaiError,
    ConfigurationError,
    InfeasibleConfigError,
    MemoryModelError,
    NoFeasibleConfigError,
    SimulationError,
    WorkloadError,
)
from repro.records.record import GENSORT_PACKED, U32, U64, U128, RecordFormat

__all__ = [
    "__version__",
    "presets",
    "AmtConfig",
    "Bonsai",
    "RankedConfig",
    "ArrayParams",
    "FpgaSpec",
    "HardwareParams",
    "MergerArchParams",
    "PerformanceModel",
    "ResourceModel",
    "ScalabilityModel",
    "SsdSortPlan",
    "AmtSorter",
    "UnrolledSorter",
    "PipelinedSorter",
    "SsdSorter",
    "SortOutcome",
    "RecordFormat",
    "U32",
    "U64",
    "U128",
    "GENSORT_PACKED",
    "BonsaiError",
    "ConfigurationError",
    "InfeasibleConfigError",
    "NoFeasibleConfigError",
    "SimulationError",
    "MemoryModelError",
    "WorkloadError",
]
