"""Version of the Bonsai reproduction package."""

__version__ = "1.0.0"
