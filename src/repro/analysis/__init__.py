"""Analysis and reporting utilities shared by benches and examples."""

from repro.analysis.bandwidth_efficiency import (
    bandwidth_efficiency,
    bonsai_efficiency,
    efficiency_comparison,
)
from repro.analysis.tables import render_table, rows_to_csv
from repro.analysis.charts import ascii_bar_chart, ascii_line_chart
from repro.analysis.sweeps import bandwidth_sweep, size_sweep

__all__ = [
    "bandwidth_efficiency",
    "bonsai_efficiency",
    "efficiency_comparison",
    "render_table",
    "rows_to_csv",
    "ascii_bar_chart",
    "ascii_line_chart",
    "bandwidth_sweep",
    "size_sweep",
]
