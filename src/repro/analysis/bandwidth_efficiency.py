"""Bandwidth-efficiency analysis (Fig. 12, §VI-C2).

"Formally, bandwidth-efficiency is defined as the ratio of the
throughput of the sorter to the available bandwidth of off-chip memory;
for example, the DRAM-scale sorter used in the first phase of
terabyte-scale sorting sorts at a throughput of 7.19 GB/s; since the
DRAM bandwidth is 32 GB/s, the bandwidth-efficiency of our DRAM sorter
is 7.19/32 = 0.225."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.published import PUBLISHED_SORTERS
from repro.core.configuration import AmtConfig
from repro.core.parameters import MergerArchParams
from repro.errors import ConfigurationError
from repro.units import GB, ceil_log


def bandwidth_efficiency(throughput_bytes: float, bandwidth_bytes: float) -> float:
    """The §VI-C2 ratio."""
    if throughput_bytes < 0:
        raise ConfigurationError("throughput must be >= 0")
    if bandwidth_bytes <= 0:
        raise ConfigurationError("bandwidth must be positive")
    return throughput_bytes / bandwidth_bytes


def bonsai_sort_throughput(
    total_bytes: int,
    bandwidth: float,
    config: AmtConfig = AmtConfig(p=32, leaves=256),
    presort_run: int = 16,
    arch: MergerArchParams | None = None,
    record_bytes: int = 4,
) -> float:
    """End-to-end sorted-bytes/s of a Bonsai DRAM sorter.

    Sorting takes ``stages`` full passes, so throughput is
    ``min(p f r, beta) / stages``.
    """
    arch = arch or MergerArchParams(record_bytes=record_bytes)
    n_records = max(1, total_bytes // record_bytes)
    stages = max(1, ceil_log(max(1, -(-n_records // presort_run)), config.leaves))
    rate = min(arch.amt_throughput_bytes(config.p), bandwidth)
    return rate / stages


def bonsai_efficiency(
    total_bytes: int,
    bandwidth: float,
    config: AmtConfig = AmtConfig(p=32, leaves=256),
    presort_run: int = 16,
) -> float:
    """Bandwidth-efficiency of the Bonsai DRAM sorter at a given size."""
    throughput = bonsai_sort_throughput(
        total_bytes, bandwidth, config=config, presort_run=presort_run
    )
    return bandwidth_efficiency(throughput, bandwidth)


@dataclass(frozen=True)
class EfficiencyEntry:
    """One bar of Fig. 12."""

    name: str
    throughput_gb_per_s: float
    bandwidth_gb_per_s: float

    @property
    def efficiency(self) -> float:
        """The §VI-C2 ratio for this bar."""
        return self.throughput_gb_per_s / self.bandwidth_gb_per_s


def efficiency_comparison(size_gb: float = 16.0) -> list[EfficiencyEntry]:
    """Fig. 12's bars: Bonsai at 8 and 32 GB/s DRAM vs the baselines.

    Baselines use published throughput at ``size_gb`` over their
    platforms' documented memory bandwidth (for SampleSort, 1/latency
    stands in for throughput, as the paper's footnote 3 does).
    """
    entries = []
    for key in ("paradis", "hrs", "samplesort"):
        spec = PUBLISHED_SORTERS[key]
        throughput = spec.throughput_gb_per_s(size_gb)
        if throughput is None or spec.memory_bandwidth is None:
            continue
        entries.append(
            EfficiencyEntry(
                name=spec.name,
                throughput_gb_per_s=throughput,
                bandwidth_gb_per_s=spec.memory_bandwidth / GB,
            )
        )
    total_bytes = int(size_gb * GB)
    for label, bandwidth in (("Bonsai 8", 8 * GB), ("Bonsai 32", 32 * GB)):
        throughput = bonsai_sort_throughput(total_bytes, bandwidth)
        entries.append(
            EfficiencyEntry(
                name=label,
                throughput_gb_per_s=throughput / GB,
                bandwidth_gb_per_s=bandwidth / GB,
            )
        )
    return entries
