"""ASCII charts for figure benches.

The offline environment has no plotting stack, so figure reproductions
render as monospace bar/line charts; the same data is also available as
CSV via :func:`repro.analysis.tables.rows_to_csv` for external plotting.
"""

from __future__ import annotations

import io
import math
from typing import Sequence

from repro.errors import ConfigurationError


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ConfigurationError("labels and values must align")
    if not values:
        return title + "\n(empty)\n"
    peak = max(values)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(str(label)) for label in labels)
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(width * value / peak)) if value > 0 else ""
        out.write(
            f"{str(label).ljust(label_width)} | {bar} {value:.3g}{unit}\n"
        )
    return out.getvalue()


def ascii_line_chart(
    xs: Sequence[float],
    series: dict[str, Sequence[float | None]],
    title: str = "",
    height: int = 12,
    width: int = 64,
    log_x: bool = False,
    log_y: bool = False,
) -> str:
    """Multi-series scatter/line chart on a character grid.

    Each series gets its own marker; None values are gaps.
    """
    if not xs:
        return title + "\n(empty)\n"
    markers = "*o+x#@%&"
    all_ys = [
        y for ys in series.values() for y in ys if y is not None and y > 0
    ]
    if not all_ys:
        return title + "\n(no data)\n"

    def tx(value: float) -> float:
        """x-axis transform (log when requested)."""
        return math.log10(value) if log_x else value

    def ty(value: float) -> float:
        """y-axis transform (log when requested)."""
        return math.log10(value) if log_y else value

    x_lo, x_hi = tx(min(xs)), tx(max(xs))
    y_lo, y_hi = ty(min(all_ys)), ty(max(all_ys))
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, ys) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in zip(xs, ys):
            if y is None or y <= 0:
                continue
            col = round((tx(x) - x_lo) / x_span * (width - 1))
            row = round((ty(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    out.write(f"y: {min(all_ys):.3g} .. {max(all_ys):.3g}"
              f"{' (log)' if log_y else ''}\n")
    for row in grid:
        out.write("|" + "".join(row) + "\n")
    out.write("+" + "-" * width + "\n")
    out.write(f"x: {min(xs):.3g} .. {max(xs):.3g}{' (log)' if log_x else ''}\n")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    out.write("legend: " + legend + "\n")
    return out.getvalue()
