"""Energy estimation from data movement (§VI-C2).

"As implementations of many algorithms are bottlenecked by memory
bandwidth, bandwidth-efficiency is one of the most important scalability
concerns ... Additionally, memory accesses account for most of the
energy consumed by many computer systems.  Thus, bandwidth-efficiency is
directly related to energy consumption."

This module makes that argument quantitative: energy per sorted byte is
modeled as (bytes moved) x (per-byte access energy of the memory
touched) plus a small on-chip compare term.  The per-byte figures are
standard architecture-community estimates (DDR4 ~15 pJ/bit off-chip,
HBM ~4 pJ/bit, NVMe flash path ~60 pJ/bit end-to-end); they are inputs,
not conclusions — the conclusion is the *ratio* between sorters, which
follows from pass counts, exactly as the paper argues.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GB

#: Per-byte access energy defaults (joules/byte).
DDR_J_PER_BYTE = 15e-12 * 8
HBM_J_PER_BYTE = 4e-12 * 8
FLASH_J_PER_BYTE = 60e-12 * 8
#: On-chip compare-and-exchange energy per record per tree level.
COMPARE_J_PER_RECORD_LEVEL = 0.5e-12


@dataclass(frozen=True)
class EnergyModel:
    """Energy accounting for data-movement-dominated sorting."""

    dram_j_per_byte: float = DDR_J_PER_BYTE
    flash_j_per_byte: float = FLASH_J_PER_BYTE
    compare_j: float = COMPARE_J_PER_RECORD_LEVEL

    def __post_init__(self) -> None:
        for label, value in (
            ("DRAM energy", self.dram_j_per_byte),
            ("flash energy", self.flash_j_per_byte),
            ("compare energy", self.compare_j),
        ):
            if value < 0:
                raise ConfigurationError(f"{label} must be >= 0, got {value}")

    # ------------------------------------------------------------------
    def sort_energy_joules(
        self,
        total_bytes: float,
        dram_passes: float,
        flash_passes: float = 0.0,
        record_bytes: int = 4,
        tree_levels: int = 6,
    ) -> float:
        """Energy of a sort making the given number of full data passes.

        Each pass reads and writes every byte once (duplex counts both
        directions for energy even though they overlap in time).
        """
        if total_bytes < 0 or dram_passes < 0 or flash_passes < 0:
            raise ConfigurationError("sizes and pass counts must be >= 0")
        movement = 2 * total_bytes * (
            dram_passes * self.dram_j_per_byte + flash_passes * self.flash_j_per_byte
        )
        records = total_bytes / record_bytes
        compute = records * dram_passes * tree_levels * self.compare_j
        return movement + compute

    def joules_per_gb(self, *args, **kwargs) -> float:
        """Energy normalised per sorted decimal GB."""
        total_bytes = args[0] if args else kwargs["total_bytes"]
        return self.sort_energy_joules(*args, **kwargs) / (total_bytes / GB)


def bonsai_energy_per_gb(
    total_bytes: float = 16 * GB,
    stages: int = 5,
    model: EnergyModel | None = None,
) -> float:
    """Energy/GB of the Bonsai DRAM sorter: ``stages`` full DRAM passes."""
    model = model or EnergyModel()
    return model.joules_per_gb(total_bytes, dram_passes=stages)


def baseline_energy_per_gb(
    total_bytes: float,
    bytes_moved_per_byte_sorted: float,
    model: EnergyModel | None = None,
) -> float:
    """Energy/GB of a sorter characterised by its data-movement ratio.

    ``bytes_moved_per_byte_sorted`` is the sorter's total off-chip
    traffic divided by the input size — e.g. an LSD radix sort makes one
    read+write pass per digit.
    """
    model = model or EnergyModel()
    if bytes_moved_per_byte_sorted < 0:
        raise ConfigurationError("movement ratio must be >= 0")
    # Expressed as equivalent DRAM passes (each pass moves 2 bytes/byte).
    passes = bytes_moved_per_byte_sorted / 2
    return model.joules_per_gb(total_bytes, dram_passes=passes)
