"""Roofline-style bound analysis for AMT configurations (§III-A1).

The paper's central sizing intuition — "increasing p is more beneficial
than increasing l up until the AMT throughput reaches the DRAM
bandwidth" — is a roofline argument: a configuration is either
*compute-bound* (its p·f·r datapath is the ceiling) or *bandwidth-bound*
(the off-chip memory is).  This module classifies configurations, finds
the crossover p for a given memory, and computes how much headroom each
resource leaves, which the design-space examples use to narrate Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.core.configuration import AmtConfig
from repro.core.parameters import HardwareParams, MergerArchParams
from repro.errors import ConfigurationError

Bound = Literal["compute", "bandwidth", "balanced"]


@dataclass(frozen=True)
class RooflinePoint:
    """Where one configuration sits against the memory roofline."""

    config: AmtConfig
    datapath_bytes: float
    memory_bytes: float

    @property
    def bound(self) -> Bound:
        """Which ceiling binds this configuration."""
        if abs(self.datapath_bytes - self.memory_bytes) < 1e-6 * self.memory_bytes:
            return "balanced"
        return "compute" if self.datapath_bytes < self.memory_bytes else "bandwidth"

    @property
    def achievable_bytes(self) -> float:
        """The stage streaming rate: min of the two ceilings."""
        return min(self.datapath_bytes, self.memory_bytes)

    @property
    def headroom(self) -> float:
        """Unused fraction of the non-binding ceiling."""
        high = max(self.datapath_bytes, self.memory_bytes)
        return 1.0 - self.achievable_bytes / high


def classify(
    config: AmtConfig, hardware: HardwareParams, arch: MergerArchParams
) -> RooflinePoint:
    """Place a configuration against its platform's roofline.

    Unrolled configurations compare the per-AMT datapath against the
    per-AMT bandwidth share, which is what decides each tree's duty.
    """
    share = hardware.beta_dram / config.total_amts
    return RooflinePoint(
        config=config,
        datapath_bytes=arch.amt_throughput_bytes(config.p),
        memory_bytes=share,
    )


def balanced_p(hardware: HardwareParams, arch: MergerArchParams) -> int:
    """Smallest power-of-two p whose datapath reaches the memory ceiling.

    This is the p the latency optimizer lands on (§IV-A: the p = 32 AMT
    "matches the peak bandwidth of DRAM"); anything wider wastes LUTs.
    """
    p = 1
    while arch.amt_throughput_bytes(p) < hardware.beta_dram:
        p *= 2
        if p > 2**20:  # bonsai-lint: disable=unit-mix -- merger-width cap, not bytes
            raise ConfigurationError(
                "no practical p reaches this bandwidth; check the units"
            )
    return p


def unroll_for_bandwidth(
    hardware: HardwareParams, arch: MergerArchParams, p_cap: int = 32
) -> int:
    """Unroll factor needed to soak the memory with ``p <= p_cap`` trees.

    The HBM sizing rule of §IV-B: with the datapath capped (the paper
    builds up to 32-mergers), bandwidth beyond ``p_cap * f * r`` is only
    reachable by unrolling.
    """
    per_tree = arch.amt_throughput_bytes(p_cap)
    lam = 1
    while lam * per_tree < hardware.beta_dram:
        lam *= 2
    return lam
