"""Parameter sweeps behind Fig. 5 and Fig. 11/13.

:func:`bandwidth_sweep` re-optimises the AMT configuration at each DRAM
bandwidth (that is Fig. 5's whole point: "Bonsai can pick AMT
configurations that optimally utilize any off-chip memory bandwidth");
:func:`size_sweep` evaluates a fixed platform across input sizes.
"""

from __future__ import annotations

from repro.core import presets
from repro.core.parameters import ArrayParams
from repro.errors import ConfigurationError
from repro.units import GB, ms_per_gb


def bandwidth_sweep(
    bandwidths: list[float],
    total_bytes: int = 16 * GB,
    presort_run: int = 16,
) -> list[dict]:
    """Optimal sorting time per DRAM bandwidth (Fig. 5's Bonsai curve).

    Returns dicts with the bandwidth, the chosen configuration and the
    modeled time for ``total_bytes``.
    """
    if not bandwidths:
        raise ConfigurationError("sweep needs at least one bandwidth")
    array = ArrayParams.from_bytes(total_bytes)
    points = []
    for bandwidth in bandwidths:
        platform = presets.custom_dram(bandwidth)
        bonsai = platform.bonsai(presort_run=presort_run)
        best = bonsai.latency_optimal(array)
        points.append(
            {
                "bandwidth": bandwidth,
                "config": best.config,
                "seconds": best.latency_seconds,
                "ms_per_gb": ms_per_gb(best.latency_seconds, total_bytes),
            }
        )
    return points


def size_sweep(
    sizes_bytes: list[int],
    platform=None,
    presort_run: int = 16,
    leaves_cap: int | None = 64,
    single_amt: bool = True,
) -> list[dict]:
    """Modeled sorting time across input sizes on one platform (Fig. 11).

    Defaults to the measured-bandwidth F1 with the implemented l = 64 cap
    and a single AMT (§VI-C1's hardware), which is the configuration
    behind the paper's reported 172 ms/GB.  ``single_amt=False`` lets the
    optimizer unroll as the pure model would.
    """
    if not sizes_bytes:
        raise ConfigurationError("sweep needs at least one size")
    platform = platform or presets.aws_f1_measured()
    bonsai = platform.bonsai(presort_run=presort_run, leaves_cap=leaves_cap)
    if single_amt:
        bonsai.unroll_max = 1
    points = []
    for size in sizes_bytes:
        array = ArrayParams.from_bytes(size)
        best = bonsai.latency_optimal(array)
        points.append(
            {
                "bytes": size,
                "config": best.config,
                "seconds": best.latency_seconds,
                "ms_per_gb": ms_per_gb(best.latency_seconds, size),
            }
        )
    return points
