"""Plain-text table rendering for experiment reports.

Every bench prints the paper's rows next to the reproduction's, so the
renderer favours alignment and explicit "-" markers for missing entries
(Table I's dashes) over decoration.
"""

from __future__ import annotations

import io
from typing import Sequence

from repro.errors import ConfigurationError


def _format_cell(value: object, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    precision: int = 1,
) -> str:
    """Render an aligned monospace table.

    ``None`` cells render as "-" (no reported result, as in Table I).
    """
    if not headers:
        raise ConfigurationError("table needs at least one column")
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells for {len(headers)} headers: {row!r}"
            )
    text_rows = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[col]) for row in text_rows))
        if text_rows
        else len(str(header))
        for col, header in enumerate(headers)
    ]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    out.write(header_line + "\n")
    out.write("-" * len(header_line) + "\n")
    for row in text_rows:
        out.write("  ".join(cell.rjust(w) for cell, w in zip(row, widths)) + "\n")
    return out.getvalue()


def rows_to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """CSV form of the same data (for plotting outside the repo)."""
    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        lines.append(
            ",".join("" if cell is None else str(cell) for cell in row)
        )
    return "\n".join(lines) + "\n"
