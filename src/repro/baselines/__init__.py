"""Comparison baselines.

The paper compares against the best published sorters per platform
(Table I, Figs. 5/11/12).  For each we carry (a) the published
performance numbers, (b) an analytical cost model interpolating them,
and (c) a functional Python implementation of the algorithm so examples
and tests can compare real outputs at laptop scale:

* :mod:`repro.baselines.paradis` — PARADIS, in-place parallel radix sort
  (CPU state of the art).
* :mod:`repro.baselines.hrs` — hybrid radix sort (GPU state of the art):
  GPU-sized chunks radix-sorted, then CPU-merged.
* :mod:`repro.baselines.samplesort` — FPGA-accelerated SampleSort.
* :mod:`repro.baselines.terabyte_sort` — FPGA flash-based Terabyte Sort.
* :mod:`repro.baselines.distributed` — per-node numbers of distributed
  CPU/GPU sorters (Tencent sort, GPU clusters).
* :mod:`repro.baselines.published` — Table I verbatim plus platform
  memory-bandwidth metadata for Fig. 12.
* :mod:`repro.baselines.lower_bounds` — the I/O lower bound of Fig. 5.
"""

from repro.baselines.published import (
    PublishedSorter,
    PUBLISHED_SORTERS,
    TABLE_I_SIZES_GB,
    table_i_ms_per_gb,
)
from repro.baselines.paradis import ParadisSorter
from repro.baselines.hrs import HybridRadixSorter
from repro.baselines.samplesort import SampleSorter
from repro.baselines.terabyte_sort import TerabyteSorter
from repro.baselines.lower_bounds import io_lower_bound_seconds, aggarwal_vitter_passes

__all__ = [
    "PublishedSorter",
    "PUBLISHED_SORTERS",
    "TABLE_I_SIZES_GB",
    "table_i_ms_per_gb",
    "ParadisSorter",
    "HybridRadixSorter",
    "SampleSorter",
    "TerabyteSorter",
    "io_lower_bound_seconds",
    "aggarwal_vitter_passes",
]
