"""Shared baseline-sorter interface.

Each baseline implements the same two facets the Bonsai engine exposes:
``sort(data)`` — a functional reference implementation of the published
algorithm, runnable at laptop scale — and ``modeled_seconds(total_bytes)``
— a cost model anchored to the published performance numbers so
cross-platform comparisons (Figs. 5/11/12) use the same figures the paper
compared against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.published import PublishedSorter
from repro.errors import ConfigurationError
from repro.units import GB


@dataclass
class BaselineSorter:
    """Base class wiring the published-number cost model."""

    spec: PublishedSorter

    # ------------------------------------------------------------------
    def sort(self, data: np.ndarray) -> np.ndarray:  # pragma: no cover
        """Functional reference sort; subclasses override."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def modeled_ms_per_gb(self, total_bytes: float) -> float | None:
        """Published/interpolated ms-per-GB at this input size."""
        return self.spec.at_size_gb(total_bytes / GB)

    def modeled_seconds(self, total_bytes: float) -> float | None:
        """Published/interpolated sorting time at this input size."""
        if total_bytes <= 0:
            raise ConfigurationError(f"input size must be positive, got {total_bytes}")
        ms = self.modeled_ms_per_gb(total_bytes)
        return None if ms is None else ms * 1e-3 * (total_bytes / GB)

    def check_sorted(self, original: np.ndarray, result: np.ndarray) -> None:
        """Reference-sorter self-check used by tests."""
        if result.shape != original.shape:
            raise ConfigurationError("baseline changed the record count")
        if result.size and not np.all(result[:-1] <= result[1:]):
            raise ConfigurationError("baseline produced unsorted output")
