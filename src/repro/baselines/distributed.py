"""Distributed-sorter comparison points (Table I's two cluster rows).

The paper normalises cluster results per node: "Performance of
distributed sorters multiplied by number of server nodes used", which is
what makes the 2.9-3.4 s/GB GPU-cluster and ~0.5 s/GB CPU-cluster rows
comparable to a single FPGA node.  This module exposes that arithmetic
so experiments can recompute per-node figures from the clusters' raw
aggregate results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GB, ms_per_gb


@dataclass(frozen=True)
class ClusterResult:
    """One published cluster sorting result."""

    name: str
    total_bytes: float
    elapsed_seconds: float
    nodes: int
    citation: str = ""

    def __post_init__(self) -> None:
        if self.total_bytes <= 0 or self.elapsed_seconds <= 0 or self.nodes < 1:
            raise ConfigurationError(f"invalid cluster result {self.name!r}")

    @property
    def aggregate_gb_per_s(self) -> float:
        """Whole-cluster sorted throughput."""
        return self.total_bytes / GB / self.elapsed_seconds

    @property
    def per_node_gb_per_s(self) -> float:
        """Throughput each node contributed."""
        return self.aggregate_gb_per_s / self.nodes

    @property
    def per_node_ms_per_gb(self) -> float:
        """Table I's normalisation: elapsed time x nodes, per GB."""
        return ms_per_gb(self.elapsed_seconds * self.nodes, self.total_bytes)


#: Representative published cluster runs behind Table I's rows:
#: Tencent Sort's 100 TB GraySort entry (512 nodes, 98.8 s) and the
#: GPU-cluster result of Shamoto et al. normalised the same way.
CLUSTER_RESULTS = {
    "tencent-100tb": ClusterResult(
        name="Tencent Sort 100 TB",
        total_bytes=100e12,
        elapsed_seconds=98.8,
        nodes=512,
        citation="[36], GraySort 2016",
    ),
    "gpu-cluster-2tb": ClusterResult(
        name="GPU cluster 2 TB",
        total_bytes=2e12,
        elapsed_seconds=26.3,
        nodes=256,
        citation="[37]",
    ),
}


def per_node_penalty(result: ClusterResult, single_node_ms_per_gb: float) -> float:
    """How much worse the cluster's per-node latency is than a single
    Bonsai node (the paper's "2x better per-node latency" claim)."""
    if single_node_ms_per_gb <= 0:
        raise ConfigurationError("single-node latency must be positive")
    return result.per_node_ms_per_gb / single_node_ms_per_gb
