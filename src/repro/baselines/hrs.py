"""Hybrid radix sort (HRS) — the GPU baseline (Stehle & Jacobsen, 2017).

HRS radix-sorts GPU-memory-sized chunks on the device, then merges the
sorted chunks on the CPU.  The paper's critique (§I, §VII-B): "this
CPU-side merging dominates the computation time for large enough
arrays".  The functional model reproduces exactly that structure —
chunked LSD radix sorts followed by a k-way CPU merge — and the cost
model exposes the chunk-count-dependent merge term that makes HRS lose
its edge past GPU memory capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import BaselineSorter
from repro.baselines.published import PUBLISHED_SORTERS, PublishedSorter
from repro.engine.stage import merge_runs_numpy
from repro.errors import ConfigurationError
from repro.units import GB

RADIX_BITS = 8


def lsd_radix_sort(data: np.ndarray) -> np.ndarray:
    """Vectorised LSD radix sort (stable), byte digits."""
    out = np.asarray(data).copy()
    if not np.issubdtype(out.dtype, np.unsignedinteger):
        raise ConfigurationError(f"radix sort expects unsigned keys, got {out.dtype}")
    if out.size <= 1:
        return out
    for byte_index in range(out.dtype.itemsize):
        shift = byte_index * RADIX_BITS
        digits = (out >> np.uint64(shift)).astype(np.uint64) & np.uint64(0xFF)
        order = np.argsort(digits, kind="stable")
        out = out[order]
    return out


@dataclass
class HybridRadixSorter(BaselineSorter):
    """GPU-chunked radix sort with CPU-side k-way merge.

    Parameters
    ----------
    gpu_memory_bytes:
        Device memory available for chunks (HRS's published platform had
        8 GB; usable chunk ~2 GB after double buffering).
    scale_chunk_records:
        Chunk size used by the laptop-scale functional path, standing in
        for the GPU-memory chunk exactly as the SSD sorter scales runs.
    """

    spec: PublishedSorter = field(default_factory=lambda: PUBLISHED_SORTERS["hrs"])
    gpu_memory_bytes: int = 8 * GB
    chunk_fraction: float = 0.25
    scale_chunk_records: int = 65_536

    def sort(self, data: np.ndarray) -> np.ndarray:
        """Radix-sort GPU-sized chunks, then CPU-merge them."""
        data = np.asarray(data)
        if data.size == 0:
            return data.copy()
        chunks = [
            lsd_radix_sort(data[start : start + self.scale_chunk_records])
            for start in range(0, data.size, self.scale_chunk_records)
        ]
        out = merge_runs_numpy(chunks)
        self.check_sorted(data, out)
        return out

    # ------------------------------------------------------------------
    def chunk_count(self, total_bytes: float) -> int:
        """GPU-memory chunks at true scale."""
        usable = self.gpu_memory_bytes * self.chunk_fraction
        return max(1, int(np.ceil(total_bytes / usable)))

    def cpu_merge_dominates(self, total_bytes: float) -> bool:
        """§I: past ~32 GB "GPU-based sorters spend the majority of their
        compute time on the CPU" — i.e. many chunks to merge."""
        return self.chunk_count(total_bytes) > 8
