"""I/O lower bounds (Fig. 5's dashed line; §I's Aggarwal-Vitter citation).

Fig. 5 includes "the time required to stream the entire data from and to
memory" as the unbeatable floor for any sorter; with duplex memory that
is one full pass at the memory bandwidth.

The classical external-memory lower bound (Aggarwal & Vitter 1988) gives
the minimum number of passes any algorithm needs when only ``M`` bytes
fit on-chip/in-fast-memory and transfers happen in blocks of ``B``:
``ceil(log_{M/B}(N/M)) + 1`` passes over the data — the asymptotic
argument for merge sort's optimality the paper leans on (§I: "due to its
asymptotically optimal I/O complexity, merge sort is generally regarded
as the preferred technique").
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.units import GB, ceil_log, ms


def io_lower_bound_seconds(total_bytes: float, bandwidth: float, duplex: bool = True) -> float:
    """Fig. 5's floor: one streamed pass (two for half-duplex memory)."""
    if total_bytes < 0:
        raise ConfigurationError(f"size must be >= 0, got {total_bytes}")
    if bandwidth <= 0:
        raise ConfigurationError(f"bandwidth must be positive, got {bandwidth}")
    passes = 1 if duplex else 2
    return passes * total_bytes / bandwidth


def aggarwal_vitter_passes(
    total_bytes: float, fast_memory_bytes: float, block_bytes: float
) -> int:
    """Minimum data passes for external sorting (Aggarwal-Vitter).

    ``1 + ceil(log_{M/B}(N/M))``: one run-formation pass plus the merge
    passes, each merging ``M/B`` runs.
    """
    for label, value in (
        ("total size", total_bytes),
        ("fast memory", fast_memory_bytes),
        ("block size", block_bytes),
    ):
        if value <= 0:
            raise ConfigurationError(f"{label} must be positive, got {value}")
    fanin = fast_memory_bytes / block_bytes
    if fanin <= 1:
        raise ConfigurationError(
            "fast memory must hold more than one block for merging"
        )
    if total_bytes <= fast_memory_bytes:
        return 1
    return 1 + ceil_log(total_bytes / fast_memory_bytes, fanin)


def lower_bound_ms_per_gb(bandwidth: float, duplex: bool = True) -> float:
    """The Fig. 5 floor normalised per GB."""
    return ms(io_lower_bound_seconds(GB, bandwidth, duplex))
