"""PARADIS-style in-place parallel radix sort (CPU baseline).

PARADIS (Cho et al., VLDB 2015) is the paper's CPU state of the art:
an in-place MSD radix sort whose "permute" phase speculatively swaps
records into their destination buckets and whose "repair" phase fixes
the stragglers.  We implement the sequential core of that algorithm —
bucket histograms, in-place cyclic permutation, recursive descent on
digit positions — which is the behaviour relevant at laptop scale (the
multi-socket load-balancing heuristics PARADIS adds do not change the
output, only wall-clock on 2015-era servers, which the cost model covers
via the published numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import BaselineSorter
from repro.baselines.published import PUBLISHED_SORTERS, PublishedSorter
from repro.errors import ConfigurationError

#: PARADIS uses byte-wide digits.
RADIX_BITS = 8
RADIX = 1 << RADIX_BITS


@dataclass
class ParadisSorter(BaselineSorter):
    """In-place MSD radix sort over unsigned integer keys."""

    spec: PublishedSorter = field(
        default_factory=lambda: PUBLISHED_SORTERS["paradis"]
    )
    #: Below this bucket size, fall back to a comparison sort (as PARADIS
    #: falls back to insertion-class sorting for tiny buckets).
    small_cutoff: int = 64

    def sort(self, data: np.ndarray) -> np.ndarray:
        """In-place MSD radix sort (PARADIS's core algorithm)."""
        data = np.asarray(data)
        if not np.issubdtype(data.dtype, np.unsignedinteger):
            raise ConfigurationError(
                f"radix baseline expects unsigned keys, got {data.dtype}"
            )
        out = data.copy()
        top_shift = (out.dtype.itemsize - 1) * RADIX_BITS
        self._radix_pass(out, 0, out.size, top_shift)
        self.check_sorted(data, out)
        return out

    # ------------------------------------------------------------------
    def _radix_pass(self, data: np.ndarray, lo: int, hi: int, shift: int) -> None:
        """In-place MSD pass over data[lo:hi] on the digit at ``shift``."""
        length = hi - lo
        if length <= 1:
            return
        if length <= self.small_cutoff:
            data[lo:hi] = np.sort(data[lo:hi], kind="stable")
            return
        view = data[lo:hi]
        digits = (view >> np.uint64(shift)).astype(np.uint64) & np.uint64(RADIX - 1)
        counts = np.bincount(digits, minlength=RADIX)
        ends = np.cumsum(counts)
        starts = ends - counts
        # In-place cyclic permutation (PARADIS's permute+repair combined:
        # we place each record directly, which is what repair converges to).
        heads = starts.copy()
        for bucket in range(RADIX):
            position = heads[bucket]
            end = ends[bucket]
            while position < end:
                digit = int(
                    (int(view[position]) >> shift) & (RADIX - 1)
                )
                if digit == bucket:
                    position += 1
                    heads[bucket] = position
                    continue
                target = heads[digit]
                view[position], view[target] = view[target], view[position]
                heads[digit] = target + 1
        if shift == 0:
            return
        for bucket in range(RADIX):
            if counts[bucket] > 1:
                self._radix_pass(
                    data, lo + int(starts[bucket]), lo + int(ends[bucket]),
                    shift - RADIX_BITS,
                )

    # ------------------------------------------------------------------
    def radix_passes(self, key_bytes: int) -> int:
        """Digit positions an MSD sort may touch (model sanity checks)."""
        return key_bytes
