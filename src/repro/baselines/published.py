"""Published comparison numbers (Table I) and platform metadata.

Table I reports sorting time in ms per GB for the best sorters on each
platform across problem sizes; dashes mean no reported result and map to
``None`` here.  Distributed sorters' times are "multiplied by number of
server nodes used", i.e. per-node-normalised, exactly as the paper does.

``platform_bandwidth`` carries each system's off-chip memory bandwidth,
used by the Fig. 12 bandwidth-efficiency comparison; values are the
publicly documented spec rates of the platforms the respective papers
evaluated on (see EXPERIMENTS.md for the sourcing discussion).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GB, MS

#: The column headers of Table I, in GB.
TABLE_I_SIZES_GB = (4, 8, 16, 32, 64, 128, 512, 2_048, 102_400)

#: Human-readable labels for the columns (4 GB ... 2 TB, 100 TB).
TABLE_I_SIZE_LABELS = (
    "4 GB", "8 GB", "16 GB", "32 GB", "64 GB", "128 GB", "512 GB", "2 TB", "100 TB",
)


@dataclass(frozen=True)
class PublishedSorter:
    """One row of Table I plus Fig. 12 metadata."""

    name: str
    platform: str
    ms_per_gb: tuple[float | None, ...]
    memory_bandwidth: float | None = None
    citation: str = ""

    def __post_init__(self) -> None:
        if len(self.ms_per_gb) != len(TABLE_I_SIZES_GB):
            raise ConfigurationError(
                f"{self.name}: expected {len(TABLE_I_SIZES_GB)} Table I "
                f"columns, got {len(self.ms_per_gb)}"
            )

    def at_size_gb(self, size_gb: float) -> float | None:
        """ms/GB at a Table I column, or interpolated between columns.

        Returns None outside the sorter's reported range.
        """
        known = [
            (size, value)
            for size, value in zip(TABLE_I_SIZES_GB, self.ms_per_gb)
            if value is not None
        ]
        if not known:
            return None
        sizes = [size for size, _ in known]
        if not sizes[0] <= size_gb <= sizes[-1]:
            return None
        for (s0, v0), (s1, v1) in zip(known, known[1:]):
            if s0 <= size_gb <= s1:
                if s1 == s0:
                    return v0
                fraction = (size_gb - s0) / (s1 - s0)
                return v0 + fraction * (v1 - v0)
        return known[-1][1]

    def throughput_gb_per_s(self, size_gb: float) -> float | None:
        """Sorted GB/s at a given size."""
        ms = self.at_size_gb(size_gb)
        return None if ms is None else 1.0 / (ms * MS)

    def bandwidth_efficiency(self, size_gb: float) -> float | None:
        """Fig. 12's metric: sorter throughput over memory bandwidth."""
        if self.memory_bandwidth is None:
            return None
        throughput = self.throughput_gb_per_s(size_gb)
        if throughput is None:
            return None
        return throughput * GB / self.memory_bandwidth


#: Table I, verbatim.  Memory bandwidths: PARADIS ran on a 4-socket Xeon
#: E7-8890 v3 class server (~68 GB/s usable stream bandwidth per the
#: PARADIS paper's platform); HRS on a GTX 1080 (320 GB/s GDDR5X);
#: SampleSort on four DDR4-2400 channels (~76.8 GB/s); Terabyte Sort on
#: flash at ~4.8 GB/s aggregate.
PUBLISHED_SORTERS: dict[str, PublishedSorter] = {
    "paradis": PublishedSorter(
        name="PARADIS",
        platform="CPU",
        ms_per_gb=(436, 436, 395, 388, 363, None, None, None, None),
        memory_bandwidth=68 * GB,
        citation="Cho et al., VLDB 2015 [20]",
    ),
    "cpu-distributed": PublishedSorter(
        name="Tencent Sort (per node)",
        platform="CPU distributed",
        ms_per_gb=(None, None, None, None, None, 508, 508, 508, 466),
        memory_bandwidth=None,
        citation="Jiang et al. [36]",
    ),
    "hrs": PublishedSorter(
        name="HRS",
        platform="GPU",
        ms_per_gb=(208, 208, 208, 224, 260, 267, None, None, None),
        memory_bandwidth=320 * GB,
        citation="Stehle & Jacobsen, SIGMOD 2017 [18]",
    ),
    "gpu-distributed": PublishedSorter(
        name="GPU distributed (per node)",
        platform="GPU distributed",
        ms_per_gb=(None, None, None, None, None, None, 2_909, 3_368, None),
        memory_bandwidth=None,
        citation="Shamoto et al., Big Data 2016 [37]",
    ),
    "samplesort": PublishedSorter(
        name="SampleSort",
        platform="FPGA",
        ms_per_gb=(215, 217, 220, 643, None, None, None, None, None),
        memory_bandwidth=76.8 * GB,
        citation="Chen et al., FCCM 2019 [19]",
    ),
    "terabyte-sort": PublishedSorter(
        name="Terabyte Sort",
        platform="FPGA",
        ms_per_gb=(None, None, None, None, 3_401, 4_366, 4_347, 4_347, 6_210),
        memory_bandwidth=4.8 * GB,
        citation="Jun et al., FCCM 2017 [29]",
    ),
}

#: The paper's own Table I row for Bonsai (what our model must reproduce).
BONSAI_TABLE_I_MS_PER_GB = (172, 172, 172, 172, 172, 250, 250, 250, 375)


def table_i_ms_per_gb() -> dict[str, tuple[float | None, ...]]:
    """All Table I rows including Bonsai's, keyed by sorter name."""
    rows = {spec.name: spec.ms_per_gb for spec in PUBLISHED_SORTERS.values()}
    rows["Bonsai (paper)"] = BONSAI_TABLE_I_MS_PER_GB
    return rows


def best_published_at(size_gb: float) -> tuple[str, float] | None:
    """The fastest non-Bonsai published sorter at a given size."""
    best: tuple[str, float] | None = None
    for spec in PUBLISHED_SORTERS.values():
        ms = spec.at_size_gb(size_gb)
        if ms is None:
            continue
        if best is None or ms < best[1]:
            best = (spec.name, ms)
    return best
