"""FPGA-accelerated SampleSort (Chen et al., FCCM 2019) — FPGA baseline.

SampleSort samples splitters, partitions records into buckets on the
host, and accelerates the per-bucket sorts.  The paper's critique:
"SampleSort relies on the CPU for sampling and bucketing, which limits
scalability: indeed, for arrays over 16 GB, the performance drops 3x"
(visible in Table I's 643 ms/GB at 32 GB).  The functional model
implements classic sample sort: oversampled splitter selection,
bucketing, and per-bucket sorting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import BaselineSorter
from repro.baselines.published import PUBLISHED_SORTERS, PublishedSorter
from repro.errors import ConfigurationError
from repro.units import GB


@dataclass
class SampleSorter(BaselineSorter):
    """Sample sort with oversampled splitters."""

    spec: PublishedSorter = field(
        default_factory=lambda: PUBLISHED_SORTERS["samplesort"]
    )
    buckets: int = 64
    oversample: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.buckets < 2:
            raise ConfigurationError(f"need >= 2 buckets, got {self.buckets}")
        if self.oversample < 1:
            raise ConfigurationError(f"oversample must be >= 1, got {self.oversample}")

    def choose_splitters(self, data: np.ndarray) -> np.ndarray:
        """Oversample, sort the sample, take evenly spaced splitters."""
        rng = np.random.default_rng(self.seed)
        sample_size = min(data.size, self.buckets * self.oversample)
        sample = np.sort(rng.choice(data, size=sample_size, replace=False))
        positions = np.linspace(0, sample_size - 1, self.buckets + 1)[1:-1]
        return sample[positions.astype(int)]

    def sort(self, data: np.ndarray) -> np.ndarray:
        """Sample sort: splitters -> buckets -> per-bucket sorts."""
        data = np.asarray(data)
        if data.size <= self.buckets * self.oversample:
            return np.sort(data, kind="stable")
        splitters = self.choose_splitters(data)
        assignment = np.searchsorted(splitters, data, side="right")
        out = np.empty_like(data)
        cursor = 0
        for bucket in range(self.buckets):
            members = data[assignment == bucket]
            members = np.sort(members, kind="stable")
            out[cursor : cursor + members.size] = members
            cursor += members.size
        self.check_sorted(data, out)
        return out

    # ------------------------------------------------------------------
    def bucket_skew(self, data: np.ndarray) -> float:
        """Largest bucket over ideal size — the load-imbalance the
        host-side bucketing suffers on skewed inputs."""
        splitters = self.choose_splitters(np.asarray(data))
        assignment = np.searchsorted(splitters, data, side="right")
        counts = np.bincount(assignment, minlength=self.buckets)
        ideal = data.size / self.buckets
        return float(counts.max() / ideal) if ideal else 0.0

    def scaling_cliff_gb(self) -> float:
        """Input size where published performance collapses (~3x)."""
        return 16.0
