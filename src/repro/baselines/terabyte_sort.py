"""Terabyte Sort (Jun et al., FCCM 2017) — flash-based FPGA baseline.

A merge-tree sorter over flash storage that scales to 1 TB but, per the
paper's analysis (§I, §IV-C), "misses many optimization opportunities and
does not perform well on smaller-scale sorting tasks": its merge tree is
narrow (16-to-1) and its per-pass throughput is flash-bound, so it needs
many more passes than Bonsai's wide phase-two tree.  The functional
model is an external merge sort with a 16-way tree; the cost model's
pass arithmetic shows why its ms/GB sits 17x above Bonsai's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import BaselineSorter
from repro.baselines.published import PUBLISHED_SORTERS, PublishedSorter
from repro.engine.stage import merge_stage, split_into_runs
from repro.units import GB, ceil_log


@dataclass
class TerabyteSorter(BaselineSorter):
    """External merge sort with a narrow (16-leaf) merge tree."""

    spec: PublishedSorter = field(
        default_factory=lambda: PUBLISHED_SORTERS["terabyte-sort"]
    )
    fanin: int = 16
    initial_run_records: int = 4096
    flash_bandwidth: float = 4.8 * GB

    def sort(self, data: np.ndarray) -> np.ndarray:
        """External merge sort with the narrow 16-way tree."""
        data = np.asarray(data)
        if data.size == 0:
            return data.copy()
        runs = split_into_runs(data, self.initial_run_records)
        while len(runs) > 1:
            runs = merge_stage(runs, self.fanin)
        self.check_sorted(data, runs[0])
        return runs[0]

    # ------------------------------------------------------------------
    def merge_passes(self, total_bytes: float, record_bytes: int = 4) -> int:
        """Flash round trips at true scale."""
        n_records = max(1, int(total_bytes // record_bytes))
        n_runs = max(1, -(-n_records // self.initial_run_records))
        return max(1, ceil_log(n_runs, self.fanin))

    def modeled_seconds_from_structure(
        self, total_bytes: float, record_bytes: int = 4
    ) -> float:
        """Structural cost model: passes x flash round-trip time.

        Used for sizes outside the published range; inside it, prefer
        :meth:`modeled_seconds` (published numbers).
        """
        passes = self.merge_passes(total_bytes, record_bytes)
        return passes * total_bytes / self.flash_bandwidth
