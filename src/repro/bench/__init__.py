"""Performance-trajectory benchmark harness (``bonsai bench``).

Times representative :func:`~repro.hw.tree.simulate_merge` shapes and
optimizer sweeps under both simulation engines — the event-driven fast
path and the naive per-cycle stepper — verifying on every run that the
two produce identical results, and records the wall-clock trajectory in
``BENCH_simulator.json`` so performance regressions are visible in CI.

See ``docs/performance.md`` for how to run and read the numbers.
"""

from repro.bench.runner import (
    BenchResult,
    compare_to_baseline,
    run_suite,
    write_report,
)
from repro.bench.scenarios import SCENARIOS, Scenario

__all__ = [
    "BenchResult",
    "SCENARIOS",
    "Scenario",
    "compare_to_baseline",
    "run_suite",
    "write_report",
]
