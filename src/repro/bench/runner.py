# bonsai-lint: disable-file=determinism -- the harness times host wall-clock
# by design; everything it times is seeded and engine-verified deterministic.
"""Benchmark runner: times scenarios, verifies engines agree, emits JSON.

This is the only module in the package that reads the host clock.  Every
simulator scenario is executed under **both** engines — the event-driven
fast path and the naive per-cycle stepper — and the run fails loudly if
their outputs or statistics differ, so the recorded speedups can never
come from a divergent simulation.  The optimizer scenario compares a
cache-cold instance per sweep against one shared (memoized) instance and
checks the rankings are identical.

Timing uses the best of ``reps`` repetitions of ``time.perf_counter``
(wall clock, per the perf-trajectory contract); quick mode shrinks the
workloads and repetitions for CI smoke runs.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.bench.scenarios import (
    BY_NAME,
    JOBS_SCAN,
    SCENARIOS,
    Scenario,
    make_bounded_optimizer,
    make_cluster_executor,
    make_cluster_skew_records,
    make_obs_sorter,
    make_optimizer,
    make_unrolled_sorter,
    run_end_to_end,
    run_micro,
    run_obs_workload,
    run_optimizer_sweep,
    run_parallel_optimizer_sweep,
)
from repro.distributed.executor import ClusterExecutionReport
from repro.errors import ConfigurationError, SimulationError
from repro.network import flims
from repro.obs.runtime import DISABLED, activated, live_observation, observation
from repro.parallel import ParallelPlan, available_cpus
from repro.records.valsort import content_digest

#: Report schema tag; bump when the JSON layout changes.
SCHEMA = "bonsai-bench/v1"

#: CI gate: fail when a scenario's fast-engine time exceeds the committed
#: baseline by more than this factor.
DEFAULT_MAX_SLOWDOWN = 2.0


@dataclass
class BenchResult:
    """One scenario's timings (seconds) and verification payload."""

    name: str
    kind: str
    summary: str
    naive_seconds: float
    fast_seconds: float
    cycles: int | None = None
    bandwidth_bound: bool = False
    target_speedup: float | None = None
    extra: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Naive-over-fast wall-clock ratio (cold-over-memoized for the
        optimizer scenario)."""
        return self.naive_seconds / self.fast_seconds if self.fast_seconds else 0.0

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "summary": self.summary,
            "naive_seconds": round(self.naive_seconds, 4),
            "fast_seconds": round(self.fast_seconds, 4),
            "speedup": round(self.speedup, 2),
            "cycles": self.cycles,
            "bandwidth_bound": self.bandwidth_bound,
            "target_speedup": self.target_speedup,
            **({"extra": self.extra} if self.extra else {}),
        }


def _best_of(fn: Callable[[], object], reps: int) -> tuple[float, object]:
    """Minimum wall-clock over ``reps`` calls, plus the last result."""
    best = None
    result = None
    for _ in range(reps):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best or 0.0, result


def _backend_identity_gate(scenario: Scenario, run_fast: Callable[[], object], reference: object) -> list[str]:
    """Re-run the fast engine under every forced merge backend and
    require bit-identical output and statistics.

    The timed legs run under whatever backend the session selected
    (normally ``auto``); this gate pins that the recorded numbers could
    not have come from a kernel that computes something different —
    scalar and vectorized paths must agree on every scenario before a
    report is written.  Returns the backend names checked.
    """
    checked = []
    for name in ("python", "numpy"):
        if name not in flims.available_backends():
            continue
        with flims.forced_backend(name):
            out = run_fast()
        if out != reference:
            raise SimulationError(
                f"{scenario.name}: forced '{name}' merge backend diverged "
                "from the timed run (output or statistics)"
            )
        checked.append(name)
    return checked


def _run_simulator_scenario(scenario: Scenario, quick: bool) -> BenchResult:
    reps = 2 if quick else 3
    if scenario.kind == "micro":
        runs = scenario.make_runs(quick)
        naive_seconds, naive_out = _best_of(
            lambda: run_micro(scenario, runs, "naive"), reps
        )
        fast_seconds, fast_out = _best_of(
            lambda: run_micro(scenario, runs, "fast"), reps
        )
        if naive_out[0] != fast_out[0] or naive_out[1] != fast_out[1]:
            raise SimulationError(
                f"{scenario.name}: engines diverged (output or StageStats)"
            )
        backends = _backend_identity_gate(
            scenario, lambda: run_micro(scenario, runs, "fast"), fast_out
        )
        cycles = fast_out[1].cycles
        extra = {"records": fast_out[1].records_in, "backends_identical": backends}
    else:
        records = scenario.make_records(quick)
        naive_seconds, naive_out = _best_of(
            lambda: run_end_to_end(scenario, records, "naive"), reps
        )
        fast_seconds, fast_out = _best_of(
            lambda: run_end_to_end(scenario, records, "fast"), reps
        )
        if naive_out != fast_out:
            raise SimulationError(
                f"{scenario.name}: engines diverged on the end-to-end sort"
            )
        if fast_out[0] != sorted(records):
            raise SimulationError(f"{scenario.name}: end-to-end output unsorted")
        backends = _backend_identity_gate(
            scenario, lambda: run_end_to_end(scenario, records, "fast"), fast_out
        )
        cycles = fast_out[2]
        extra = {
            "records": len(records),
            "stages": fast_out[1],
            "backends_identical": backends,
        }
    return BenchResult(
        name=scenario.name,
        kind=scenario.kind,
        summary=scenario.summary,
        naive_seconds=naive_seconds,
        fast_seconds=fast_seconds,
        cycles=cycles,
        bandwidth_bound=scenario.bandwidth_bound,
        target_speedup=scenario.target_speedup,
        extra=extra,
    )


def _run_optimizer_scenario(scenario: Scenario, quick: bool) -> BenchResult:
    reps = 2 if quick else 3
    # Cold: a fresh Bonsai per sweep re-derives Eq. 1-10 throughout.
    cold_seconds, cold_result = _best_of(
        lambda: run_optimizer_sweep(make_optimizer()), reps
    )
    # Memoized: one shared instance; the first repetition fills the
    # caches, min-of-reps then reflects the steady (warm) cost.
    shared = make_optimizer()
    warm_seconds, warm_result = _best_of(
        lambda: run_optimizer_sweep(shared), max(2, reps)
    )
    if cold_result != warm_result:
        raise SimulationError(
            f"{scenario.name}: memoized optimizer ranked differently"
        )
    return BenchResult(
        name=scenario.name,
        kind=scenario.kind,
        summary=scenario.summary,
        naive_seconds=cold_seconds,
        fast_seconds=warm_seconds,
        bandwidth_bound=scenario.bandwidth_bound,
        target_speedup=scenario.target_speedup,
        extra={"sizes_gb": [entry[0] for entry in (cold_result or [])]},
    )


def _digest(values) -> str:
    """Order-sensitive content digest of a sorted output.

    Delegates to :func:`repro.records.valsort.content_digest` — the
    same fingerprint the serve result cache and ``sort --print-digest``
    report — so "identical" means the same thing on every surface.
    """
    return content_digest(values)


def _headline_jobs_key() -> tuple[str, str]:
    """Which ``jobs_seconds`` entry carries a parallel scenario's
    headline ``fast_seconds``, plus an annotation when it is degraded.

    With at least two CPUs the four-worker leg is the claim being
    benchmarked.  On a single-CPU host that leg only measures the cost
    of spawning processes that then time-slice one core, so the
    headline pins to the serial leg (speedup reads 1.0x, honestly
    neutral) and the annotation explains the exclusion.
    """
    if available_cpus() >= 2:
        return "4", ""
    return "1", (
        "pooled legs excluded from headline: single-CPU host times "
        "process-spawn overhead, not parallelism"
    )


def _run_parallel_sort_scenario(scenario: Scenario, quick: bool) -> BenchResult:
    """Worker-count scan over the λ_unrl cycle-simulated unrolled sort.

    The plan-free joint simulation is the reference; every ``jobs``
    setting must reproduce its output bytes, cycle counts and stage
    count exactly (the determinism contract of ``repro.parallel``), and
    the recorded figures are jobs=1 vs jobs=4 wall-clock.  On a
    single-CPU host the pooled legs still run (the bit-identity scan is
    the scenario's real contract) but are excluded from the headline:
    four workers on one core time process-spawn overhead, not
    parallelism, and a recorded 0.05x would read as a regression.
    """
    reps = 1 if quick else 2
    records = scenario.make_records(quick)
    data = np.asarray(records, dtype=np.uint64)

    reference = make_unrolled_sorter(scenario, jobs=None).simulate(data)
    reference_digest = _digest(reference.data)
    jobs_seconds: dict[str, float] = {}
    for jobs in JOBS_SCAN:
        sorter = make_unrolled_sorter(scenario, jobs=jobs)
        seconds, outcome = _best_of(lambda: sorter.simulate(data), reps)
        jobs_seconds[str(jobs)] = seconds
        if (
            _digest(outcome.data) != reference_digest
            or outcome.seconds != reference.seconds
            or outcome.stages != reference.stages
            or outcome.detail != reference.detail
        ):
            raise SimulationError(
                f"{scenario.name}: jobs={jobs} diverged from the serial "
                "reference (output, cycles or stages)"
            )
    headline_jobs, note = _headline_jobs_key()
    extra = {
        "jobs_seconds": {k: round(v, 4) for k, v in jobs_seconds.items()},
        "digest": reference_digest,
        "identical": True,
        "host_cpus": available_cpus(),
        "headline_jobs": headline_jobs,
        "records": int(data.size),
        "parallel_cycles": reference.detail["parallel_cycles"],
        "final_merge_cycles": reference.detail["final_merge_cycles"],
    }
    if note:
        extra["multi_job_timing"] = note
    return BenchResult(
        name=scenario.name,
        kind=scenario.kind,
        summary=scenario.summary,
        naive_seconds=jobs_seconds["1"],
        fast_seconds=jobs_seconds[headline_jobs],
        cycles=reference.detail["parallel_cycles"]
        + reference.detail["final_merge_cycles"],
        bandwidth_bound=scenario.bandwidth_bound,
        target_speedup=scenario.target_speedup,
        extra=extra,
    )


def _run_parallel_optimizer_scenario(scenario: Scenario, quick: bool) -> BenchResult:
    """Worker-count scan over the bounded design-space ranking.

    Every ``jobs`` setting must produce the exact
    :class:`~repro.core.optimizer.RankedConfig` sequences of the serial
    sweep — order, ties, figures of merit and all.
    """
    reps = 2 if quick else 3
    reference = run_parallel_optimizer_sweep(make_bounded_optimizer(None))
    jobs_seconds: dict[str, float] = {}
    for jobs in JOBS_SCAN:
        # A fresh (cold) instance per repetition times evaluation, not
        # cache hits.
        seconds, result = _best_of(
            lambda: run_parallel_optimizer_sweep(make_bounded_optimizer(jobs)),
            reps,
        )
        jobs_seconds[str(jobs)] = seconds
        if result != reference:
            raise SimulationError(
                f"{scenario.name}: jobs={jobs} ranked differently from serial"
            )
    space = make_bounded_optimizer(None)
    headline_jobs, note = _headline_jobs_key()
    extra = {
        "jobs_seconds": {k: round(v, 4) for k, v in jobs_seconds.items()},
        "identical": True,
        "host_cpus": available_cpus(),
        "headline_jobs": headline_jobs,
        "latency_configs": len(list(space.feasible_configs(False))),
        "pipeline_configs": len(list(space.feasible_configs(True))),
    }
    if note:
        extra["multi_job_timing"] = note
    return BenchResult(
        name=scenario.name,
        kind=scenario.kind,
        summary=scenario.summary,
        naive_seconds=jobs_seconds["1"],
        fast_seconds=jobs_seconds[headline_jobs],
        bandwidth_bound=scenario.bandwidth_bound,
        target_speedup=scenario.target_speedup,
        extra=extra,
    )


def _run_obs_scenario(scenario: Scenario, quick: bool) -> BenchResult:
    """Time one instrumented workload with observability off vs on.

    The disabled path is what every ordinary run pays, so it lands in
    ``fast_seconds`` (and carries the baseline gate); the enabled path
    is ``naive_seconds``, making ``speedup`` read as "how much an
    observed run costs over an unobserved one".  Outputs must be
    identical — instrumentation never touches data.
    """
    reps = 3 if quick else 5
    records = scenario.make_records(quick)

    def unobserved() -> object:
        # Force the no-op observation even when the bench itself runs
        # under --trace/--metrics: this leg measures the disabled path.
        with activated(DISABLED):
            return run_obs_workload(scenario, records)

    disabled_seconds, disabled_out = _best_of(unobserved, reps)
    live = live_observation(trace_id=f"bench.{scenario.name}")

    def observed() -> object:
        with activated(live):
            return run_obs_workload(scenario, records)

    enabled_seconds, enabled_out = _best_of(observed, reps)
    if _digest(disabled_out) != _digest(enabled_out):
        raise SimulationError(
            f"{scenario.name}: enabling observability changed the output"
        )
    return BenchResult(
        name=scenario.name,
        kind=scenario.kind,
        summary=scenario.summary,
        naive_seconds=enabled_seconds,
        fast_seconds=disabled_seconds,
        bandwidth_bound=scenario.bandwidth_bound,
        target_speedup=scenario.target_speedup,
        extra={
            "records": len(records),
            "metric_updates": live.registry.total_updates,
            "spans_closed": live.tracer.spans_closed,
            "enabled_seconds": round(enabled_seconds, 4),
            "disabled_seconds": round(disabled_seconds, 4),
        },
    )


def _run_cluster_scenario(scenario: Scenario, quick: bool) -> BenchResult:
    """Worker-count scan over the measured cluster-sort executor.

    The single-process single-tree sort of the same records is the
    naive leg — the thing a cluster has to beat to justify existing.
    Every ``jobs`` setting must land the executor on the exact output
    bytes of that serial sort (the executor additionally self-verifies
    each run against an ``np.sort`` oracle, so a divergence aborts
    before any figure is recorded).  Timings use the executor's own
    measured window — the four plan phases, excluding its oracle
    verification — and, per the parallel scenarios' convention, pooled
    legs are excluded from the headline on a single-CPU host.  A serial
    skew leg on the zipf/nearly-sorted workload records how close the
    oversampled splitters keep the measured partition skew to 1.0.
    """
    reps = 1 if quick else 2
    records = scenario.make_records(quick)
    data = np.asarray(records, dtype=np.uint64)

    serial_sorter = make_obs_sorter(scenario)
    naive_seconds, naive_out = _best_of(lambda: serial_sorter.sort(data), reps)
    reference_digest = _digest(naive_out.data)

    jobs_seconds: dict[str, float] = {}
    reports: dict[str, ClusterExecutionReport] = {}
    for jobs in JOBS_SCAN:
        executor = make_cluster_executor(scenario, jobs=jobs)
        best = executor.execute(data)
        for _ in range(reps - 1):
            report = executor.execute(data)
            if report.elapsed_seconds < best.elapsed_seconds:
                best = report
        if best.digest != reference_digest:
            raise SimulationError(
                f"{scenario.name}: jobs={jobs} executed cluster output "
                "diverged from the serial single-tree sort"
            )
        jobs_seconds[str(jobs)] = best.elapsed_seconds
        reports[str(jobs)] = best
    headline_jobs, note = _headline_jobs_key()
    headline = reports[headline_jobs]

    # Skew leg: serial (cheap, still oracle-verified inside execute());
    # what matters here is the splitters' measured balance, not time.
    skew_report = make_cluster_executor(scenario, jobs=None).execute(
        make_cluster_skew_records(scenario, quick)
    )

    extra = {
        "jobs_seconds": {k: round(v, 4) for k, v in jobs_seconds.items()},
        "digest": reference_digest,
        "identical": True,
        "host_cpus": available_cpus(),
        "headline_jobs": headline_jobs,
        "records": int(data.size),
        "cluster_nodes": scenario.cluster_nodes,
        "measured_ms_per_gb": round(headline.measured_ms_per_gb, 3),
        "modeled_ms_per_gb": round(headline.modeled_ms_per_gb, 3),
        "measured_vs_modeled": round(headline.measured_vs_modeled, 1),
        "measured_skew": round(headline.measured_skew, 4),
        "skew_leg": {
            "measured_skew": round(skew_report.measured_skew, 4),
            "identical": True,
        },
    }
    if note:
        extra["multi_job_timing"] = note
    return BenchResult(
        name=scenario.name,
        kind=scenario.kind,
        summary=scenario.summary,
        naive_seconds=naive_seconds,
        fast_seconds=jobs_seconds[headline_jobs],
        bandwidth_bound=scenario.bandwidth_bound,
        target_speedup=scenario.target_speedup,
        extra=extra,
    )


def _run_serve_scenario(scenario: Scenario, quick: bool) -> BenchResult:
    """Socket round trips through a live daemon vs one-shot sessions.

    The naive leg runs every request the way the CLI would: a fresh
    :class:`SortSession` per job, nothing amortized.  The fast leg
    drives the same request stream through a :class:`ServerThread` over
    its unix socket — after the first pass over the distinct jobs, the
    daemon's digest-keyed result cache answers the repeats, which is the
    serving architecture's whole claim.  Every served digest must equal
    its direct counterpart or the run aborts: a throughput number from
    divergent results would be meaningless.
    """
    import shutil
    import tempfile

    from repro.serve.client import ServeClient
    from repro.serve.server import ServeConfig, ServerThread
    from repro.serve.session import SortJob, SortSession

    reps = 1 if quick else 2
    count = max(2000, scenario.n_records // 4) if quick else scenario.n_records
    distinct = [
        SortJob(records=count, seed=scenario.seed + offset,
                p=scenario.p, leaves=scenario.leaves)
        for offset in range(4)
    ]
    requests = [distinct[index % len(distinct)] for index in range(12)]

    def direct() -> list[str]:
        return [SortSession().run_sort(job)["digest"] for job in requests]

    naive_seconds, direct_digests = _best_of(direct, reps)

    scratch = tempfile.mkdtemp(prefix="bsv-", dir="/tmp")
    try:
        config = ServeConfig(socket=f"{scratch}/sock", queue_depth=32,
                             batch_max=4)
        with ServerThread(config), ServeClient(config.socket) as client:

            def served() -> list[dict]:
                ids = [client.send("sort", job.params()) for job in requests]
                return [client.collect(request_id) for request_id in ids]

            # First pass fills the cache; min-of-reps is the warm cost.
            fast_seconds, responses = _best_of(served, max(2, reps))
            stats = client.stats()["result"]
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    served_digests = [response["result"]["digest"] for response in responses]
    if served_digests != direct_digests:
        raise SimulationError(
            f"{scenario.name}: served digests diverged from direct "
            "SortSession runs"
        )
    return BenchResult(
        name=scenario.name,
        kind=scenario.kind,
        summary=scenario.summary,
        naive_seconds=naive_seconds,
        fast_seconds=fast_seconds,
        bandwidth_bound=scenario.bandwidth_bound,
        target_speedup=scenario.target_speedup,
        extra={
            "requests": len(requests),
            "distinct_jobs": len(distinct),
            "records": count,
            "cache_hits_final_pass": sum(
                1 for response in responses if response["cached"]
            ),
            "jobs_completed": stats["completed"],
            "identical": True,
        },
    )


def run_scenario(scenario: Scenario, quick: bool = False) -> BenchResult:
    """Time one scenario under both engines and verify they agree."""
    if scenario.kind in ("micro", "end_to_end"):
        return _run_simulator_scenario(scenario, quick)
    if scenario.kind == "optimizer":
        return _run_optimizer_scenario(scenario, quick)
    if scenario.kind == "parallel_sort":
        return _run_parallel_sort_scenario(scenario, quick)
    if scenario.kind == "parallel_optimizer":
        return _run_parallel_optimizer_scenario(scenario, quick)
    if scenario.kind == "obs":
        return _run_obs_scenario(scenario, quick)
    if scenario.kind == "cluster":
        return _run_cluster_scenario(scenario, quick)
    if scenario.kind == "serve":
        return _run_serve_scenario(scenario, quick)
    raise ConfigurationError(f"unknown scenario kind {scenario.kind!r}")


def run_suite(
    names: Iterable[str] | None = None,
    quick: bool = False,
    jobs: int | str | None = None,
    seed: int | None = None,
) -> list[BenchResult]:
    """Run the selected scenarios (all of them by default) in order.

    ``jobs`` shards whole scenarios across a worker pool — each
    scenario's naive/fast engine pair stays pinned to one worker so its
    speedup ratio is timed on a single core either way.  ``seed``
    overrides every scenario's workload seed uniformly, which is how
    serial and parallel suite runs are made comparable record for
    record.  Results come back in scenario order regardless of ``jobs``.
    """
    if names:
        unknown = sorted(set(names) - set(BY_NAME))
        if unknown:
            raise ConfigurationError(
                f"unknown scenario(s) {', '.join(unknown)}; "
                f"available: {', '.join(sorted(BY_NAME))}"
            )
        selected = [scenario for scenario in SCENARIOS if scenario.name in set(names)]
    else:
        selected = list(SCENARIOS)
    plan = ParallelPlan.from_jobs(jobs)
    if plan is not None and plan.wants_processes(len(selected)):
        from repro.parallel.workers import worker_bench_scenario

        tasks = [(scenario.name, quick, seed) for scenario in selected]
        return plan.map(worker_bench_scenario, tasks)
    obs = observation()
    results = []
    for scenario in selected:
        if seed is not None:
            scenario = dataclasses.replace(scenario, seed=seed)
        with obs.span(
            "bench.scenario", scenario=scenario.name, kind=scenario.kind
        ):
            result = run_scenario(scenario, quick=quick)
        obs.count("bench.scenarios", kind=scenario.kind)
        results.append(result)
    return results


# ----------------------------------------------------------------------
# report + baseline gate
# ----------------------------------------------------------------------
def build_report(results: Iterable[BenchResult], quick: bool) -> dict:
    """The ``BENCH_simulator.json`` payload."""
    return {
        "schema": SCHEMA,
        "quick": quick,
        "scenarios": {result.name: result.to_json() for result in results},
    }


def write_report(results: Iterable[BenchResult], path: str | Path, quick: bool) -> dict:
    """Serialise the report to ``path`` and return it."""
    report = build_report(results, quick)
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def compare_to_baseline(
    report: Mapping,
    baseline: Mapping,
    max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
) -> list[str]:
    """Regression messages for scenarios slower than baseline allows.

    Compares fast-engine wall-clock per scenario; scenarios present only
    on one side are ignored (new scenarios enter the gate when the
    baseline is regenerated — see ``docs/performance.md``).  Each
    message names the scenario and quantifies the regression: the
    actual slowdown factor, the gate it tripped, and the absolute
    times, so a CI failure is diagnosable from the log alone.
    """
    problems = []
    current = report.get("scenarios", {})
    reference = baseline.get("scenarios", {})
    for name in sorted(set(current) & set(reference)):
        now = current[name].get("fast_seconds")
        then = reference[name].get("fast_seconds")
        if not now or not then:
            continue
        if now > max_slowdown * then:
            factor = now / then
            problems.append(
                f"{name}: {factor:.2f}x slower than baseline "
                f"(gate {max_slowdown:.1f}x): {now:.3f}s now vs "
                f"{then:.3f}s baseline (+{now - then:.3f}s)"
            )
    return problems


def load_baseline(path: str | Path) -> dict:
    """Read a committed baseline report."""
    return json.loads(Path(path).read_text())
