"""Benchmark scenario definitions: deterministic workloads, no clocks.

Every scenario is a frozen description of a seeded workload plus the
shape it is driven through; the actual wall-clock timing lives in
:mod:`repro.bench.runner`.  Splitting the two keeps this module fully
deterministic (same seed, same workload, same simulated cycle count on
every machine) so only the runner needs a determinism-lint waiver.

Bandwidth factors are expressed relative to the tree's natural demand of
``p * record_bytes`` bytes per cycle, mirroring how §IV's Eq. 1-3 reason
about memory-bound operation: a ``read_factor`` of 0.02 models an
HDD-class source feeding a tree that could merge 50x faster, the regime
where the event-driven engine's fast-forward pays off most; factors near
1.0 are compute-bound and run at parity with the naive stepper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.hw.tree import simulate_merge
from repro.units import GB

#: Presorter run length used by the end-to-end scenarios (§VI-C).
PRESORT_RUN = 16


@dataclass(frozen=True)
class Scenario:
    """One benchmark shape.

    ``kind`` selects the driver: ``"micro"`` times a single
    :func:`~repro.hw.tree.simulate_merge` stage, ``"end_to_end"`` a full
    multi-stage sort down to one run (the figure-benchmark regime of
    Fig. 13 / Table V: a storage-bound stage sequence), ``"optimizer"``
    a ranked design-space sweep, ``"parallel_sort"`` /
    ``"parallel_optimizer"`` a worker-count scan (1/2/4/auto) over the
    process-pool execution layer that also asserts bit-identical
    results at every setting, ``"obs"`` one model-mode sort timed
    with observability disabled vs enabled (the instrumentation
    overhead gate), and ``"cluster"`` a measured
    ``cluster_nodes``-way exchange + per-node sort executed through
    :class:`~repro.distributed.executor.ClusterExecutor` across the
    same worker scan.  ``bandwidth_bound`` marks the shapes
    that carry the fast-path speedup claim; ``target_speedup`` is the
    floor asserted by ``benchmarks/perf``.

    ``seed`` drives every workload generator; the runner can override
    it uniformly (``bonsai bench --seed N``) so serial and parallel
    runs of the same suite are comparable record for record.

    ``key_range`` bounds the generated key space: the default 2**30
    makes duplicates negligible, while a small range (``micro_dup_heavy``)
    floods the merge path with equal keys — the worst case for any
    kernel whose comparisons short-circuit on distinct values.
    """

    name: str
    kind: str
    summary: str
    p: int = 8
    leaves: int = 16
    n_runs: int = 8
    run_length: int = 8000
    n_records: int = 12000
    read_factor: float | None = None
    write_factor: float | None = None
    batch_bytes: int = 1024
    record_bytes: int = 4
    seed: int = 1
    key_range: int = 1 << 30
    lambda_unroll: int = 1
    cluster_nodes: int = 4
    bandwidth_bound: bool = False
    target_speedup: float | None = None

    # ------------------------------------------------------------------
    def budgets(self) -> tuple[float | None, float | None]:
        """Per-cycle read/write byte budgets from the demand factors."""
        demand = self.p * self.record_bytes
        read = None if self.read_factor is None else self.read_factor * demand
        write = None if self.write_factor is None else self.write_factor * demand
        return read, write

    def make_runs(self, quick: bool) -> list[list[int]]:
        """Seeded sorted input runs for the ``micro`` driver."""
        rng = random.Random(self.seed)
        length = max(500, self.run_length // 8) if quick else self.run_length
        return [
            sorted(rng.randrange(0, self.key_range) for _ in range(length))
            for _ in range(self.n_runs)
        ]

    def make_records(self, quick: bool) -> list[int]:
        """Seeded unsorted records for the ``end_to_end`` driver."""
        rng = random.Random(self.seed)
        count = max(2000, self.n_records // 4) if quick else self.n_records
        return [rng.randrange(0, self.key_range) for _ in range(count)]


def run_micro(scenario: Scenario, runs: Sequence[Sequence[int]], engine: str):
    """One merge stage; returns ``(output_runs, StageStats)``."""
    read, write = scenario.budgets()
    return simulate_merge(
        scenario.p,
        scenario.leaves,
        runs,
        record_bytes=scenario.record_bytes,
        read_bytes_per_cycle=read,
        write_bytes_per_cycle=write,
        batch_bytes=scenario.batch_bytes,
        check_sorted_inputs=False,
        engine=engine,
    )


def run_end_to_end(scenario: Scenario, records: Sequence[int], engine: str):
    """Full sort: presorted runs merged stage by stage down to one.

    Returns ``(sorted_run, n_stages, total_cycles)``.  Mirrors
    :class:`~repro.engine.sorter.AmtSorter`'s simulate mode with the
    storage-bound budget split of the SSD/HDD sorters (§IV-C): stage
    reads stream from throttled storage while writes land in DRAM.
    """
    read, write = scenario.budgets()
    runs: list[list[int]] = [
        sorted(records[start : start + PRESORT_RUN])
        for start in range(0, len(records), PRESORT_RUN)
    ]
    stages = 0
    total_cycles = 0
    while len(runs) > 1:
        runs, stats = simulate_merge(
            scenario.p,
            scenario.leaves,
            runs,
            record_bytes=scenario.record_bytes,
            read_bytes_per_cycle=read,
            write_bytes_per_cycle=write,
            batch_bytes=scenario.batch_bytes,
            check_sorted_inputs=False,
            engine=engine,
        )
        stages += 1
        total_cycles += stats.cycles
    return runs[0], stages, total_cycles


def run_optimizer_sweep(shared) -> list[tuple]:
    """Rank the design space for a sweep of array sizes.

    ``shared`` is the :class:`~repro.core.optimizer.Bonsai` instance to
    evaluate with; passing a fresh instance per call measures the
    cache-cold cost, reusing one across the sweep measures the memoized
    cost (the two must rank identically).
    """
    from repro.core.parameters import ArrayParams

    results = []
    for size_gb in (1, 4, 16, 64):
        array = ArrayParams.from_bytes(size_gb * GB)
        best_latency = shared.rank_by_latency(array, top=3)
        best_throughput = shared.rank_by_throughput(array, top=3)
        results.append(
            (
                size_gb,
                tuple(entry.config for entry in best_latency),
                tuple(entry.config for entry in best_throughput),
            )
        )
    return results


def make_optimizer():
    """A fresh aws-f1 Bonsai instance (cold caches)."""
    from repro.core import presets

    return presets.aws_f1().bonsai(record_bytes=4, presort_run=PRESORT_RUN)


#: Worker counts scanned by the ``parallel_*`` scenarios.
JOBS_SCAN: tuple = (1, 2, 4, "auto")


def make_unrolled_sorter(scenario: Scenario, jobs):
    """A λ_unrl cycle-simulated unrolled sorter for one jobs setting.

    ``jobs=None`` returns the plan-free sorter (the joint-loop
    reference); any other value attaches a
    :class:`~repro.parallel.plan.ParallelPlan` so the λ units simulate
    in worker processes.
    """
    from repro.core import presets
    from repro.core.configuration import AmtConfig
    from repro.core.parameters import MergerArchParams
    from repro.engine.unrolled import UnrolledSorter
    from repro.parallel import ParallelPlan

    platform = presets.aws_f1_measured()
    return UnrolledSorter(
        config=AmtConfig(
            p=scenario.p,
            leaves=scenario.leaves,
            lambda_unroll=scenario.lambda_unroll,
        ),
        hardware=platform.hardware,
        arch=MergerArchParams(record_bytes=scenario.record_bytes),
        presort_run=PRESORT_RUN,
        parallel=None if jobs is None else ParallelPlan.from_jobs(jobs),
    )


def make_obs_sorter(scenario: Scenario):
    """The model-mode sorter the ``obs`` scenario drives.

    Model mode runs the instrumented per-stage loop with almost no
    compute per instrumentation call site, which makes it the
    worst-case (most sensitive) shape for measuring the disabled-path
    overhead.
    """
    from repro.core import presets
    from repro.core.configuration import AmtConfig
    from repro.core.parameters import MergerArchParams
    from repro.engine.sorter import AmtSorter

    platform = presets.aws_f1_measured()
    return AmtSorter(
        config=AmtConfig(p=scenario.p, leaves=scenario.leaves),
        hardware=platform.hardware,
        arch=MergerArchParams(record_bytes=scenario.record_bytes),
        presort_run=PRESORT_RUN,
        mode="model",
    )


def run_obs_workload(scenario: Scenario, records: Sequence[int]):
    """One instrumented sort pass; returns the sorted array.

    The runner times this once under the disabled (no-op) observation
    and once under a live in-memory one; the outputs must be identical
    and the wall-clock gap is the instrumentation overhead.
    """
    import numpy as np

    data = np.asarray(records, dtype=np.uint64)
    return make_obs_sorter(scenario).sort(data).data


def make_cluster_executor(scenario: Scenario, jobs):
    """A measured cluster-sort executor for one jobs setting.

    ``jobs=None`` (or 1) runs both phases in-process — bit-identical
    output, no pool; any other value runs the exchange and the per-node
    sorts as actual worker processes.
    """
    from repro.core import presets
    from repro.core.configuration import AmtConfig
    from repro.core.parameters import MergerArchParams
    from repro.distributed.executor import ClusterExecutor
    from repro.parallel import ParallelPlan

    platform = presets.aws_f1_measured()
    return ClusterExecutor(
        nodes=scenario.cluster_nodes,
        config=AmtConfig(p=scenario.p, leaves=scenario.leaves),
        hardware=platform.hardware,
        arch=MergerArchParams(record_bytes=scenario.record_bytes),
        presort_run=PRESORT_RUN,
        mode="model",
        plan=None if jobs is None else ParallelPlan.from_jobs(jobs),
        seed=scenario.seed,
    )


def make_cluster_skew_records(scenario: Scenario, quick: bool):
    """The skew leg's workload: zipf-skewed, nearly sorted keys.

    The adversarial histogram for range partitioning — naive
    equal-width splitters would collapse most records onto one node;
    the oversampled sketch has to earn its keep here, and the runner
    records the measured skew it achieves.
    """
    import numpy as np

    from repro.records.workloads import skewed_nearly_sorted

    count = max(2000, scenario.n_records // 4) if quick else scenario.n_records
    return np.asarray(
        skewed_nearly_sorted(count, seed=scenario.seed), dtype=np.uint64
    )


def make_bounded_optimizer(jobs):
    """A search-space-bounded Bonsai for the parallel sweep scenario.

    The bounds keep the latency space at roughly 64 configurations —
    large enough to chunk across workers, small enough for a smoke run.
    """
    from repro.core import presets
    from repro.core.optimizer import Bonsai
    from repro.core.parameters import MergerArchParams
    from repro.parallel import ParallelPlan

    platform = presets.aws_f1()
    return Bonsai(
        hardware=platform.hardware,
        arch=MergerArchParams(),
        presort_run=PRESORT_RUN,
        p_max=8,
        leaves_max=64,
        unroll_max=4,
        pipe_max=4,
        parallel=None if jobs is None else ParallelPlan.from_jobs(jobs),
    )


def run_parallel_optimizer_sweep(bonsai) -> list[tuple]:
    """Full latency + throughput rankings over two array sizes.

    Returns the complete :class:`RankedConfig` lists (not just the
    winners) so the runner's cross-jobs comparison pins the *entire*
    ranking order, ties included.
    """
    from repro.core.parameters import ArrayParams

    results = []
    for size_gb in (1, 4):
        array = ArrayParams.from_bytes(size_gb * GB)
        results.append(
            (
                size_gb,
                tuple(bonsai.rank_by_latency(array)),
                tuple(bonsai.rank_by_throughput(array)),
            )
        )
    return results


#: The benchmark suite.  Micro shapes first (single stage), then the
#: end-to-end figure-benchmark sorts, then the optimizer sweep.
SCENARIOS: tuple[Scenario, ...] = (
    Scenario(
        name="micro_hdd_read_starved",
        kind="micro",
        summary="AMT(16,4) stage, HDD-class source (2% of demand), DRAM sink",
        p=16, leaves=4, n_runs=8, run_length=8000,
        read_factor=0.02, write_factor=1.0, batch_bytes=4096,
        bandwidth_bound=True, target_speedup=5.0,
    ),
    Scenario(
        name="micro_hdd_deep_tree",
        kind="micro",
        summary="AMT(16,8) stage, HDD-class source (2% of demand), DRAM sink",
        p=16, leaves=8, n_runs=8, run_length=8000,
        read_factor=0.02, write_factor=1.0, batch_bytes=4096,
        bandwidth_bound=True, target_speedup=5.0,
    ),
    Scenario(
        name="micro_ssd_read_starved",
        kind="micro",
        summary="AMT(16,4) stage, SSD-class source (5% of demand), DRAM sink",
        p=16, leaves=4, n_runs=8, run_length=8000,
        read_factor=0.05, write_factor=1.0, batch_bytes=4096,
        bandwidth_bound=True, target_speedup=2.5,
    ),
    Scenario(
        name="micro_balanced",
        kind="micro",
        summary="AMT(8,16) stage at 30% symmetric budget (compute-bound floor)",
        p=8, leaves=16, n_runs=16, run_length=4000,
        read_factor=0.3, write_factor=0.3, batch_bytes=1024,
        target_speedup=1.0,
    ),
    Scenario(
        name="micro_unconstrained",
        kind="micro",
        summary="AMT(8,16) stage, unconstrained bandwidth (compute-bound floor)",
        p=8, leaves=16, n_runs=16, run_length=4000,
        batch_bytes=1024,
        target_speedup=1.0,
    ),
    Scenario(
        name="micro_compute_wide",
        kind="micro",
        summary="AMT(8,32) stage, unconstrained bandwidth (wide compute-bound floor)",
        p=8, leaves=32, n_runs=32, run_length=4000,
        batch_bytes=1024,
        target_speedup=1.0,
    ),
    Scenario(
        name="micro_dup_heavy",
        kind="micro",
        summary="AMT(8,16) stage, unconstrained, 256-key space (duplicate-heavy floor)",
        p=8, leaves=16, n_runs=16, run_length=4000,
        batch_bytes=1024, key_range=256,
        target_speedup=1.0,
    ),
    Scenario(
        name="e2e_hdd_sort",
        kind="end_to_end",
        summary="full sort, AMT(16,4) stages from HDD-class storage (Fig. 13 regime)",
        p=16, leaves=4, n_records=12000,
        read_factor=0.02, write_factor=None, batch_bytes=4096,
        bandwidth_bound=True, target_speedup=3.0,
    ),
    Scenario(
        name="e2e_ssd_sort",
        kind="end_to_end",
        summary="full sort, AMT(16,4) stages from SSD-class storage (Table V regime)",
        p=16, leaves=4, n_records=12000,
        read_factor=0.05, write_factor=None, batch_bytes=4096,
        bandwidth_bound=True, target_speedup=2.0,
    ),
    Scenario(
        name="optimizer_sweep",
        kind="optimizer",
        summary="rank_by_latency + rank_by_throughput over 1-64 GB, cold vs memoized",
    ),
    Scenario(
        name="parallel_unrolled_sort",
        kind="parallel_sort",
        summary="λ_unrl=4 cycle-simulated unrolled sort, worker scan 1/2/4/auto",
        p=8, leaves=8, n_records=12000, batch_bytes=512, lambda_unroll=4,
    ),
    Scenario(
        name="parallel_optimizer_sweep",
        kind="parallel_optimizer",
        summary="bounded Bonsai ranking (~64 latency configs), worker scan 1/2/4/auto",
    ),
    Scenario(
        name="obs_noop_overhead",
        kind="obs",
        summary="model-mode sort, observability disabled vs enabled (overhead gate)",
        p=8, leaves=16, n_records=200_000,
    ),
    Scenario(
        name="cluster_sort",
        kind="cluster",
        summary="executed 4-node range-partition cluster sort vs single-tree serial, worker scan 1/2/4/auto",
        p=8, leaves=16, n_records=200_000, cluster_nodes=4,
        target_speedup=1.0,
    ),
    Scenario(
        name="serve_throughput",
        kind="serve",
        summary="12 sort requests through a live serve daemon (warm digest cache) vs one-shot sessions",
        p=8, leaves=16, n_records=20_000,
        target_speedup=1.5,
    ),
)

BY_NAME = {scenario.name: scenario for scenario in SCENARIOS}
