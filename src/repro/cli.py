"""Command-line interface: ``bonsai`` / ``python -m repro``.

Subcommands map onto the paper's workflows:

* ``optimize`` — run the Bonsai optimizer for a platform and input size,
  printing the optimal configuration and the ranked alternatives
  (§III-C's "list all implementable AMT configurations").
* ``sort`` — generate a workload and sort it through the engine
  (model or cycle-simulated timing), verifying the output.
* ``scalability`` — print the Fig. 13 latency/GB curve and breakpoints.
* ``ssd-plan`` — print the two-phase plan and Table V-style breakdown.
* ``components`` — print the Table VI component library.
* ``bench`` — time the simulation engines over representative shapes and
  record the perf trajectory (``BENCH_simulator.json``).
"""

from __future__ import annotations

import argparse
import sys

from repro._version import __version__
from repro.analysis.tables import render_table
from repro.core import presets
from repro.core.configuration import AmtConfig
from repro.core.parameters import ArrayParams, MergerArchParams
from repro.core.scalability import ScalabilityModel
from repro.core.ssd_planner import SsdSortPlan
from repro.errors import BonsaiError
from repro.records.workloads import WorkloadSpec, generate
from repro.units import GB, KB, MB, TB, format_bytes, format_seconds

PLATFORMS = {
    "aws-f1": presets.aws_f1,
    "aws-f1-measured": presets.aws_f1_measured,
    "alveo-u50": presets.alveo_u50,
    "ssd-node": presets.ssd_node,
    "ssd-as-memory": presets.ssd_as_memory,
}


def _parse_size(text: str) -> int:
    """Parse sizes like ``16GB``, ``512MB``, ``2TB`` or raw bytes."""
    text = text.strip().upper()
    for suffix, scale in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if text.endswith(suffix):
            return int(float(text[: -len(suffix)]) * scale)
    return int(text)


def _parse_jobs(text: str) -> int | str:
    """Parse ``--jobs``: a positive worker count or ``auto``."""
    text = text.strip().lower()
    if text == "auto":
        return "auto"
    try:
        jobs = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"jobs must be a positive integer or 'auto', got {text!r}"
        ) from None
    if jobs < 1:
        raise argparse.ArgumentTypeError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_parse_jobs, default=None, metavar="N",
        help="worker processes for independent work (a count or 'auto'; "
             "default: serial, results are identical either way)")


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--merge-backend", choices=("auto", "numpy", "python"), default=None,
        help="merge-kernel backend (default: BONSAI_MERGE_BACKEND or 'auto'; "
             "'python' forces the scalar kernels, outputs are identical)")


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by the workload-running subcommands."""
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a JSONL span trace (render it with `bonsai report FILE`)")
    parser.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="write a JSON metrics snapshot (counters, gauges, histograms)")
    parser.add_argument(
        "--manifest", default=None, metavar="FILE",
        help="write a run manifest (args, seed, config digest, host, git rev)")


def _configure_optimize(opt: argparse.ArgumentParser) -> None:
    opt.add_argument("--platform", choices=sorted(PLATFORMS), default="aws-f1")
    opt.add_argument("--size", type=_parse_size, default=16 * GB,
                     help="input size (e.g. 16GB)")
    opt.add_argument("--record-bytes", type=int, default=4)
    opt.add_argument("--objective", choices=("latency", "throughput"),
                     default="latency")
    opt.add_argument("--presort", type=int, default=16)
    opt.add_argument("--leaves-cap", type=int, default=None)
    opt.add_argument("--top", type=int, default=5,
                     help="how many ranked configurations to print")
    _add_jobs_flag(opt)
    _add_obs_flags(opt)


def _configure_sort(srt: argparse.ArgumentParser) -> None:
    srt.add_argument("--records", type=int, default=100_000)
    srt.add_argument("--workload", default="uniform")
    srt.add_argument("--seed", type=int, default=0)
    srt.add_argument("--p", type=int, default=8)
    srt.add_argument("--leaves", type=int, default=16)
    srt.add_argument("--mode", choices=("model", "simulate"), default="model")
    srt.add_argument("--platform", choices=sorted(PLATFORMS),
                     default="aws-f1-measured")
    srt.add_argument("--input", default=None,
                     help="flat binary file of little-endian u32 keys")
    srt.add_argument("--output", default=None,
                     help="write sorted keys to this file")
    srt.add_argument("--cluster-nodes", type=int, default=None, metavar="N",
                     help="execute an N-node range-partition cluster sort "
                          "(measured exchange + per-node sorts, verified "
                          "against a serial oracle) instead of one tree")
    srt.add_argument("--print-digest", action="store_true",
                     help="also print the sorted output's sha256 content "
                          "digest (the identity served results are "
                          "compared against)")
    _add_jobs_flag(srt)
    _add_backend_flag(srt)
    _add_obs_flags(srt)


def _configure_scalability(sca: argparse.ArgumentParser) -> None:
    sca.add_argument("--min", type=_parse_size, default=GB // 2)
    sca.add_argument("--max", type=_parse_size, default=1024 * TB)


def _configure_ssd_plan(ssd: argparse.ArgumentParser) -> None:
    ssd.add_argument("--size", type=_parse_size, default=2048 * GB)
    ssd.add_argument("--run-bytes", type=_parse_size, default=None)


def _configure_validate(val: argparse.ArgumentParser) -> None:
    val.add_argument("--records", type=int, default=32_768)


def _configure_experiments(exp: argparse.ArgumentParser) -> None:
    exp.add_argument("--out", default="results")


def _configure_report(rep: argparse.ArgumentParser) -> None:
    rep.add_argument("trace", nargs="?", default=None, metavar="TRACE",
                     help="JSONL trace from --trace; renders the per-phase "
                          "wall-time attribution instead of REPORT.md")
    rep.add_argument("--format", choices=("table", "json"), default="table",
                     help="trace report format (default: table)")
    rep.add_argument("--results", default="benchmarks/results")
    rep.add_argument("--output", default="REPORT.md")


def _configure_bench(ben: argparse.ArgumentParser) -> None:
    ben.add_argument("--quick", action="store_true",
                     help="smaller workloads and fewer repetitions (CI smoke)")
    ben.add_argument("--output", default="BENCH_simulator.json",
                     help="where to write the JSON report")
    ben.add_argument("--baseline", default=None,
                     help="committed baseline JSON to gate against")
    ben.add_argument("--max-slowdown", type=float, default=2.0,
                     help="fail when fast-engine time exceeds baseline "
                          "by this factor (default 2.0)")
    ben.add_argument("--scenario", action="append", default=None,
                     metavar="NAME", help="run only this scenario (repeatable)")
    ben.add_argument("--list", action="store_true", dest="list_scenarios",
                     help="list scenarios and exit")
    ben.add_argument("--seed", type=int, default=None,
                     help="override every scenario's workload seed (keeps "
                          "serial and parallel runs comparable)")
    _add_jobs_flag(ben)
    _add_backend_flag(ben)
    _add_obs_flags(ben)


def _configure_serve(srv: argparse.ArgumentParser) -> None:
    srv.add_argument("--socket", required=True, metavar="PATH",
                     help="unix socket to listen on (keep the path short; "
                          "unix sockets cap out near 108 chars)")
    srv.add_argument("--queue-depth", type=int, default=64, metavar="N",
                     help="bounded job-queue depth; submissions past it are "
                          "rejected with reason 'overloaded' (default 64)")
    srv.add_argument("--client-quota", type=int, default=16, metavar="N",
                     help="max queued+running jobs per client identity "
                          "(default 16)")
    srv.add_argument("--batch-max", type=int, default=8, metavar="N",
                     help="max jobs dispatched per batch; batches >1 fan "
                          "out across --jobs workers (default 8)")
    srv.add_argument("--cache-size", type=int, default=128, metavar="N",
                     help="LRU result-cache entries, keyed by job digest; "
                          "0 disables caching (default 128)")
    _add_jobs_flag(srv)
    _add_backend_flag(srv)
    _add_obs_flags(srv)


def _configure_lint(parser: argparse.ArgumentParser) -> None:
    from repro.lint.main import add_arguments

    add_arguments(parser)


def _configure_check(parser: argparse.ArgumentParser) -> None:
    from repro.lint.graph.main import add_arguments

    add_arguments(parser)


def _build_parser() -> argparse.ArgumentParser:
    """Assemble the ``bonsai`` parser from the subcommand registry.

    Every subcommand is declared once in :data:`SUBCOMMANDS` with its
    one-line summary; the summary doubles as the ``bonsai --help``
    listing entry and the subcommand's own ``--help`` description, so
    the two can never drift apart.
    """
    parser = argparse.ArgumentParser(
        prog="bonsai",
        description="Bonsai adaptive merge tree sorting (ISCA 2020 reproduction)",
        epilog="run `bonsai <command> --help` for per-command options",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(
        dest="command", required=True, metavar="command",
        title="commands",
    )
    for name, summary, configure, _run in SUBCOMMANDS:
        child = sub.add_parser(name, help=summary, description=summary)
        if configure is not None:
            configure(child)
    return parser


# ----------------------------------------------------------------------
def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro.serve import OptimizeJob, SortSession

    session = SortSession(jobs=args.jobs)
    payload = session.run_optimize(OptimizeJob(
        platform=args.platform,
        size_bytes=args.size,
        record_bytes=args.record_bytes,
        objective=args.objective,
        presort=args.presort,
        leaves_cap=args.leaves_cap,
        top=args.top,
    ))
    print(f"platform={payload['platform']}  size={format_bytes(args.size)}  "
          f"objective={args.objective}")
    rows = [
        (
            index + 1,
            entry["config"],
            format_seconds(entry["latency_seconds"]),
            f"{entry['throughput_bytes'] / GB:.2f} GB/s",
            f"{entry['lut_usage']:,.0f}",
            f"{entry['bram_bytes']:,}",
        )
        for index, entry in enumerate(payload["rows"])
    ]
    print(render_table(
        ("#", "configuration", "latency", "throughput", "LUTs", "BRAM bytes"),
        rows,
    ))
    return 0


def _cmd_sort(args: argparse.Namespace) -> int:
    from repro.obs import observation
    from repro.records.files import read_records, write_records
    from repro.records.valsort import validate_sort

    obs = observation()

    if args.cluster_nodes is not None:
        from repro.distributed.executor import ClusterExecutor
        from repro.parallel import ParallelPlan

        platform = PLATFORMS[args.platform]()
        with obs.span("sort.load", source=args.input or args.workload):
            if args.input:
                data = read_records(args.input)
                source = args.input
            else:
                data = generate(WorkloadSpec(kind=args.workload,
                                             n_records=args.records,
                                             seed=args.seed))
                source = args.workload
        executor = ClusterExecutor(
            nodes=args.cluster_nodes,
            config=AmtConfig(p=args.p, leaves=args.leaves),
            hardware=platform.hardware,
            arch=MergerArchParams(),
            mode=args.mode,
            plan=ParallelPlan.from_jobs(args.jobs),
            seed=args.seed,
        )
        report = executor.execute(data)
        sorted_data = report.data
        assert sorted_data is not None  # execute() always attaches output
        with obs.span("sort.validate", records=len(data)):
            summary = validate_sort(data, sorted_data)
        if args.output:
            with obs.span("sort.write", path=args.output):
                write_records(args.output, sorted_data)
        print(f"cluster-sorted {len(data):,} records ({source}) across "
              f"{report.nodes} nodes, AMT({args.p}, {args.leaves}) per node")
        print(f"measured {report.measured_ms_per_gb:,.0f} ms/GB x nodes "
              f"vs modeled {report.modeled_ms_per_gb:,.0f} "
              f"(ratio {report.measured_vs_modeled:,.1f}x)  "
              f"skew={report.measured_skew:.3f}")
        print(f"phases: splitters={report.splitter_seconds:.3f}s  "
              f"exchange={report.exchange_seconds:.3f}s  "
              f"sort={report.sort_seconds:.3f}s  "
              f"merge={report.merge_seconds:.3f}s  "
              f"verified=OK ({summary.duplicates:,} duplicate keys)"
              + ("  straggler=recovered" if report.straggler_recovered else ""))
        if args.output:
            print(f"wrote {args.output}")
        return 0

    from repro.serve import SortJob, SortSession

    session = SortSession(jobs=args.jobs)
    payload = session.run_sort(SortJob(
        records=args.records,
        workload=args.workload,
        seed=args.seed,
        p=args.p,
        leaves=args.leaves,
        mode=args.mode,
        platform=args.platform,
        input=args.input,
        output=args.output,
    ))
    print(f"sorted {payload['records']:,} records ({payload['source']}) with "
          f"AMT({args.p}, {args.leaves}) in {payload['stages']} stages")
    print(f"mode={payload['mode']}  "
          f"modeled time={format_seconds(payload['seconds'])}  "
          f"({payload['ms_per_gb']:.0f} ms/GB)  "
          f"verified=OK ({payload['duplicates']:,} duplicate keys)")
    if args.print_digest:
        print(f"digest={payload['digest']}")
    if args.output:
        print(f"wrote {args.output}")
    return 0


def _cmd_scalability(args: argparse.Namespace) -> int:
    model = ScalabilityModel()
    sizes = [s for s in ScalabilityModel.paper_sizes() if args.min <= s <= args.max]
    rows = []
    for point in model.curve(sizes):
        rows.append(
            (
                format_bytes(point.total_bytes),
                point.regime,
                point.stages,
                f"{point.latency_ms_per_gb:.0f}",
            )
        )
    print(render_table(("size", "regime", "stages", "ms/GB"), rows,
                       title="Latency per GB across input sizes (Fig. 13)"))
    print("breakpoints:")
    for jump in model.breakpoints(sizes):
        print(f"  at {format_bytes(jump['at_bytes'])}: x{jump['factor']:.2f} "
              f"({jump['cause']})")
    return 0


def _cmd_ssd_plan(args: argparse.Namespace) -> int:
    plan = SsdSortPlan(run_bytes=args.run_bytes)
    breakdown = plan.plan(ArrayParams.from_bytes(args.size))
    print(f"two-phase plan for {format_bytes(args.size)} "
          f"(runs of {format_bytes(breakdown.run_bytes)}):")
    rows = [
        (phase, f"{seconds:.1f}s", f"{percent:.1f}%")
        for phase, seconds, percent in breakdown.rows()
    ]
    rows.append(("Total", f"{breakdown.total_seconds:.1f}s", "100%"))
    print(render_table(("phase", "time", "share"), rows))
    print(f"phase one: {breakdown.phase_one_config.describe()}")
    print(f"phase two: {breakdown.phase_two_config.describe()} "
          f"x{breakdown.phase_two_stages} stage(s)")
    return 0


def _cmd_components(args: argparse.Namespace) -> int:
    for record_bytes, label in ((4, "32-bit records"), (16, "128-bit records")):
        arch = MergerArchParams(record_bytes=record_bytes)
        rows = []
        for k in (1, 2, 4, 8, 16, 32):
            rows.append(
                (
                    f"{k}-merger",
                    f"{arch.library.element_throughput_bytes(k) / GB:.0f} GB/s",
                    f"{arch.library.merger_luts(k):,.0f}",
                    f"{k}-coupler" if k > 1 else "FIFO",
                    f"{arch.library.coupler_luts(k):,.0f}"
                    if k > 1
                    else f"{arch.library.fifo_luts():,.0f}",
                )
            )
        print(render_table(
            ("element", "throughput", "LUTs", "element", "LUTs"),
            rows,
            title=f"Table VI — {label}",
        ))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.core.validation import (
        geometric_mean_error,
        validate_performance,
        validate_resources,
    )

    platform = PLATFORMS["aws-f1"]()
    arch = MergerArchParams()
    perf_configs = [
        AmtConfig(p=2, leaves=8),
        AmtConfig(p=4, leaves=16),
        AmtConfig(p=8, leaves=16),
    ]
    perf = validate_performance(
        perf_configs, n_records=args.records,
        hardware=platform.hardware, arch=arch,
    )
    resource_configs = [
        AmtConfig(p=p, leaves=leaves) for p in (2, 8, 32) for leaves in (16, 256)
    ]
    resources = validate_resources(
        resource_configs, hardware=platform.hardware, arch=arch
    )
    rows = [
        (point.config.describe(), "performance",
         f"{100 * point.relative_error:.1f}%")
        for point in perf
    ] + [
        (point.config.describe(), "resources",
         f"{100 * point.relative_error:.1f}%")
        for point in resources
    ]
    print(render_table(("configuration", "model", "error vs measured"), rows))
    print(f"performance geometric-mean error: "
          f"{100 * geometric_mean_error(perf):.1f}%  (paper claims <10%)")
    print(f"resource geometric-mean error:    "
          f"{100 * geometric_mean_error(resources):.1f}%  (paper claims <5%)")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    import pathlib

    from repro.analysis.bandwidth_efficiency import efficiency_comparison
    from repro.baselines.published import (
        TABLE_I_SIZE_LABELS,
        TABLE_I_SIZES_GB,
        table_i_ms_per_gb,
    )
    from repro.core.scalability import ScalabilityModel

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    # Table I with our reproduced row.
    model = ScalabilityModel()
    rows = [(name,) + values for name, values in table_i_ms_per_gb().items()]
    ours = tuple(
        round(model.point(int(size * GB)).latency_ms_per_gb, 1)
        for size in TABLE_I_SIZES_GB
    )
    rows.append(("Bonsai (this repro)",) + ours)
    (out_dir / "table1.txt").write_text(
        render_table(("sorter",) + TABLE_I_SIZE_LABELS, rows,
                     title="Table I - ms/GB")
    )

    # Table V.
    breakdown = SsdSortPlan().plan(ArrayParams.from_bytes(2048 * GB))
    table5 = [(phase, round(seconds, 1), round(pct, 1))
              for phase, seconds, pct in breakdown.rows()]
    table5.append(("Total", round(breakdown.total_seconds, 1), 100.0))
    (out_dir / "table5.txt").write_text(
        render_table(("phase", "seconds", "%"), table5, title="Table V")
    )

    # Fig. 12.
    fig12 = [(e.name, round(e.efficiency, 3)) for e in efficiency_comparison()]
    (out_dir / "fig12.txt").write_text(
        render_table(("sorter", "efficiency"), fig12,
                     title="Fig. 12 - bandwidth-efficiency at 16 GB",
                     precision=3)
    )

    # Fig. 13.
    sizes = ScalabilityModel.paper_sizes()
    fig13 = [
        (format_bytes(point.total_bytes), point.regime, point.stages,
         round(point.latency_ms_per_gb, 1))
        for point in model.curve(sizes)
    ]
    (out_dir / "fig13.txt").write_text(
        render_table(("size", "regime", "stages", "ms/GB"), fig13,
                     title="Fig. 13 - latency per GB")
    )

    for name in ("table1", "table5", "fig12", "fig13"):
        print(f"wrote {out_dir / name}.txt")
    print("run `pytest benchmarks/ --benchmark-only` for the full set "
          "(Tables IV/VI, Figs. 5/8/9/10/11, ablations)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.trace:
        import json

        from repro.obs.report import build_report as build_trace_report
        from repro.obs.report import render_report

        report = build_trace_report(args.trace)
        if args.format == "json":
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(render_report(report), end="")
        return 0
    from repro.analysis.report import build_report, collect_status

    status = collect_status(args.results)
    build_report(args.results, args.output)
    print(f"wrote {args.output} with {len(status.present)} sections")
    if status.missing:
        print(f"missing sections (run the benches): {', '.join(status.missing)}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import SCENARIOS, compare_to_baseline, write_report
    from repro.bench.runner import load_baseline

    if args.list_scenarios:
        print(render_table(
            ("scenario", "kind", "summary"),
            [(s.name, s.kind, s.summary) for s in SCENARIOS],
        ))
        return 0
    from repro.serve import SortSession

    results = SortSession(jobs=args.jobs).run_bench(
        names=args.scenario, quick=args.quick, seed=args.seed
    )
    rows = [
        (
            result.name,
            f"{result.naive_seconds:.3f}s",
            f"{result.fast_seconds:.3f}s",
            f"{result.speedup:.1f}x",
            f"{result.cycles:,}" if result.cycles is not None else "-",
        )
        for result in results
    ]
    print(render_table(
        ("scenario", "naive/cold", "fast/memoized", "speedup", "cycles"),
        rows,
        title=f"bonsai bench ({'quick' if args.quick else 'full'})",
    ))
    report = write_report(results, args.output, quick=args.quick)
    print(f"wrote {args.output}")
    if args.baseline:
        problems = compare_to_baseline(
            report, load_baseline(args.baseline), max_slowdown=args.max_slowdown
        )
        if problems:
            for problem in problems:
                print(f"regression: {problem}", file=sys.stderr)
            print(
                f"{len(problems)} of {len(results)} scenario(s) regressed "
                f"vs {args.baseline} (gate: {args.max_slowdown:.1f}x)",
                file=sys.stderr,
            )
            return 1
        print(f"no regressions vs {args.baseline} "
              f"(gate: {args.max_slowdown:.1f}x)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import ServeConfig, serve

    return serve(ServeConfig(
        socket=args.socket,
        queue_depth=args.queue_depth,
        client_quota=args.client_quota,
        batch_max=args.batch_max,
        cache_size=args.cache_size,
        jobs=args.jobs,
    ))


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.main import run_from_args

    return run_from_args(args)


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.lint.graph.main import run_from_args

    return run_from_args(args)


#: The single source of truth for ``bonsai`` subcommands:
#: ``(name, one-line summary, parser configurator, handler)``.
SUBCOMMANDS = (
    ("optimize", "find the optimal AMT configuration",
     _configure_optimize, _cmd_optimize),
    ("sort", "sort a generated workload or a file",
     _configure_sort, _cmd_sort),
    ("scalability", "Fig. 13 curve and breakpoints",
     _configure_scalability, _cmd_scalability),
    ("ssd-plan", "two-phase SSD sorting plan",
     _configure_ssd_plan, _cmd_ssd_plan),
    ("components", "print the Table VI component library",
     None, _cmd_components),
    ("validate", "model-vs-simulator accuracy check (§VI-B)",
     _configure_validate, _cmd_validate),
    ("experiments", "regenerate the paper's tables into a directory",
     _configure_experiments, _cmd_experiments),
    ("report", "consolidate benchmarks/results/ into one REPORT.md",
     _configure_report, _cmd_report),
    ("bench", "time the simulation engines and record the perf trajectory",
     _configure_bench, _cmd_bench),
    ("serve", "run the sorting service daemon on a unix socket",
     _configure_serve, _cmd_serve),
    ("lint", "bonsai-lint: check simulator/unit/purity invariants",
     _configure_lint, _cmd_lint),
    ("check", "bonsai-check: whole-program unit-flow/purity/FIFO analysis",
     _configure_check, _cmd_check),
)

COMMANDS = {name: run for name, _summary, _configure, run in SUBCOMMANDS}


def _manifest_config(args: argparse.Namespace) -> dict:
    """The resolved invocation, JSON-shaped, for the run manifest."""
    return {
        key: value
        for key, value in sorted(vars(args).items())
        if key not in ("trace", "metrics", "manifest")
    }


def _run_command(args: argparse.Namespace, argv: list[str] | None) -> int:
    """Dispatch one parsed invocation, observed when any flag asks for it.

    With ``--trace``/``--metrics``/``--manifest`` unset this is exactly
    ``COMMANDS[args.command](args)`` — no observation objects are built,
    so the default path stays allocation-free.
    """
    handler = COMMANDS[args.command]
    if getattr(args, "merge_backend", None):
        from repro.network import flims

        flims.set_backend(args.merge_backend)
    trace = getattr(args, "trace", None)
    metrics = getattr(args, "metrics", None)
    manifest = getattr(args, "manifest", None)
    if args.command == "report":
        # `report` reads traces, it does not produce them; its
        # positional `trace` is input, not an output flag.
        trace = metrics = manifest = None
    if not (trace or metrics or manifest):
        return handler(args)
    from repro.obs import session
    from repro.obs.manifest import build_manifest, write_manifest

    failure: BonsaiError | None = None
    with session(args.command, trace=trace, metrics=metrics) as obs:
        try:
            code = handler(args)
        except BonsaiError as error:
            # A failed run still deserves its provenance record — the
            # manifest is most valuable exactly when a run must be
            # explained after the fact.
            failure = error
            code = 2
        obs.gauge("cli.exit_code", code)
    if manifest:
        write_manifest(manifest, build_manifest(
            command=args.command,
            config=_manifest_config(args),
            seed=getattr(args, "seed", None),
            argv=list(argv) if argv is not None else None,
            extra={"exit_code": code},
        ))
    for label, path in (("trace", trace), ("metrics", metrics),
                        ("manifest", manifest)):
        if path:
            print(f"wrote {label} {path}", file=sys.stderr)
    if failure is not None:
        raise failure
    return code


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``bonsai`` console script."""
    args = _build_parser().parse_args(argv)
    try:
        return _run_command(args, argv)
    except BonsaiError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
