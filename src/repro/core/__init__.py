"""Bonsai's models and optimizer — the paper's primary contribution.

* :mod:`repro.core.parameters` — the input parameters of Table II.
* :mod:`repro.core.configuration` — AMT configurations of Table III.
* :mod:`repro.core.components` — the merger/coupler/FIFO component library
  measured in Table VI, with record-width and size extrapolation.
* :mod:`repro.core.performance` — the performance model, Eqs. 1-7.
* :mod:`repro.core.resources` — the resource model, Eqs. 8-10, plus the
  structural enumerator standing in for Vivado synthesis reports.
* :mod:`repro.core.optimizer` — Bonsai: exhaustive pruning of the AMT
  configuration space for latency- or throughput-optimal designs (§III-C).
* :mod:`repro.core.ssd_planner` — the two-phase SSD sorting plan (§IV-C).
* :mod:`repro.core.scalability` — end-to-end latency across the full input
  range, DRAM and SSD regimes (Fig. 13, Table I).
* :mod:`repro.core.presets` — AWS F1 / Alveo U50 / SSD-node platforms.
* :mod:`repro.core.validation` — model-vs-simulator accuracy checks (§VI-B).
"""

from repro.core.parameters import (
    ArrayParams,
    FpgaSpec,
    HardwareParams,
    MergerArchParams,
)
from repro.core.configuration import AmtConfig
from repro.core.components import ComponentLibrary
from repro.core.performance import PerformanceModel
from repro.core.resources import ResourceModel, ResourceBreakdown
from repro.core.optimizer import Bonsai, RankedConfig
from repro.core.ssd_planner import SsdSortPlan, TwoPhaseBreakdown
from repro.core.scalability import ScalabilityModel
from repro.core import presets

__all__ = [
    "ArrayParams",
    "FpgaSpec",
    "HardwareParams",
    "MergerArchParams",
    "AmtConfig",
    "ComponentLibrary",
    "PerformanceModel",
    "ResourceModel",
    "ResourceBreakdown",
    "Bonsai",
    "RankedConfig",
    "SsdSortPlan",
    "TwoPhaseBreakdown",
    "ScalabilityModel",
    "presets",
]
