"""The building-block component library (Table VI).

Bonsai treats mergers and couplers as black boxes whose frequency and
logic cost are *inputs* to the model (§I-B: "the resource utilization and
frequency of mergers/couplers are treated as input parameters").  This
module carries the paper's measured LUT counts for 32-bit and 128-bit
records, and extrapolates:

* to larger mergers via the Θ(k log k) growth law (§I-A), anchored at the
  widest measured entry;
* to other record widths by linear interpolation/extrapolation in the
  record width, reflecting the paper's observation that compare-and-swap
  logic grows linearly with width (§VI-F).

Throughput of a k-element is ``k`` records/cycle, i.e. ``k * r * f``
bytes/s — Table VI's "Th-put" column at 250 MHz.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.units import is_power_of_two

#: Table VI(a): 32-bit records.
MERGER_LUTS_32BIT = {1: 300, 2: 622, 4: 1_555, 8: 3_620, 16: 8_500, 32: 18_853}
COUPLER_LUTS_32BIT = {2: 142, 4: 273, 8: 530, 16: 1_047, 32: 2_079}
FIFO_LUTS_32BIT = 50

#: Table VI(b): 128-bit records.  (The 8-coupler's 2,081 LUTs are
#: non-monotonic against the 4-coupler in the paper; we keep the paper's
#: numbers verbatim.)
MERGER_LUTS_128BIT = {1: 1_016, 2: 2_210, 4: 5_604, 8: 13_051, 16: 29_970, 32: 77_732}
COUPLER_LUTS_128BIT = {2: 576, 4: 1_938, 8: 2_081, 16: 4_142, 32: 8_266}
FIFO_LUTS_128BIT = 134

_MEASURED_WIDTHS = (4, 16)  # record bytes of the two measured tables
_MAX_TABLE_K = 32


def _tables_for_width(record_bytes: int) -> tuple[dict, dict, float]:
    """Merger/coupler/FIFO costs at ``record_bytes`` wide records.

    Linear interpolation between the 4-byte and 16-byte measurements and
    linear extrapolation outside them (clamped at the 4-byte floor), per
    the linear-in-width CAS argument of §VI-F.
    """
    if record_bytes <= 0:
        raise ConfigurationError(f"record width must be positive, got {record_bytes}")
    low, high = _MEASURED_WIDTHS
    fraction = (record_bytes - low) / (high - low)

    def blend(a: float, b: float) -> float:
        """Width-interpolated cost with a sane floor."""
        value = a + fraction * (b - a)
        return max(value, min(a, b) * 0.25)

    mergers = {
        k: blend(MERGER_LUTS_32BIT[k], MERGER_LUTS_128BIT[k])
        for k in MERGER_LUTS_32BIT
    }
    couplers = {
        k: blend(COUPLER_LUTS_32BIT[k], COUPLER_LUTS_128BIT[k])
        for k in COUPLER_LUTS_32BIT
    }
    fifo = blend(FIFO_LUTS_32BIT, FIFO_LUTS_128BIT)
    return mergers, couplers, fifo


@dataclass(frozen=True)
class ComponentLibrary:
    """LUT/throughput oracle for mergers, couplers and FIFOs.

    Parameters
    ----------
    record_bytes:
        Record width ``r`` this library is instantiated for.
    frequency_hz:
        Clock frequency ``f`` (Table II(c)); the paper's designs run at
        250 MHz.
    """

    record_bytes: int = 4
    frequency_hz: float = 250e6
    _mergers: dict = field(init=False, repr=False)
    _couplers: dict = field(init=False, repr=False)
    _fifo: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError(
                f"frequency must be positive, got {self.frequency_hz}"
            )
        mergers, couplers, fifo = _tables_for_width(self.record_bytes)
        object.__setattr__(self, "_mergers", mergers)
        object.__setattr__(self, "_couplers", couplers)
        object.__setattr__(self, "_fifo", fifo)

    # ------------------------------------------------------------------
    def merger_luts(self, k: int) -> float:
        """``m_k``: LUTs of a k-merger (Table II(c))."""
        self._check_k(k)
        if k in self._mergers:
            return self._mergers[k]
        # Θ(k log k) extrapolation anchored at the widest measured merger.
        anchor = self._mergers[_MAX_TABLE_K]
        return anchor * (k * math.log2(2 * k)) / (
            _MAX_TABLE_K * math.log2(2 * _MAX_TABLE_K)
        )

    def coupler_luts(self, k: int) -> float:
        """``c_k``: LUTs of a k-coupler; a width-1 'coupler' is the plain
        FIFO connecting two 1-mergers."""
        self._check_k(k)
        if k == 1:
            return self._fifo
        if k in self._couplers:
            return self._couplers[k]
        anchor = self._couplers[_MAX_TABLE_K]
        return anchor * k / _MAX_TABLE_K  # couplers grow linearly in k

    def fifo_luts(self) -> float:
        """LUT cost of one stream FIFO."""
        return self._fifo

    def _check_k(self, k: int) -> None:
        if not is_power_of_two(k):
            raise ConfigurationError(f"element width must be a power of two, got {k}")

    # ------------------------------------------------------------------
    def element_throughput_bytes(self, k: int) -> float:
        """Bytes/s through a k-element: ``k * r * f`` (Table VI Th-put)."""
        self._check_k(k)
        return k * self.record_bytes * self.frequency_hz

    def amt_throughput_bytes(self, p: int) -> float:
        """Peak AMT output rate ``p f r`` used throughout §III."""
        return self.element_throughput_bytes(p)
