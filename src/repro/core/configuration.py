"""AMT configurations (Table III).

A configuration fixes four knobs: the per-AMT throughput ``p`` and leaf
count ``l`` (every AMT in a configuration shares them, §III-A), the
unrolling amount ``λ_unrl`` (independent parallel AMTs, §III-A2) and the
pipelining amount ``λ_pipe`` (AMTs chained so each merge stage runs on a
different tree, §III-A3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import is_power_of_two, log2_int


@dataclass(frozen=True, order=True)
class AmtConfig:
    """One point in Bonsai's search space.

    Parameters
    ----------
    p:
        Records output per cycle by each merge tree (power of two).
    leaves:
        Input arrays each tree merges concurrently (power of two >= 2).
    lambda_unroll:
        Number of independent parallel AMT pipelines.
    lambda_pipe:
        Number of pipelined AMT stages per pipeline.
    """

    p: int
    leaves: int
    lambda_unroll: int = 1
    lambda_pipe: int = 1

    def __post_init__(self) -> None:
        if not is_power_of_two(self.p):
            raise ConfigurationError(f"p must be a power of two, got {self.p}")
        if not is_power_of_two(self.leaves) or self.leaves < 2:
            raise ConfigurationError(
                f"leaf count must be a power of two >= 2, got {self.leaves}"
            )
        if self.lambda_unroll < 1:
            raise ConfigurationError(
                f"unroll factor must be >= 1, got {self.lambda_unroll}"
            )
        if self.lambda_pipe < 1:
            raise ConfigurationError(
                f"pipeline depth must be >= 1, got {self.lambda_pipe}"
            )

    # ------------------------------------------------------------------
    @property
    def total_amts(self) -> int:
        """Trees instantiated on chip: ``λ_pipe * λ_unrl`` (§III-A4)."""
        return self.lambda_unroll * self.lambda_pipe

    @property
    def depth(self) -> int:
        """Merger levels per tree."""
        return log2_int(self.leaves)

    def merger_width_at(self, level: int) -> int:
        """Merger size at tree level ``level`` (root = 0); §II."""
        if not 0 <= level < self.depth:
            raise ConfigurationError(
                f"level {level} outside tree of depth {self.depth}"
            )
        return max(1, self.p >> level)

    def merger_counts(self) -> dict[int, int]:
        """Histogram {merger width: count} over one tree."""
        counts: dict[int, int] = {}
        for level in range(self.depth):
            width = self.merger_width_at(level)
            counts[width] = counts.get(width, 0) + (1 << level)
        return counts

    def coupler_counts(self) -> dict[int, int]:
        """Histogram {coupler width: count} over one tree.

        A coupler of width ``k`` sits on every edge whose parent merger is
        twice as wide as its child; same-width (1-merger) edges are plain
        FIFOs and are accounted separately.
        """
        counts: dict[int, int] = {}
        for level in range(1, self.depth):
            parent = self.merger_width_at(level - 1)
            child = self.merger_width_at(level)
            if parent == 2 * child:
                counts[parent] = counts.get(parent, 0) + (1 << level)
        return counts

    def describe(self) -> str:
        """Human-readable label, e.g. ``4x pipelined AMT(8, 64)``."""
        base = f"AMT({self.p}, {self.leaves})"
        parts = []
        if self.lambda_unroll > 1:
            parts.append(f"{self.lambda_unroll}x unrolled")
        if self.lambda_pipe > 1:
            parts.append(f"{self.lambda_pipe}x pipelined")
        return f"{' '.join(parts)} {base}".strip()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
