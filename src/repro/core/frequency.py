"""Routing-congestion frequency model (§VI-C1, optional extension).

The paper's base model treats the clock ``f`` as a constant 250 MHz, but
its implemented DRAM sorter deviates from the model's optimum because
"designs with more leaves have lower frequency due to FPGA routing
congestion" (§VI-C1 limits l to 64).  This optional model makes that
effect first-class: frequency holds at the base rate up to a congestion
threshold in leaves, then degrades geometrically per leaf doubling.

The default degradation (0.7x per doubling past 64 leaves) is calibrated
so the paper's implemented choice *emerges* from the optimizer: with the
model active, AMT(32, 64) beats AMT(32, 128) and AMT(32, 256) for
DRAM-scale sorts on the F1 — no hand-imposed ``leaves_cap`` needed.
Pass a different degradation to explore other parts (the ablation bench
sweeps it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import is_power_of_two


@dataclass(frozen=True)
class FrequencyModel:
    """Achievable clock frequency as a function of the AMT shape.

    Parameters
    ----------
    base_hz:
        Frequency of uncongested designs (the paper's 250 MHz).
    congestion_leaves:
        Largest leaf count that still closes timing at ``base_hz``
        (§VI-C1: 64 on the VU9P).
    degradation_per_doubling:
        Multiplicative frequency factor per leaf doubling past the
        threshold.
    p_congestion:
        Largest merger width that still closes timing at ``base_hz``;
        wider mergers (beyond the paper's synthesized p = 32) degrade by
        the same factor per doubling.
    """

    base_hz: float = 250e6
    congestion_leaves: int = 64
    degradation_per_doubling: float = 0.7
    p_congestion: int = 32

    def __post_init__(self) -> None:
        if self.base_hz <= 0:
            raise ConfigurationError(f"base frequency must be positive, got {self.base_hz}")
        if not is_power_of_two(self.congestion_leaves):
            raise ConfigurationError(
                f"congestion threshold must be a power of two, got "
                f"{self.congestion_leaves}"
            )
        if not 0 < self.degradation_per_doubling <= 1:
            raise ConfigurationError(
                "degradation factor must be in (0, 1], got "
                f"{self.degradation_per_doubling}"
            )
        if not is_power_of_two(self.p_congestion):
            raise ConfigurationError(
                f"p threshold must be a power of two, got {self.p_congestion}"
            )

    def frequency(self, p: int, leaves: int) -> float:
        """Achievable clock for an AMT(p, leaves)."""
        if not is_power_of_two(p) or not is_power_of_two(leaves):
            raise ConfigurationError(
                f"AMT shape must be powers of two, got p={p}, leaves={leaves}"
            )
        doublings = 0
        if leaves > self.congestion_leaves:
            doublings += (leaves // self.congestion_leaves).bit_length() - 1
        if p > self.p_congestion:
            doublings += (p // self.p_congestion).bit_length() - 1
        return self.base_hz * self.degradation_per_doubling**doublings

    def slowdown(self, p: int, leaves: int) -> float:
        """Fraction of the base frequency lost to congestion."""
        return 1.0 - self.frequency(p, leaves) / self.base_hz
