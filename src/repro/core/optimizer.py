"""Bonsai: the AMT configuration optimizer (§III-C).

"Bonsai is an optimization strategy that exhaustively prunes all AMT
configurations that fit into on-chip resources and picks the one with
either minimal sorting time (latency-optimal) or maximal throughput
(throughput-optimal)."

The search space enumerates ``p`` and ``l`` over powers of two,
``λ_unrl`` over powers of two, and ``λ_pipe`` over small integers.
Feasibility is Eq. 9 (LUT) and Eq. 10 (BRAM); throughput optimization
additionally enforces the pipeline-capacity constraint Eq. 5.

Ties in the objective are broken toward fewer LUTs, then less BRAM —
which is exactly how the paper's reported optima fall out of the model:
e.g. the throughput-optimal SSD phase-1 design is the 4-deep pipeline of
AMT(8, 64), not AMT(32, 64) (same 8 GB/s I/O-bound throughput, fewer
LUTs) and not a 2-deep pipeline (Eq. 5 capacity falls short of 8 GB).

"Importantly, Bonsai can list all implementable AMT configurations in
decreasing order of performance" — :meth:`Bonsai.rank_by_latency` and
:meth:`Bonsai.rank_by_throughput` return that list.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Literal

from repro.core.configuration import AmtConfig
from repro.core.parameters import ArrayParams, HardwareParams, MergerArchParams
from repro.core.performance import PerformanceModel
from repro.core.resources import ResourceModel
from repro.errors import ConfigurationError, NoFeasibleConfigError
from repro.obs.runtime import observation
from repro.parallel.plan import ParallelPlan
from repro.units import GB

UnrollMode = Literal["partition", "address_range"]


@dataclass(frozen=True)
class RankedConfig:
    """One feasible configuration with its predicted figures of merit."""

    config: AmtConfig
    latency_seconds: float
    throughput_bytes: float
    lut_usage: float
    bram_bytes: int

    def describe(self) -> str:
        """One-line summary: config, latency, throughput, LUTs."""
        return (
            f"{self.config.describe()}: "
            f"{self.latency_seconds:.3f} s, "
            f"{self.throughput_bytes / GB:.2f} GB/s, "
            f"{self.lut_usage:,.0f} LUTs"
        )


@dataclass
class Bonsai:
    """The optimizer: performance + resource models over a search space.

    Parameters
    ----------
    hardware / arch:
        Table II inputs.
    presort_run:
        Presorter run length available to designs (§VI-C); enters the
        stage count and the Eq. 5 capacity bound.
    p_max / leaves_max / unroll_max / pipe_max:
        Search-space bounds.  ``p_max`` defaults to 32 — the widest
        merger the paper built and timed at 250 MHz ("using even bigger
        mergers is also possible", §I-A, but their frequency is
        unvalidated); the other bounds comfortably cover every
        configuration the paper discusses.
    leaves_cap:
        Optional hard cap on ``l`` modelling routing-congestion
        frequency loss (§VI-C1 limits the implemented design to l = 64
        "because designs with more leaves have lower frequency").
    frequency_model:
        Optional smooth alternative to ``leaves_cap``: a
        :class:`~repro.core.frequency.FrequencyModel` that degrades each
        configuration's clock past its congestion thresholds, letting
        the implemented l = 64 choice *emerge* from the search.
    parallel:
        Optional :class:`~repro.parallel.plan.ParallelPlan` evaluating
        configuration chunks in worker processes.  Workers return
        evaluation tuples and the parent folds them into its frozen-key
        caches before ranking, so the ranking loop itself — and with it
        the order, ties and all — is byte-for-byte the serial one.
    observe:
        Whether this instance reports memo-hit/miss counters to the
        active observation.  Worker-side replicas are constructed with
        ``False`` so their internal cache population is not double
        counted against the parent's accounting.
    """

    hardware: HardwareParams
    arch: MergerArchParams
    presort_run: int = 16
    p_max: int = 32
    leaves_max: int = 4096
    unroll_max: int = 64
    pipe_max: int = 8
    leaves_cap: int | None = None
    frequency_model: object | None = None
    parallel: ParallelPlan | None = None
    observe: bool = True

    performance: PerformanceModel = field(init=False)
    resources: ResourceModel = field(init=False)

    # Memoization (§III-C is an exhaustive search, and callers ranking a
    # sweep of arrays re-evaluate the same configurations over and
    # over).  Every input dataclass is frozen and the models are pure
    # functions of construction-time parameters, so results are cached
    # per key and shared across ``rank_by_latency``,
    # ``rank_by_throughput`` and the ``*_optimal`` helpers.  The caches
    # assume the optimizer's parameters are not mutated after
    # construction — build a new ``Bonsai`` for new hardware.
    _resource_cache: dict = field(init=False, default_factory=dict, repr=False)
    _feasible_cache: dict = field(init=False, default_factory=dict, repr=False)
    _latency_cache: dict = field(init=False, default_factory=dict, repr=False)
    _throughput_cache: dict = field(init=False, default_factory=dict, repr=False)
    # Cache keys filled by a pool prefetch whose first parent-side
    # lookup has not happened yet.  Memo accounting treats that first
    # lookup as a *miss* (the evaluation really ran, just in a worker),
    # which keeps hit/miss counters identical between serial and
    # sharded runs by construction.
    _fresh_keys: set = field(init=False, default_factory=set, repr=False)

    def __post_init__(self) -> None:
        for label, value in (
            ("p_max", self.p_max),
            ("leaves_max", self.leaves_max),
            ("unroll_max", self.unroll_max),
            ("pipe_max", self.pipe_max),
        ):
            if value < 1:
                raise ConfigurationError(f"{label} must be >= 1, got {value}")
        self.performance = PerformanceModel(
            hardware=self.hardware,
            arch=self.arch,
            presort_run=self.presort_run,
            frequency_model=self.frequency_model,
        )
        self.resources = ResourceModel(
            hardware=self.hardware, library=self.arch.library
        )

    # ------------------------------------------------------------------
    # search space
    # ------------------------------------------------------------------
    def _powers(self, start: int, limit: int) -> Iterator[int]:
        value = start
        while value <= limit:
            yield value
            value *= 2

    def _note_memo(self, cache: str, hit: bool) -> None:
        """Report one memo lookup to the active observation."""
        if not self.observe:
            return
        observation().count(
            "optimizer.memo_hits" if hit else "optimizer.memo_misses",
            cache=cache,
        )

    def _resource_figures(self, config: AmtConfig) -> tuple[bool, float, int]:
        """Memoized ``(fits, lut_usage, bram_bytes)`` for a config."""
        cached = self._resource_cache.get(config)
        if cached is None:
            cached = (
                self.resources.fits(config),
                self.resources.lut_usage(config),
                self.resources.bram_bytes(config),
            )
            self._resource_cache[config] = cached
            self._note_memo("resource", hit=False)
        else:
            self._note_memo("resource", hit=True)
        return cached

    def feasible_configs(self, include_pipelines: bool = False) -> Iterator[AmtConfig]:
        """All configurations satisfying Eq. 9 and Eq. 10."""
        cached = self._feasible_cache.get(include_pipelines)
        if cached is None:
            cached = tuple(self._enumerate_feasible(include_pipelines))
            self._feasible_cache[include_pipelines] = cached
        yield from cached

    def _enumerate_feasible(self, include_pipelines: bool) -> Iterator[AmtConfig]:
        leaves_limit = self.leaves_max
        if self.leaves_cap is not None:
            leaves_limit = min(leaves_limit, self.leaves_cap)
        pipe_range = range(1, self.pipe_max + 1) if include_pipelines else (1,)
        for p in self._powers(1, self.p_max):
            for leaves in self._powers(2, leaves_limit):
                # Cheap monotone pruning: if the single tree already
                # violates a bound, wider λ only makes it worse.
                base = AmtConfig(p=p, leaves=leaves)
                if not self._resource_figures(base)[0]:
                    continue
                for lambda_pipe in pipe_range:
                    for lambda_unroll in self._powers(1, self.unroll_max):
                        config = AmtConfig(
                            p=p,
                            leaves=leaves,
                            lambda_unroll=lambda_unroll,
                            lambda_pipe=lambda_pipe,
                        )
                        if self._resource_figures(config)[0]:
                            yield config

    # ------------------------------------------------------------------
    # latency optimization (§III-C, first program)
    # ------------------------------------------------------------------
    def _latency(self, config: AmtConfig, array: ArrayParams, mode: str) -> float:
        key = (config, array, mode)
        cached = self._latency_cache.get(key)
        if cached is None:
            if mode == "address_range":
                cached = self.performance.latency_unrolled_address_range(config, array)
            elif mode == "combined":
                cached = self.performance.latency_combined(config, array)
            else:
                cached = self.performance.latency_unrolled(config, array)
            self._latency_cache[key] = cached
            self._note_memo("latency", hit=False)
        elif ("latency", key) in self._fresh_keys:
            self._fresh_keys.discard(("latency", key))
            self._note_memo("latency", hit=False)
        else:
            self._note_memo("latency", hit=True)
        return cached

    def _throughput(self, config: AmtConfig) -> float:
        cached = self._throughput_cache.get(config)
        if cached is None:
            cached = self.performance.throughput_combined(config)
            self._throughput_cache[config] = cached
            self._note_memo("throughput", hit=False)
        elif ("throughput", config) in self._fresh_keys:
            self._fresh_keys.discard(("throughput", config))
            self._note_memo("throughput", hit=False)
        else:
            self._note_memo("throughput", hit=True)
        return cached

    # ------------------------------------------------------------------
    # parallel cache prefetch
    # ------------------------------------------------------------------
    def _worker_kwargs(self) -> dict:
        """Constructor kwargs for a worker-side replica of this optimizer.

        Everything except ``parallel`` (workers never nest pools), so
        the replica evaluates the exact same models over the exact same
        search space.
        """
        return {
            "hardware": self.hardware,
            "arch": self.arch,
            "presort_run": self.presort_run,
            "p_max": self.p_max,
            "leaves_max": self.leaves_max,
            "unroll_max": self.unroll_max,
            "pipe_max": self.pipe_max,
            "leaves_cap": self.leaves_cap,
            "frequency_model": self.frequency_model,
            "observe": False,
        }

    def _prefetch_latencies(self, array: ArrayParams, unroll_mode: str) -> None:
        """Fill ``_latency_cache`` for every feasible config via the pool."""
        if self.parallel is None:
            return
        configs = [
            config
            for config in self.feasible_configs(include_pipelines=False)
            if (config, array, unroll_mode) not in self._latency_cache
        ]
        if not self.parallel.wants_processes(len(configs)):
            return
        from repro.parallel.workers import worker_eval_latency

        kwargs = self._worker_kwargs()
        tasks = [
            (kwargs, tuple(configs[i] for i in chunk), array, unroll_mode)
            for chunk in self.parallel.chunks(len(configs))
        ]
        for pairs in self.parallel.map(worker_eval_latency, tasks):
            for config, latency in pairs:
                key = (config, array, unroll_mode)
                self._latency_cache[key] = latency
                self._fresh_keys.add(("latency", key))

    def _prefetch_throughputs(self, array: ArrayParams) -> None:
        """Fill throughput/latency caches for the Eq. 5-feasible configs."""
        if self.parallel is None:
            return
        configs = [
            config
            for config in self.feasible_configs(include_pipelines=True)
            if config not in self._throughput_cache
        ]
        if not self.parallel.wants_processes(len(configs)):
            return
        from repro.parallel.workers import worker_eval_throughput

        kwargs = self._worker_kwargs()
        tasks = [
            (kwargs, tuple(configs[i] for i in chunk), array)
            for chunk in self.parallel.chunks(len(configs))
        ]
        for rows in self.parallel.map(worker_eval_throughput, tasks):
            for config, can_sort, throughput, latency in rows:
                if not can_sort:
                    continue
                self._throughput_cache[config] = throughput
                self._fresh_keys.add(("throughput", config))
                key = (config, array, "combined")
                self._latency_cache[key] = latency
                self._fresh_keys.add(("latency", key))

    def rank_by_latency(
        self,
        array: ArrayParams,
        unroll_mode: UnrollMode = "partition",
        top: int | None = None,
    ) -> list[RankedConfig]:
        """All feasible configs in increasing sorting-time order.

        Pipelining is excluded: "Pipelining is not used in the latency
        optimization model, because it does not improve sorting time."
        """
        obs = observation()
        with obs.span(
            "optimizer.rank_latency",
            records=array.n_records, unroll_mode=unroll_mode,
        ) as span:
            self._prefetch_latencies(array, unroll_mode)
            ranked = []
            for config in self.feasible_configs(include_pipelines=False):
                latency = self._latency(config, array, unroll_mode)
                _, lut_usage, bram_bytes = self._resource_figures(config)
                ranked.append(
                    RankedConfig(
                        config=config,
                        latency_seconds=latency,
                        throughput_bytes=array.total_bytes / latency,
                        lut_usage=lut_usage,
                        bram_bytes=bram_bytes,
                    )
                )
            # Equal-latency ties prefer more leaves (robustness to larger
            # N: "then builds as many leaves as can be implemented",
            # §IV-A), then fewer LUTs (which settles p at the
            # bandwidth-matching width rather than anything wider).
            ranked.sort(
                key=lambda r: (
                    r.latency_seconds,
                    -r.config.leaves,
                    r.lut_usage,
                    r.bram_bytes,
                )
            )
            if self.observe:
                obs.count("optimizer.configs_ranked", len(ranked), sweep="latency")
            span.set(configs=len(ranked))
        return ranked[:top] if top is not None else ranked

    def latency_optimal(
        self, array: ArrayParams, unroll_mode: UnrollMode = "partition"
    ) -> RankedConfig:
        """The minimum-sorting-time configuration (argmin of §III-C)."""
        ranked = self.rank_by_latency(array, unroll_mode=unroll_mode, top=1)
        if not ranked:
            raise NoFeasibleConfigError(
                "no AMT configuration fits the available on-chip resources"
            )
        return ranked[0]

    # ------------------------------------------------------------------
    # throughput optimization (§III-C, second program)
    # ------------------------------------------------------------------
    def rank_by_throughput(
        self, array: ArrayParams, top: int | None = None
    ) -> list[RankedConfig]:
        """Feasible pipelined configs in decreasing throughput order.

        Enforces the Eq. 5 capacity constraint
        ``min(C_DRAM/(λ_pipe λ_unrl), l**λ_pipe) >= N``.
        """
        obs = observation()
        with obs.span(
            "optimizer.rank_throughput", records=array.n_records
        ) as span:
            self._prefetch_throughputs(array)
            ranked = []
            for config in self.feasible_configs(include_pipelines=True):
                if not self.pipeline_can_sort(config, array):
                    continue
                throughput = self._throughput(config)
                _, lut_usage, bram_bytes = self._resource_figures(config)
                ranked.append(
                    RankedConfig(
                        config=config,
                        latency_seconds=self._latency(config, array, "combined"),
                        throughput_bytes=throughput,
                        lut_usage=lut_usage,
                        bram_bytes=bram_bytes,
                    )
                )
            ranked.sort(
                key=lambda r: (-r.throughput_bytes, r.lut_usage, r.bram_bytes)
            )
            if self.observe:
                obs.count(
                    "optimizer.configs_ranked", len(ranked), sweep="throughput"
                )
            span.set(configs=len(ranked))
        return ranked[:top] if top is not None else ranked

    def throughput_optimal(self, array: ArrayParams) -> RankedConfig:
        """The maximum-throughput configuration (argmax of §III-C)."""
        ranked = self.rank_by_throughput(array, top=1)
        if not ranked:
            raise NoFeasibleConfigError(
                "no pipelined AMT configuration can sort arrays of "
                f"{array.total_bytes:,} bytes within resources and Eq. 5"
            )
        return ranked[0]

    def pipeline_can_sort(self, config: AmtConfig, array: ArrayParams) -> bool:
        """Eq. 5 capacity check with combined unrolling.

        The DRAM term divides by all resident AMTs (every tree stores its
        intermediate output on DRAM); the depth term is per pipeline.
        """
        dram_bound = self.hardware.c_dram / config.total_amts / self.arch.record_bytes
        depth_bound = self.presort_run * float(config.leaves) ** config.lambda_pipe
        per_pipeline_records = math.ceil(array.n_records / config.lambda_unroll)
        return min(dram_bound, depth_bound) >= per_pipeline_records
