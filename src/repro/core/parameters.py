"""Bonsai input parameters (Table II).

Three parameter groups feed the optimizer:

* :class:`ArrayParams` — Table II(a): record count ``N`` and width ``r``.
* :class:`HardwareParams` — Table II(b): off-chip bandwidth/capacity, I/O
  bandwidth, on-chip memory, logic capacity and the read-batch size ``b``.
* :class:`MergerArchParams` — Table II(c): merger frequency ``f`` and the
  per-component LUT costs ``m_k`` / ``c_k`` (via the component library).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.components import ComponentLibrary
from repro.errors import ConfigurationError
from repro.memory.base import MemoryModel
from repro.records.record import RecordFormat, U32
from repro.units import GB, KiB, MiB


@dataclass(frozen=True)
class ArrayParams:
    """Table II(a): the array being sorted."""

    n_records: int
    fmt: RecordFormat = U32

    def __post_init__(self) -> None:
        if self.n_records < 1:
            raise ConfigurationError(
                f"array must have at least one record, got {self.n_records}"
            )

    @property
    def record_bytes(self) -> int:
        """``r`` in the model's equations."""
        return self.fmt.width_bytes

    @property
    def total_bytes(self) -> int:
        """``N * r``."""
        return self.n_records * self.record_bytes

    @classmethod
    def from_bytes(cls, total_bytes: int, fmt: RecordFormat = U32) -> "ArrayParams":
        """Array sized in bytes, e.g. ``from_bytes(16 * GB)``."""
        n_records = fmt.records_for(total_bytes)
        return cls(n_records=n_records, fmt=fmt)


@dataclass(frozen=True)
class FpgaSpec:
    """On-chip resource capacities of one FPGA part.

    ``bram_effective_bytes`` is the on-chip buffer budget ``C_BRAM``
    available to the data loader (Eq. 10).  It is deliberately smaller
    than the part's raw BRAM bits: the 512-bit-wide leaf FIFOs map
    inefficiently onto BRAM primitives and the loader/presorter keep
    private buffers.  The default is calibrated so that, with the paper's
    4 KiB batches, Eq. 10 caps the leaf count at 256 — exactly the limit
    the paper reports for the VU9P (§IV-A: "the reason why l cannot be
    made larger than 256 is that the data loader uses up the on-chip
    memory").
    """

    name: str = "xcvu9p"
    lut_capacity: int = 862_128          # Table IV "Available"
    flipflop_capacity: int = 1_761_817   # Table IV "Available"
    bram_blocks: int = 1_600             # Table IV "Available" (36 Kb blocks)
    bram_effective_bytes: int = 1 * MiB

    def __post_init__(self) -> None:
        for label, value in (
            ("LUT capacity", self.lut_capacity),
            ("flip-flop capacity", self.flipflop_capacity),
            ("BRAM blocks", self.bram_blocks),
            ("effective BRAM bytes", self.bram_effective_bytes),
        ):
            if value <= 0:
                raise ConfigurationError(f"{label} must be positive, got {value}")


@dataclass(frozen=True)
class HardwareParams:
    """Table II(b): the hardware envelope Bonsai optimises for."""

    beta_dram: float
    beta_io: float
    c_dram: int
    c_bram: int
    c_lut: int
    batch_bytes: int = 4 * KiB

    def __post_init__(self) -> None:
        for label, value in (
            ("DRAM bandwidth", self.beta_dram),
            ("I/O bandwidth", self.beta_io),
            ("DRAM capacity", self.c_dram),
            ("BRAM capacity", self.c_bram),
            ("LUT capacity", self.c_lut),
            ("batch size", self.batch_bytes),
        ):
            if value <= 0:
                raise ConfigurationError(f"{label} must be positive, got {value}")
        if not 1 * KiB // 2 <= self.batch_bytes <= 64 * KiB:
            raise ConfigurationError(
                f"batch size {self.batch_bytes} outside the sane 0.5-64 KiB "
                "range (the paper uses 1-4 KB, §II)"
            )

    @classmethod
    def from_platform(
        cls,
        memory: MemoryModel,
        fpga: FpgaSpec,
        io_bandwidth: float = 8 * GB,
        batch_bytes: int = 4 * KiB,
        use_measured_bandwidth: bool = True,
    ) -> "HardwareParams":
        """Assemble Table II(b) from a memory model and an FPGA spec."""
        beta = memory.bandwidth if use_measured_bandwidth else memory.peak_bandwidth
        return cls(
            beta_dram=beta,
            beta_io=io_bandwidth,
            c_dram=memory.capacity_bytes,
            c_bram=fpga.bram_effective_bytes,
            c_lut=fpga.lut_capacity,
            batch_bytes=batch_bytes,
        )

    def max_leaves(self) -> int:
        """Largest power-of-two leaf count satisfying Eq. 10 at λ = 1."""
        limit = self.c_bram // self.batch_bytes
        if limit < 2:
            raise ConfigurationError(
                "on-chip memory cannot buffer even two leaves; decrease the "
                f"batch size (b={self.batch_bytes}, C_BRAM={self.c_bram})"
            )
        return 1 << (limit.bit_length() - 1)


@dataclass(frozen=True)
class MergerArchParams:
    """Table II(c): merger frequency and component costs."""

    record_bytes: int = 4
    frequency_hz: float = 250e6
    library: ComponentLibrary = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "library",
            ComponentLibrary(
                record_bytes=self.record_bytes, frequency_hz=self.frequency_hz
            ),
        )

    def amt_throughput_bytes(self, p: int) -> float:
        """``p f r``."""
        return self.library.amt_throughput_bytes(p)
