"""The Bonsai performance model (Equations 1-7, §III-A).

Every public method corresponds to a numbered equation of the paper;
deviations are called out where the paper's formulae contain typos:

* Eq. 2's numerator is written ``N r ceil(log_l(N/λ))`` in the paper,
  which would make unrolling a strict loss even when compute-bound.  The
  physically consistent form — each AMT sorts its ``N/λ`` partition at
  its ``β/λ`` bandwidth share — is ``(N/λ) r ceil(log_l(N/λ)) /
  min(p f r, β/λ)``, which reduces to the expected ``N r S / β`` in the
  bandwidth-bound regime (the data still crosses memory once per stage)
  and exposes the genuine unrolling speed-up in the compute-bound regime
  (the HBM case of §IV-B).  We implement the consistent form and verify
  both regimes in tests.

The optional presorter (§VI-C) shortens the first stage's input runs to
``presort_run`` records, so the stage count becomes
``ceil(log_l(N / presort_run))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.configuration import AmtConfig
from repro.core.frequency import FrequencyModel
from repro.core.parameters import ArrayParams, HardwareParams, MergerArchParams
from repro.errors import ConfigurationError
from repro.units import ceil_log


@dataclass(frozen=True)
class PerformanceModel:
    """Latency/throughput predictions for AMT configurations.

    Parameters
    ----------
    hardware:
        Table II(b) parameters.
    arch:
        Table II(c) parameters (frequency, record width, components).
    presort_run:
        Records per presorted run entering the first merge stage
        (1 = no presorter; the paper's DRAM sorter uses 16).
    frequency_model:
        Optional routing-congestion model (§VI-C1): when set, each
        configuration's throughput uses its own achievable clock instead
        of the constant ``arch.frequency_hz``.
    """

    hardware: HardwareParams
    arch: MergerArchParams
    presort_run: int = 1
    frequency_model: FrequencyModel | None = None

    def __post_init__(self) -> None:
        if self.presort_run < 1:
            raise ConfigurationError(
                f"presort run length must be >= 1, got {self.presort_run}"
            )

    # ------------------------------------------------------------------
    # building blocks
    # ------------------------------------------------------------------
    def effective_frequency(self, config: AmtConfig) -> float:
        """The configuration's clock under the optional congestion model."""
        if self.frequency_model is None:
            return self.arch.frequency_hz
        return self.frequency_model.frequency(config.p, config.leaves)

    def amt_throughput(self, config: AmtConfig) -> float:
        """``p f r``: one tree's peak output in bytes/s."""
        base = self.arch.amt_throughput_bytes(config.p)
        if self.frequency_model is None:
            return base
        return base * self.effective_frequency(config) / self.arch.frequency_hz

    def stage_count(self, config: AmtConfig, n_records: int) -> int:
        """Merge stages to sort ``n_records``: ``ceil(log_l(N / presort))``.

        At least one stage always runs — even presorted data must pass
        through the tree once to be concatenated into a single run.
        """
        if n_records < 1:
            raise ConfigurationError(f"need at least one record, got {n_records}")
        effective = max(1.0, n_records / self.presort_run)
        return max(1, ceil_log(effective, config.leaves))

    # ------------------------------------------------------------------
    # Eq. 1: single-AMT latency
    # ------------------------------------------------------------------
    def latency_single(self, config: AmtConfig, array: ArrayParams) -> float:
        """Eq. 1: ``N r ceil(log_l N) / min(p f r, β_DRAM)`` seconds."""
        stages = self.stage_count(config, array.n_records)
        rate = min(self.amt_throughput(config), self.hardware.beta_dram)
        return array.total_bytes * stages / rate

    # ------------------------------------------------------------------
    # Eq. 2: unrolled latency (partitioned data)
    # ------------------------------------------------------------------
    def latency_unrolled(self, config: AmtConfig, array: ArrayParams) -> float:
        """Eq. 2 (consistent form): λ AMTs sort disjoint partitions.

        Each AMT handles ``N/λ`` records with a ``β/λ`` bandwidth share;
        partitioning overlaps the first stage (§III-A2) and costs nothing.
        """
        lam = config.lambda_unroll
        if lam == 1:
            return self.latency_single(config, array)
        per_amt_records = max(1, math.ceil(array.n_records / lam))
        stages = self.stage_count(config, per_amt_records)
        rate = min(self.amt_throughput(config), self.hardware.beta_dram / lam)
        return per_amt_records * array.record_bytes * stages / rate

    # ------------------------------------------------------------------
    # §IV-B: unrolled latency, address-range variant
    # ------------------------------------------------------------------
    def latency_unrolled_address_range(
        self, config: AmtConfig, array: ArrayParams
    ) -> float:
        """Address-range unrolling: no partitioning; final merges idle AMTs.

        Each AMT first sorts a predefined address range, then the λ sorted
        ranges are merged by progressively fewer AMTs (§IV-B: "half of the
        AMTs are idled, and the remaining AMTs do one more merge stage").
        Every active AMT keeps its ``β/λ`` bank share.
        """
        lam = config.lambda_unroll
        if lam == 1:
            return self.latency_single(config, array)
        per_amt_rate = min(self.amt_throughput(config), self.hardware.beta_dram / lam)
        per_amt_records = max(1, math.ceil(array.n_records / lam))
        stages = self.stage_count(config, per_amt_records)
        seconds = per_amt_records * array.record_bytes * stages / per_amt_rate
        # Final merges: λ ranges shrink by a factor of `leaves` per extra
        # stage; active AMTs = number of merge groups.
        remaining = lam
        while remaining > 1:
            groups = max(1, math.ceil(remaining / config.leaves))
            seconds += array.total_bytes / (groups * per_amt_rate)
            remaining = groups
        return seconds

    # ------------------------------------------------------------------
    # Eq. 3/4: pipelined throughput and latency
    # ------------------------------------------------------------------
    def pipeline_throughput(self, config: AmtConfig) -> float:
        """Eq. 3: ``min(p f r, β_DRAM/λ_pipe, β_I/O)`` bytes/s."""
        return min(
            self.amt_throughput(config),
            self.hardware.beta_dram / config.lambda_pipe,
            self.hardware.beta_io,
        )

    def pipeline_latency(self, config: AmtConfig, array: ArrayParams) -> float:
        """Eq. 4: ``N r λ_pipe / min(p f r, β_DRAM/λ_pipe, β_I/O)``."""
        return (
            array.total_bytes
            * config.lambda_pipe
            / self.pipeline_throughput(config)
        )

    # ------------------------------------------------------------------
    # Eq. 5: pipeline capacity
    # ------------------------------------------------------------------
    def pipeline_capacity_records(self, config: AmtConfig) -> float:
        """Eq. 5: largest N a λ_pipe pipeline can sort.

        ``min(C_DRAM / λ_pipe, l**λ_pipe)`` — the DRAM bound is in
        records here, and the merge-depth bound is scaled by the presort
        run length ("this constraint can be mitigated by pre-sorting
        small subsequences before the initial merge stage").
        """
        dram_bound = (
            self.hardware.c_dram / config.lambda_pipe / self.arch.record_bytes
        )
        depth_bound = self.presort_run * float(config.leaves) ** config.lambda_pipe
        return min(dram_bound, depth_bound)

    # ------------------------------------------------------------------
    # Eq. 6/7: combined pipelining + unrolling
    # ------------------------------------------------------------------
    def combined_rate(self, config: AmtConfig) -> float:
        """Per-pipeline rate under combined unrolling+pipelining (Eq. 6/7's
        min term): ``min(p f r, β_DRAM/(λ_pipe λ_unrl), β_I/O)``."""
        return min(
            self.amt_throughput(config),
            self.hardware.beta_dram / config.total_amts,
            self.hardware.beta_io,
        )

    def latency_combined(self, config: AmtConfig, array: ArrayParams) -> float:
        """Eq. 6: sorting time of a λ_pipe-pipelined, λ_unrl-unrolled
        configuration (each pipeline handles ``N/λ_unrl`` records)."""
        per_pipeline_bytes = array.total_bytes / config.lambda_unroll
        return per_pipeline_bytes * config.lambda_pipe / self.combined_rate(config)

    def throughput_combined(self, config: AmtConfig) -> float:
        """Eq. 7: aggregate sorted-data throughput in bytes/s."""
        return config.lambda_unroll * self.combined_rate(config)

    # ------------------------------------------------------------------
    # I/O lower bound (Fig. 5's dashed line)
    # ------------------------------------------------------------------
    def io_lower_bound(self, array: ArrayParams) -> float:
        """Time to stream the data through memory once (duplex pass)."""
        return array.total_bytes / self.hardware.beta_dram

    # ------------------------------------------------------------------
    def records_per_second(self, config: AmtConfig) -> float:
        """Convenience: steady-state records/s of one AMT."""
        return self.amt_throughput(config) / self.arch.record_bytes

    def stage_seconds(self, config: AmtConfig, array: ArrayParams) -> float:
        """Time of one full merge stage: ``N r / min(p f r, β)``."""
        rate = min(self.amt_throughput(config), self.hardware.beta_dram)
        return array.total_bytes / rate
