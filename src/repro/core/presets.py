"""Platform presets (§IV): AWS F1 DRAM node, Alveo U50 HBM, SSD node.

Each preset bundles the memory model, FPGA spec and derived Table II
parameters the paper's case studies use, so experiments can say
``presets.aws_f1()`` and get the same hardware envelope as §IV-A.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.parameters import FpgaSpec, HardwareParams, MergerArchParams
from repro.core.optimizer import Bonsai
from repro.memory.dram import DdrDram
from repro.memory.hbm import Hbm
from repro.memory.hierarchy import TwoTierHierarchy
from repro.memory.ssd import Ssd
from repro.units import GB, KiB


@dataclass(frozen=True)
class Platform:
    """A named hardware platform with its Table II parameters."""

    name: str
    hardware: HardwareParams
    fpga: FpgaSpec
    memory: object
    io_bandwidth: float

    def bonsai(
        self,
        record_bytes: int = 4,
        presort_run: int = 16,
        leaves_cap: int | None = None,
    ) -> Bonsai:
        """A Bonsai optimizer instance for this platform."""
        return Bonsai(
            hardware=self.hardware,
            arch=MergerArchParams(record_bytes=record_bytes),
            presort_run=presort_run,
            leaves_cap=leaves_cap,
        )


#: The VU9P part on the F1.2xlarge instance (Table IV capacities).
VU9P = FpgaSpec()


def aws_f1(
    record_bytes: int = 4,
    use_measured_bandwidth: bool = False,
    batch_bytes: int = 4 * KiB,
) -> Platform:
    """§IV-A / §VI-A: F1.2xlarge with 64 GB DDR4 at 32 GB/s (measured ~29).

    ``use_measured_bandwidth=True`` plugs in the measured 29 GB/s, which
    is what the experimentally reported sorting times reflect (Table I's
    172 ms/GB row is five stages at 29 GB/s).
    """
    dram = DdrDram()
    hardware = HardwareParams.from_platform(
        dram,
        VU9P,
        io_bandwidth=8 * GB,
        batch_bytes=batch_bytes,
        use_measured_bandwidth=use_measured_bandwidth,
    )
    return Platform(
        name="aws-f1", hardware=hardware, fpga=VU9P, memory=dram, io_bandwidth=8 * GB
    )


def aws_f1_measured(record_bytes: int = 4) -> Platform:
    """F1 with the measured 29 GB/s DRAM rate (§IV-A footnote)."""
    return aws_f1(record_bytes=record_bytes, use_measured_bandwidth=True)


def alveo_u50(projected: bool = True) -> Platform:
    """§IV-B / §VI-D: HBM tile (32 banks; 512 GB/s projected envelope)."""
    hbm = Hbm.projected_512() if projected else Hbm()
    hardware = HardwareParams.from_platform(hbm, VU9P, io_bandwidth=16 * GB)
    return Platform(
        name="alveo-u50", hardware=hardware, fpga=VU9P, memory=hbm,
        io_bandwidth=16 * GB,
    )


def ssd_node() -> Platform:
    """§IV-C: F1-style node with a 2 TB SSD at 8 GB/s behind the I/O bus."""
    hierarchy = TwoTierHierarchy(fast=DdrDram(), slow=Ssd())
    hardware = HardwareParams.from_platform(
        hierarchy.fast, VU9P, io_bandwidth=hierarchy.io_bandwidth,
        use_measured_bandwidth=False,
    )
    return Platform(
        name="ssd-node",
        hardware=hardware,
        fpga=VU9P,
        memory=hierarchy,
        io_bandwidth=hierarchy.io_bandwidth,
    )


def ssd_as_memory() -> Platform:
    """Phase-two view of the SSD sorter: the SSD *is* the off-chip memory.

    §IV-C: "In the second phase of SSD sorting, the SSD effectively acts
    as the only off-chip memory, as each stage in this phase requires a
    round trip to SSD."
    """
    ssd = Ssd()
    hardware = HardwareParams.from_platform(
        ssd, VU9P, io_bandwidth=ssd.peak_bandwidth, use_measured_bandwidth=False
    )
    return Platform(
        name="ssd-as-memory", hardware=hardware, fpga=VU9P, memory=ssd,
        io_bandwidth=ssd.peak_bandwidth,
    )


def custom_dram(bandwidth: float, capacity: int = 64 * GB) -> Platform:
    """A DRAM platform with arbitrary bandwidth (Fig. 5's β sweep)."""
    dram = DdrDram(
        name=f"DDR@{bandwidth / GB:g}GB/s",
        peak_bandwidth=bandwidth,
        capacity_bytes=capacity,
        measured_bandwidth=None,
    )
    hardware = HardwareParams.from_platform(dram, VU9P, io_bandwidth=8 * GB)
    return Platform(
        name=f"dram-{bandwidth / GB:g}", hardware=hardware, fpga=VU9P,
        memory=dram, io_bandwidth=8 * GB,
    )
