"""The Bonsai resource model (Equations 8-10, §III-B) and the structural
enumerator standing in for Vivado synthesis reports.

Two LUT estimates are provided:

* :meth:`ResourceModel.lut_eq8` — the paper's closed-form Eq. 8, summing
  ``2^n (m_{p/2^n} + 2 c_{p/2^n})`` over the tree's merger levels.
* :meth:`ResourceModel.structural_luts` — a component-by-component
  enumeration of the actual tree (mergers exactly as instantiated,
  couplers only on width-doubling edges, a FIFO per leaf), which is what
  a synthesis report measures.  Fig. 10's model-vs-measured comparison is
  reproduced as Eq. 8 vs this enumeration; the two agree within a few
  percent (the paper claims 5%).

The data loader and presorter costs (Table IV's other rows) are
calibrated per leaf / per lane from the paper's implemented AMT(32, 64)
DRAM sorter and documented as such.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.components import ComponentLibrary
from repro.core.configuration import AmtConfig
from repro.core.parameters import HardwareParams
from repro.errors import InfeasibleConfigError

#: Table IV calibration: the implemented DRAM sorter's data loader used
#: 110,102 LUTs / 604,550 FFs / 960 BRAM blocks for 64 leaves.
LOADER_LUTS_PER_LEAF = 110_102 / 64
LOADER_FFS_PER_LEAF = 604_550 / 64
LOADER_BRAM_BLOCKS_PER_LEAF = 960 / 64

#: Table IV calibration: the 16-record presorter feeding 32 records/cycle
#: used 75,412 LUTs / 64,092 FFs — per output lane.
PRESORTER_LUTS_PER_LANE = 75_412 / 32
PRESORTER_FFS_PER_LANE = 64_092 / 32

#: Merge-tree flip-flops track LUTs closely in Table IV (100,264 FFs vs
#: 102,158 LUTs); we model FF = LUT for the tree.
TREE_FF_PER_LUT = 100_264 / 102_158


@dataclass(frozen=True)
class ResourceBreakdown:
    """Per-component resource usage, mirroring Table IV's rows."""

    loader_luts: float
    tree_luts: float
    presorter_luts: float
    loader_ffs: float
    tree_ffs: float
    presorter_ffs: float
    loader_bram_blocks: float
    bram_bytes: int

    @property
    def total_luts(self) -> float:
        """Table IV's Total row (LUTs)."""
        return self.loader_luts + self.tree_luts + self.presorter_luts

    @property
    def total_ffs(self) -> float:
        """Table IV's Total row (flip-flops)."""
        return self.loader_ffs + self.tree_ffs + self.presorter_ffs


@dataclass(frozen=True)
class ResourceModel:
    """Eq. 8-10 feasibility checks plus structural enumeration."""

    hardware: HardwareParams
    library: ComponentLibrary

    # ------------------------------------------------------------------
    # Eq. 8: closed-form LUT model
    # ------------------------------------------------------------------
    def lut_eq8(self, p: int, leaves: int) -> float:
        """Eq. 8: ``sum_n 2^n (m_{p/2^n} + 2 c_{p/2^n})`` over tree levels.

        The summand at depth ``n`` covers the ``2^n`` mergers of width
        ``max(1, p/2^n)`` and their two input couplers (a width-1
        "coupler" is costed as the plain FIFO between 1-mergers).
        """
        config = AmtConfig(p=p, leaves=leaves)
        total = 0.0
        for level in range(config.depth):
            width = config.merger_width_at(level)
            per_merger = self.library.merger_luts(width) + 2 * self.library.coupler_luts(width)
            total += (1 << level) * per_merger
        return total

    # ------------------------------------------------------------------
    # structural enumeration (synthesis stand-in)
    # ------------------------------------------------------------------
    def structural_tree_luts(self, config: AmtConfig) -> float:
        """LUTs of one tree counted component by component.

        Differs from Eq. 8 in exactly the ways a synthesis report does:
        couplers exist only on width-doubling edges (Eq. 8 charges two per
        merger uniformly) and each leaf contributes one input-FIFO's
        interface logic.
        """
        total = 0.0
        for width, count in config.merger_counts().items():
            total += count * self.library.merger_luts(width)
        for width, count in config.coupler_counts().items():
            total += count * self.library.coupler_luts(width)
        # Same-width (1-merger to 1-merger) edges and leaf inputs are
        # plain FIFOs.
        fifo_edges = config.leaves
        for level in range(1, config.depth):
            parent = config.merger_width_at(level - 1)
            child = config.merger_width_at(level)
            if parent == child:
                fifo_edges += 1 << level
        total += fifo_edges * self.library.fifo_luts()
        return total

    def breakdown(self, config: AmtConfig, presort: bool = True) -> ResourceBreakdown:
        """Table IV-style structural breakdown for a full configuration."""
        trees = config.total_amts
        tree_luts = trees * self.structural_tree_luts(config)
        loader_luts = trees * config.leaves * LOADER_LUTS_PER_LEAF
        presorter_luts = trees * config.p * PRESORTER_LUTS_PER_LANE if presort else 0.0
        return ResourceBreakdown(
            loader_luts=loader_luts,
            tree_luts=tree_luts,
            presorter_luts=presorter_luts,
            loader_ffs=trees * config.leaves * LOADER_FFS_PER_LEAF,
            tree_ffs=tree_luts * TREE_FF_PER_LUT,
            presorter_ffs=trees * config.p * PRESORTER_FFS_PER_LANE if presort else 0.0,
            loader_bram_blocks=trees * config.leaves * LOADER_BRAM_BLOCKS_PER_LEAF,
            bram_bytes=self.bram_bytes(config),
        )

    # ------------------------------------------------------------------
    # Eq. 9/10: feasibility
    # ------------------------------------------------------------------
    def lut_usage(self, config: AmtConfig) -> float:
        """Configuration LUTs: ``λ_pipe λ_unrl * LUT(p, l)`` (§III-B: "if k
        AMTs are used ... exactly k times higher")."""
        return config.total_amts * self.lut_eq8(config.p, config.leaves)

    def bram_bytes(self, config: AmtConfig) -> int:
        """Eq. 10's left side: ``λ_pipe λ_unrl * b * l``."""
        return config.total_amts * self.hardware.batch_bytes * config.leaves

    def fits_lut(self, config: AmtConfig) -> bool:
        """Eq. 9: ``LUT(p, l) < C_LUT``."""
        return self.lut_usage(config) <= self.hardware.c_lut

    def fits_bram(self, config: AmtConfig) -> bool:
        """Eq. 10: ``b l <= C_BRAM``."""
        return self.bram_bytes(config) <= self.hardware.c_bram

    def fits(self, config: AmtConfig) -> bool:
        """Both on-chip constraints."""
        return self.fits_lut(config) and self.fits_bram(config)

    def check(self, config: AmtConfig) -> None:
        """Raise :class:`InfeasibleConfigError` naming the violated bound."""
        if not self.fits_lut(config):
            raise InfeasibleConfigError(
                f"{config.describe()} needs {self.lut_usage(config):,.0f} LUTs "
                f"but the chip has {self.hardware.c_lut:,} (Eq. 9)"
            )
        if not self.fits_bram(config):
            raise InfeasibleConfigError(
                f"{config.describe()} needs {self.bram_bytes(config):,} bytes "
                f"of leaf buffering but C_BRAM is {self.hardware.c_bram:,} (Eq. 10)"
            )
