"""End-to-end scalability model: latency per GB across 0.5 GB - 1 PB+
(Fig. 13, the Bonsai rows of Table I).

Two regimes:

* **DRAM regime** (input fits DRAM): the implemented latency-optimized
  DRAM sorter — AMT(32, 64) with a 16-record presorter at the measured
  29 GB/s — sorts in ``ceil(log_64(N/16))`` stages (§VI-C1).
* **SSD regime** (input exceeds DRAM): the two-phase SSD sorter (§IV-C),
  planned by :class:`~repro.core.ssd_planner.SsdSortPlan`.

Fig. 13's four latency steps emerge from the stage arithmetic:
an extra DRAM stage at 2 GB, the DRAM-to-SSD switch past 64 GB, and
extra phase-two stages whenever the run count outgrows ``l**stages``.
The figure's own arithmetic implies 64 GB phase-one runs (the 32 TB
step = 256 x 64 GB x 2), so that is this model's default run size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.configuration import AmtConfig
from repro.core.parameters import ArrayParams, MergerArchParams
from repro.core.ssd_planner import SsdSortPlan
from repro.errors import ConfigurationError
from repro.memory.dram import DdrDram
from repro.memory.hierarchy import TwoTierHierarchy
from repro.memory.ssd import Ssd
from repro.records.record import RecordFormat, U32
from repro.units import GB, PB, TB, ceil_log, ms_per_gb


@dataclass(frozen=True)
class ScalabilityPoint:
    """One point of the Fig. 13 curve."""

    total_bytes: int
    seconds: float
    regime: str
    stages: int

    @property
    def latency_ms_per_gb(self) -> float:
        """Fig. 13's y-axis."""
        return ms_per_gb(self.seconds, self.total_bytes)

    @property
    def throughput_bytes(self) -> float:
        """Sorted bytes per second at this size."""
        return self.total_bytes / self.seconds


@dataclass
class ScalabilityModel:
    """Latency model spanning the DRAM and SSD regimes.

    Parameters
    ----------
    dram_config:
        The implemented DRAM sorter (§VI-C1 uses AMT(32, 64)).
    presort_run:
        DRAM sorter presorter run length (16).
    dram_bandwidth:
        Effective DRAM rate; the measured 29 GB/s reproduces Table I's
        172 ms/GB row exactly (5 stages / 29 GB/s).
    ssd_run_bytes:
        Phase-one run size for the SSD regime; 64 GB reproduces Fig. 13's
        step placement (see module docstring).
    """

    dram_config: AmtConfig = AmtConfig(p=32, leaves=64)
    presort_run: int = 16
    dram_bandwidth: float = 29 * GB
    fmt: RecordFormat = U32
    arch: MergerArchParams = field(default_factory=MergerArchParams)
    hierarchy: TwoTierHierarchy = field(
        default_factory=lambda: TwoTierHierarchy(
            fast=DdrDram(), slow=Ssd(capacity_bytes=10 * PB)  # effectively unbounded
        )
    )
    ssd_run_bytes: int = 64 * GB

    def __post_init__(self) -> None:
        if self.dram_bandwidth <= 0:
            raise ConfigurationError("DRAM bandwidth must be positive")
        self._ssd_plan = SsdSortPlan(
            hierarchy=self.hierarchy,
            arch=self.arch,
            run_bytes=self.ssd_run_bytes,
        )

    # ------------------------------------------------------------------
    def dram_stages(self, total_bytes: int) -> int:
        """Merge stages of the DRAM sorter for an input of ``total_bytes``."""
        n_records = max(1, total_bytes // self.fmt.width_bytes)
        effective = max(1, math.ceil(n_records / self.presort_run))
        return max(1, ceil_log(effective, self.dram_config.leaves))

    def dram_seconds(self, total_bytes: int) -> float:
        """DRAM-regime sorting time: stages x streamed passes."""
        rate = min(
            self.arch.amt_throughput_bytes(self.dram_config.p), self.dram_bandwidth
        )
        return total_bytes * self.dram_stages(total_bytes) / rate

    # ------------------------------------------------------------------
    def point(self, total_bytes: int) -> ScalabilityPoint:
        """Latency at one input size, choosing the regime automatically."""
        if total_bytes <= 0:
            raise ConfigurationError(f"input size must be positive, got {total_bytes}")
        if self.hierarchy.fast.fits(total_bytes):
            return ScalabilityPoint(
                total_bytes=total_bytes,
                seconds=self.dram_seconds(total_bytes),
                regime="dram",
                stages=self.dram_stages(total_bytes),
            )
        array = ArrayParams.from_bytes(total_bytes, self.fmt)
        breakdown = self._ssd_plan.plan(array)
        return ScalabilityPoint(
            total_bytes=total_bytes,
            seconds=breakdown.total_seconds,
            regime="ssd",
            stages=breakdown.phase_two_stages,
        )

    def curve(self, sizes_bytes: list[int]) -> list[ScalabilityPoint]:
        """The Fig. 13 series over a list of input sizes."""
        return [self.point(size) for size in sizes_bytes]

    # ------------------------------------------------------------------
    def breakpoints(self, sizes_bytes: list[int], threshold: float = 1.05) -> list[dict]:
        """Where latency/GB jumps between consecutive sampled sizes.

        Returns dicts with the position, the jump factor and the cause —
        the annotations on Fig. 13's arrows.
        """
        points = self.curve(sorted(sizes_bytes))
        jumps = []
        for previous, current in zip(points, points[1:]):
            factor = current.latency_ms_per_gb / previous.latency_ms_per_gb
            if factor < threshold:
                continue
            if previous.regime == "dram" and current.regime == "ssd":
                cause = "switch to SSD sorter"
            elif previous.regime == "dram":
                cause = "extra stage"
            else:
                cause = "extra stage in second phase"
            jumps.append(
                {
                    "at_bytes": current.total_bytes,
                    "factor": factor,
                    "cause": cause,
                }
            )
        return jumps

    @staticmethod
    def paper_sizes() -> list[int]:
        """Fig. 13's sampled sizes: 0.5 GB doubling up to ~1024 TB
        (22 points)."""
        return [(GB // 2) << k for k in range(22)]
