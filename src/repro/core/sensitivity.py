"""Sensitivity analysis over the hardware envelope (§I's architects' lens).

"Our general approach helps computer architects better understand what
performance benefits future compute and memory technology may bring, as
well as how these improvements can best be integrated with our merge
tree sorter."  This module answers that question systematically: perturb
each Table II parameter in turn, re-run the optimizer, and report how
the optimal configuration and its sorting time move.

The output distinguishes parameters the design is *bound* by (perturbing
them moves the optimum) from those with slack (the optimum is
insensitive) — the quantitative version of Table IV's observation that
the FPGA "has additional resources available to leverage future
improvements in DRAM bandwidth, which is the bottleneck".
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.configuration import AmtConfig
from repro.core.optimizer import Bonsai
from repro.core.parameters import ArrayParams, HardwareParams, MergerArchParams
from repro.errors import ConfigurationError

#: The Table II(b) knobs the analysis perturbs.
PERTURBABLE = ("beta_dram", "beta_io", "c_bram", "c_lut")


@dataclass(frozen=True)
class SensitivityEntry:
    """Effect of scaling one parameter by one factor."""

    parameter: str
    factor: float
    config: AmtConfig
    latency_seconds: float
    baseline_seconds: float

    @property
    def speedup(self) -> float:
        """Baseline time over perturbed time (>1 = improvement)."""
        return self.baseline_seconds / self.latency_seconds

    @property
    def moved_optimum(self) -> bool:
        """True when the perturbation changed the achievable latency."""
        return self.factor != 1.0 and self.speedup != 1.0


def _scaled_hardware(hardware: HardwareParams, parameter: str, factor: float) -> HardwareParams:
    if parameter not in PERTURBABLE:
        raise ConfigurationError(
            f"unknown parameter {parameter!r}; perturbable: {PERTURBABLE}"
        )
    value = getattr(hardware, parameter)
    scaled = value * factor
    if parameter in ("c_bram", "c_lut", ):
        scaled = max(1, int(scaled))
    return replace(hardware, **{parameter: scaled})


def analyze(
    hardware: HardwareParams,
    arch: MergerArchParams,
    array: ArrayParams,
    factors: tuple[float, ...] = (0.5, 2.0, 4.0),
    presort_run: int = 16,
) -> list[SensitivityEntry]:
    """Perturb each parameter by each factor; re-optimise; report.

    The unperturbed optimum is included once per parameter as the
    ``factor = 1.0`` row for easy tabulation.
    """
    if not factors:
        raise ConfigurationError("need at least one perturbation factor")
    baseline = Bonsai(
        hardware=hardware, arch=arch, presort_run=presort_run
    ).latency_optimal(array)
    entries: list[SensitivityEntry] = []
    for parameter in PERTURBABLE:
        entries.append(
            SensitivityEntry(
                parameter=parameter,
                factor=1.0,
                config=baseline.config,
                latency_seconds=baseline.latency_seconds,
                baseline_seconds=baseline.latency_seconds,
            )
        )
        for factor in factors:
            scaled = _scaled_hardware(hardware, parameter, factor)
            best = Bonsai(
                hardware=scaled, arch=arch, presort_run=presort_run
            ).latency_optimal(array)
            entries.append(
                SensitivityEntry(
                    parameter=parameter,
                    factor=factor,
                    config=best.config,
                    latency_seconds=best.latency_seconds,
                    baseline_seconds=baseline.latency_seconds,
                )
            )
    return entries


def binding_parameters(entries: list[SensitivityEntry], threshold: float = 1.05) -> list[str]:
    """Parameters whose doubling speeds the sorter up by >= ``threshold``.

    These are the bottlenecks; everything else has slack.
    """
    binding = []
    for entry in entries:
        if entry.factor == 2.0 and entry.speedup >= threshold:
            if entry.parameter not in binding:
                binding.append(entry.parameter)
    return binding
