"""Two-phase SSD sorting plan (§IV-C, Table V).

"The key insight for such two-level hierarchies is that the sorting
procedure should be divided into two distinct phases, with each phase
using a different AMT configuration."

Phase one streams the input from SSD through a *throughput-optimal*
pipelined configuration, leaving DRAM-scale sorted runs on the SSD.  The
FPGA is then reprogrammed (measured average 4.3 s, §VI-E) to a
*latency-optimal* configuration that treats the SSD as the off-chip
memory, and phase two merges the runs in as few SSD round trips as
possible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.configuration import AmtConfig
from repro.core.parameters import ArrayParams, MergerArchParams
from repro.errors import ConfigurationError
from repro.memory.hierarchy import TwoTierHierarchy
from repro.units import GB, ceil_log

#: Measured FPGA reprogramming time between the phases (§VI-E).
REPROGRAM_SECONDS = 4.3

#: §IV-C phase-one presort: "assuming we pre-sort the input data into
#: 256-element subsequences (Equation 5)".
PHASE_ONE_PRESORT = 256


@dataclass(frozen=True)
class TwoPhaseBreakdown:
    """Execution-time breakdown of one SSD sort (Table V's rows)."""

    total_bytes: int
    run_bytes: int
    phase_one_seconds: float
    reprogram_seconds: float
    phase_two_seconds: float
    phase_two_stages: int
    phase_one_config: AmtConfig
    phase_two_config: AmtConfig

    @property
    def total_seconds(self) -> float:
        """Table V's Total row."""
        return self.phase_one_seconds + self.reprogram_seconds + self.phase_two_seconds

    def percentage(self, seconds: float) -> float:
        """Share of total time, as Table V reports."""
        return 100.0 * seconds / self.total_seconds

    def rows(self) -> list[tuple[str, float, float]]:
        """(phase, seconds, percentage) rows matching Table V."""
        return [
            ("Phase One", self.phase_one_seconds, self.percentage(self.phase_one_seconds)),
            ("Reprogramming", self.reprogram_seconds, self.percentage(self.reprogram_seconds)),
            ("Phase Two", self.phase_two_seconds, self.percentage(self.phase_two_seconds)),
        ]


@dataclass
class SsdSortPlan:
    """Plans two-phase sorts over a DRAM+SSD hierarchy.

    Parameters
    ----------
    hierarchy:
        The two-tier memory system.
    arch:
        Merger architecture parameters (record width, frequency).
    phase_one_config:
        The pipelined run-formation configuration; the paper's
        throughput-optimal choice is the 4-deep pipeline of AMT(8, 64).
    phase_two_config:
        The run-merging configuration; the paper's latency-optimal choice
        with the SSD as memory is AMT(8, 256).
    run_bytes:
        Sorted-run size produced by phase one.  §IV-C's pipelined phase
        one produces ``C_DRAM / λ_pipe`` = 16 GB runs at most and the
        paper demonstrates 8 GB runs; Fig. 13's scalability arithmetic
        assumes full-DRAM (64 GB) runs.  Defaults to the paper's
        demonstrated 8 GB; pass 64 GB for the Fig. 13 variant.
    reprogram_seconds:
        FPGA reconfiguration time between phases.
    """

    hierarchy: TwoTierHierarchy = field(default_factory=TwoTierHierarchy)
    arch: MergerArchParams = field(default_factory=MergerArchParams)
    phase_one_config: AmtConfig = AmtConfig(p=8, leaves=64, lambda_pipe=4)
    phase_two_config: AmtConfig = AmtConfig(p=8, leaves=256)
    run_bytes: int | None = None
    reprogram_seconds: float = REPROGRAM_SECONDS

    def __post_init__(self) -> None:
        if self.run_bytes is None:
            # Paper's demonstrated phase-one output: 8 GB sorted runs.
            self.run_bytes = min(
                8 * GB,
                self.hierarchy.fast.capacity_bytes // self.phase_one_config.lambda_pipe,
            )
        if self.run_bytes <= 0:
            raise ConfigurationError(f"run size must be positive, got {self.run_bytes}")
        if self.run_bytes > self.hierarchy.fast.capacity_bytes:
            raise ConfigurationError(
                f"phase-one runs of {self.run_bytes:,} bytes exceed DRAM "
                f"capacity {self.hierarchy.fast.capacity_bytes:,}"
            )

    # ------------------------------------------------------------------
    @property
    def io_bandwidth(self) -> float:
        """The hierarchy's beta_I/O."""
        return self.hierarchy.io_bandwidth

    def phase_one_throughput(self) -> float:
        """Eq. 3 for the phase-one pipeline against this hierarchy.

        Uses the DRAM's peak (spec) bandwidth: each pipeline stage owns
        one full bank port (§IV-C: "each AMT saturates the bandwidth
        capacity of one bank"), and the paper validates the pipeline
        "effectively saturates I/O bandwidth of 8 GB/s" (§VI-E).
        """
        return min(
            self.arch.amt_throughput_bytes(self.phase_one_config.p),
            self.hierarchy.fast.peak_bandwidth / self.phase_one_config.lambda_pipe,
            self.io_bandwidth,
        )

    def phase_two_stages(self, total_bytes: int) -> int:
        """SSD round trips needed to merge all phase-one runs."""
        n_runs = max(1, math.ceil(total_bytes / self.run_bytes))
        return max(1, ceil_log(n_runs, self.phase_two_config.leaves))

    def max_capacity_bytes(self, stages: int = 2) -> int:
        """Largest input sortable with ``stages`` phase-two round trips.

        §IV-C: one round trip merges ``l`` runs (256 x 8 GB = 2 TB);
        "In order to sort up to 256 * 2 TB = 512 TB of data, we only need
        to run one more merge stage."
        """
        if stages < 1:
            raise ConfigurationError(f"stage count must be >= 1, got {stages}")
        return self.run_bytes * self.phase_two_config.leaves**stages

    # ------------------------------------------------------------------
    def plan(self, array: ArrayParams) -> TwoPhaseBreakdown:
        """Time breakdown for sorting ``array`` (Table V)."""
        total_bytes = array.total_bytes
        self.hierarchy.slow.check_fits(total_bytes)
        phase_one_seconds = total_bytes / self.phase_one_throughput()
        stages = self.phase_two_stages(total_bytes)
        # Each phase-two stage is one full SSD round trip at I/O bandwidth
        # (bounded also by the phase-two tree's own throughput).
        phase_two_rate = min(
            self.arch.amt_throughput_bytes(self.phase_two_config.p), self.io_bandwidth
        )
        phase_two_seconds = stages * total_bytes / phase_two_rate
        return TwoPhaseBreakdown(
            total_bytes=total_bytes,
            run_bytes=self.run_bytes,
            phase_one_seconds=phase_one_seconds,
            reprogram_seconds=self.reprogram_seconds,
            phase_two_seconds=phase_two_seconds,
            phase_two_stages=stages,
            phase_one_config=self.phase_one_config,
            phase_two_config=self.phase_two_config,
        )
