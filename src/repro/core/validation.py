"""Model-vs-simulator validation (§VI-B).

The paper validates the performance model against hardware measurements
("All sorting time results are within 10% of those predicted by our
performance model") and the resource model against synthesis reports
("within 5%").  Here the cycle-level simulator plays the hardware's role:
:func:`validate_performance` runs real merge stages through
:func:`repro.hw.tree.simulate_merge` and compares the elapsed cycles with
Eq. 1's prediction; :func:`validate_resources` compares Eq. 8 against the
structural component enumeration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.configuration import AmtConfig
from repro.core.parameters import HardwareParams, MergerArchParams
from repro.core.performance import PerformanceModel
from repro.core.resources import ResourceModel
from repro.errors import ConfigurationError
from repro.hw.tree import simulate_merge
from repro.records.workloads import runs_of_sorted


@dataclass(frozen=True)
class ValidationPoint:
    """One measured-vs-predicted comparison."""

    config: AmtConfig
    n_records: int
    measured: float
    predicted: float

    @property
    def relative_error(self) -> float:
        """|measured - predicted| / measured."""
        if self.measured == 0:
            return float("inf")
        return abs(self.measured - self.predicted) / self.measured


def simulate_sort_cycles(
    config: AmtConfig,
    n_records: int,
    record_bytes: int,
    hardware: HardwareParams,
    frequency_hz: float,
    presort_run: int = 16,
    seed: int = 0,
) -> tuple[int, int]:
    """Run a full multi-stage sort in the cycle simulator.

    Returns ``(total_cycles, stages)``.  The data starts as presorted
    runs of ``presort_run`` records (the presorter is pipelined with
    loading and adds no stage time, §VI-C1) and passes through the tree
    until one run remains, exactly like steps 2-3 of Fig. 2.
    """
    if n_records < 1:
        raise ConfigurationError("need at least one record")
    data = runs_of_sorted(n_records, seed=seed, run_length=presort_run)
    runs = [
        [int(x) for x in data[start : start + presort_run]]
        for start in range(0, n_records, presort_run)
    ]
    read_budget = hardware.beta_dram / frequency_hz
    write_budget = hardware.beta_dram / frequency_hz
    total_cycles = 0
    stages = 0
    while len(runs) > 1 or stages == 0:
        runs, stats = simulate_merge(
            p=config.p,
            leaves=config.leaves,
            runs=runs,
            record_bytes=record_bytes,
            read_bytes_per_cycle=read_budget,
            write_bytes_per_cycle=write_budget,
            batch_bytes=min(hardware.batch_bytes, 1024),
            check_sorted_inputs=False,
        )
        total_cycles += stats.cycles
        stages += 1
    return total_cycles, stages


def validate_performance(
    configs: list[AmtConfig],
    n_records: int,
    hardware: HardwareParams,
    arch: MergerArchParams,
    presort_run: int = 16,
    seed: int = 0,
) -> list[ValidationPoint]:
    """Measured (simulated) vs Eq.-1-predicted sorting time per config."""
    model = PerformanceModel(hardware=hardware, arch=arch, presort_run=presort_run)
    points = []
    for config in configs:
        cycles, _ = simulate_sort_cycles(
            config,
            n_records,
            arch.record_bytes,
            hardware,
            arch.frequency_hz,
            presort_run=presort_run,
            seed=seed,
        )
        measured = cycles / arch.frequency_hz
        stages = model.stage_count(config, n_records)
        rate = min(model.amt_throughput(config), hardware.beta_dram)
        predicted = n_records * arch.record_bytes * stages / rate
        points.append(
            ValidationPoint(
                config=config,
                n_records=n_records,
                measured=measured,
                predicted=predicted,
            )
        )
    return points


def validate_resources(
    configs: list[AmtConfig],
    hardware: HardwareParams,
    arch: MergerArchParams,
) -> list[ValidationPoint]:
    """Structural ("synthesis") vs Eq.-8-predicted LUTs per config."""
    resources = ResourceModel(hardware=hardware, library=arch.library)
    points = []
    for config in configs:
        measured = resources.structural_tree_luts(config)
        predicted = resources.lut_eq8(config.p, config.leaves)
        points.append(
            ValidationPoint(
                config=config, n_records=0, measured=measured, predicted=predicted
            )
        )
    return points


def worst_relative_error(points: list[ValidationPoint]) -> float:
    """Largest deviation across a validation sweep."""
    return max(point.relative_error for point in points)


def geometric_mean_error(points: list[ValidationPoint]) -> float:
    """Geometric mean of (1 + relative error) minus 1."""
    log_sum = sum(math.log1p(p.relative_error) for p in points)
    return math.expm1(log_sum / len(points))
