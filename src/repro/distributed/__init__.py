"""Distributed sorting on Bonsai nodes (§II-B extension).

"Our design can also be used as a building block for a larger
distributed sorting system" — this package models that system: a cluster
of FPGA nodes, each running the single-node Bonsai sorter, connected by
a network over which records are range-partitioned before (or merged
after) the local sorts.  It exists to put Table I's per-node-normalised
distributed rows (Tencent Sort, GPU clusters) on the same footing as a
Bonsai cluster.

* :mod:`repro.distributed.node` — one FPGA server node wrapping the
  scalability model.
* :mod:`repro.distributed.cluster` — the cluster: partition/exchange
  phase over the network plus parallel node-local sorts (analytical).
* :mod:`repro.distributed.exchange` — the executed plan's deterministic
  half: splitter sampling/refinement and the shared-memory all-to-all
  shuttle layout.
* :mod:`repro.distributed.executor` — the measured counterpart: the
  same plan run as real processes over :mod:`repro.parallel`, verified
  bit-exactly against a serial oracle and reported next to the model.
"""

from repro.distributed.node import SortingNode
from repro.distributed.cluster import Cluster, ClusterSortReport
from repro.distributed.exchange import ShuffleLayout, sample_splitters
from repro.distributed.executor import (
    ClusterExecutionReport,
    ClusterExecutor,
    StragglerSpec,
)

__all__ = [
    "Cluster",
    "ClusterExecutionReport",
    "ClusterExecutor",
    "ClusterSortReport",
    "ShuffleLayout",
    "SortingNode",
    "StragglerSpec",
    "sample_splitters",
]
