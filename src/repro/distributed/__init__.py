"""Distributed sorting on Bonsai nodes (§II-B extension).

"Our design can also be used as a building block for a larger
distributed sorting system" — this package models that system: a cluster
of FPGA nodes, each running the single-node Bonsai sorter, connected by
a network over which records are range-partitioned before (or merged
after) the local sorts.  It exists to put Table I's per-node-normalised
distributed rows (Tencent Sort, GPU clusters) on the same footing as a
Bonsai cluster.

* :mod:`repro.distributed.node` — one FPGA server node wrapping the
  scalability model.
* :mod:`repro.distributed.cluster` — the cluster: partition/exchange
  phase over the network plus parallel node-local sorts.
"""

from repro.distributed.node import SortingNode
from repro.distributed.cluster import Cluster, ClusterSortReport

__all__ = ["SortingNode", "Cluster", "ClusterSortReport"]
