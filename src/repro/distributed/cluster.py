"""A cluster of Bonsai nodes sorting one giant dataset.

The classic distributed sort plan (the shape GraySort entries use):

1. **Partition/exchange**: records are range-partitioned by sampled
   splitters and exchanged all-to-all, so node ``i`` ends up holding the
   ``i``-th key range.  With balanced partitions each node sends and
   receives ``N/n x (n-1)/n`` bytes over its NIC; the exchange streams
   concurrently with reading input, so its time is NIC-bound.
2. **Local sort**: every node sorts its range with the single-node
   Bonsai sorter (DRAM or two-phase SSD regime as size dictates).
   The global output is the concatenation of the nodes' sorted ranges.

The figure of merit matches Table I's normalisation: "performance of
distributed sorters multiplied by number of server nodes used", i.e.
``elapsed x nodes / GB``.  That normalisation now has a *measured*
counterpart: :class:`~repro.distributed.executor.ClusterExecutor` runs
this exact plan with real processes and reports the same
``elapsed x nodes / GB`` figure from host wall-clock, next to this
model's prediction at the measured partition skew.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.distributed import ClusterResult
from repro.distributed.node import SortingNode
from repro.errors import ConfigurationError
from repro.units import GB, ms_per_gb


@dataclass(frozen=True)
class ClusterSortReport:
    """Outcome of one modeled cluster sort."""

    total_bytes: int
    nodes: int
    exchange_seconds: float
    local_sort_seconds: float
    skew_factor: float

    @property
    def elapsed_seconds(self) -> float:
        """Makespan: exchange overlaps input streaming; sorts run after."""
        return self.exchange_seconds + self.local_sort_seconds

    @property
    def per_node_ms_per_gb(self) -> float:
        """Table I's normalisation (elapsed x nodes, per GB)."""
        return ms_per_gb(self.elapsed_seconds * self.nodes, self.total_bytes)

    @property
    def aggregate_gb_per_s(self) -> float:
        """Whole-cluster sorted throughput."""
        return self.total_bytes / GB / self.elapsed_seconds

    def as_cluster_result(self, name: str = "bonsai-cluster") -> ClusterResult:
        """Adapter to the published-results comparison type."""
        return ClusterResult(
            name=name,
            total_bytes=self.total_bytes,
            elapsed_seconds=self.elapsed_seconds,
            nodes=self.nodes,
            citation="this reproduction",
        )


@dataclass
class Cluster:
    """``n`` identical Bonsai nodes plus an all-to-all network.

    Parameters
    ----------
    node:
        The node template (hardware + NIC).
    nodes:
        Node count.
    skew_factor:
        Largest partition relative to the balanced share; 1.0 means the
        splitters were perfect.  The makespan follows the slowest node,
        so skew directly stretches both phases.
    """

    node: SortingNode = field(default_factory=SortingNode)
    nodes: int = 16
    skew_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigurationError(f"cluster needs >= 1 node, got {self.nodes}")
        if self.skew_factor < 1.0:
            raise ConfigurationError(
                f"skew factor is a max/mean ratio and must be >= 1, got "
                f"{self.skew_factor}"
            )

    # ------------------------------------------------------------------
    def partition_bytes(self, total_bytes: int) -> int:
        """The slowest node's partition size."""
        if total_bytes <= 0:
            raise ConfigurationError(f"input size must be positive, got {total_bytes}")
        balanced = -(-total_bytes // self.nodes)
        return int(balanced * self.skew_factor)

    def capacity_bytes(self) -> int:
        """Largest dataset the cluster can sort (slowest node limited)."""
        return int(self.node.capacity_bytes() / self.skew_factor) * self.nodes

    def sort_report(self, total_bytes: int) -> ClusterSortReport:
        """Model a full cluster sort of ``total_bytes``."""
        partition = self.partition_bytes(total_bytes)
        if partition > self.node.capacity_bytes():
            raise ConfigurationError(
                f"partition of {partition:,} bytes exceeds a node's "
                f"{self.node.capacity_bytes():,}-byte capacity; add nodes"
            )
        if self.nodes == 1:
            exchange = 0.0
        else:
            # Each node ships all but its own share and receives its range.
            share_out = partition * (self.nodes - 1) / self.nodes
            exchange = self.node.exchange_seconds(share_out, share_out)
        local = self.node.local_sort_seconds(partition)
        return ClusterSortReport(
            total_bytes=total_bytes,
            nodes=self.nodes,
            exchange_seconds=exchange,
            local_sort_seconds=local,
            skew_factor=self.skew_factor,
        )

    # ------------------------------------------------------------------
    def nodes_needed(self, total_bytes: int) -> int:
        """Smallest node count whose capacity covers ``total_bytes``."""
        per_node = int(self.node.capacity_bytes() / self.skew_factor)
        if per_node <= 0:
            raise ConfigurationError("node capacity too small under this skew")
        return max(1, -(-total_bytes // per_node))
