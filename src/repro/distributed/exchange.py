"""Measured range-partition exchange: splitters, owners, shuttle layout.

The executed cluster sort (see :mod:`repro.distributed.executor`) runs
the classic GraySort plan with real processes.  This module holds the
plan's deterministic half — everything except wall-clocks and process
pools:

* **splitter sampling** — an oversampled key sketch, quantile
  boundaries, and a refinement pass that advances duplicate boundaries
  past heavy key mass (a zipf-skewed histogram would otherwise produce
  equal splitters and empty partitions);
* **ownership** — ``searchsorted`` range partitioning: node ``i`` owns
  keys in ``[splitters[i-1], splitters[i])``, so concatenating the
  nodes' sorted partitions is globally sorted by construction;
* **shuttle layout** — the all-to-all bookkeeping over one shared
  uint64 block: each sender's slot holds its records grouped by
  receiver, so every (sender, receiver) shard is one disjoint range of
  the block and a receiver gathers its partition with ``nodes`` range
  copies and zero pickled records.

The shared-memory blocks themselves are owned by the executor (one
function allocates and releases them, per the ``proc-shm-lifetime``
contract); workers attach through :mod:`repro.parallel.shm`
descriptors exactly like the simulate-mode transport.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Default sketch size per node; 32x oversampling keeps the max/mean
#: partition skew near 1.0 on uniform keys and small even under zipf.
DEFAULT_OVERSAMPLE = 32


def sample_splitters(
    data: np.ndarray,
    nodes: int,
    oversample: int = DEFAULT_OVERSAMPLE,
    seed: int = 0,
) -> np.ndarray:
    """``nodes - 1`` key boundaries from a seeded, oversampled sketch.

    Draws ``nodes * oversample`` keys (with replacement), sorts the
    sketch and takes its ``1/nodes`` quantiles.  A boundary that ties
    the previous one — the signature of heavy duplicate mass under
    skew — is refined to the next strictly larger sketch value, so
    every splitter that *can* be distinct is; a key so frequent that it
    spans several quantiles legitimately leaves later partitions empty,
    and the executor's skew measurement reports exactly that.
    """
    if nodes < 1:
        raise ConfigurationError(f"cluster needs >= 1 node, got {nodes}")
    if oversample < 1:
        raise ConfigurationError(f"oversample must be >= 1, got {oversample}")
    data = np.asarray(data)
    if nodes == 1 or data.size == 0:
        return np.empty(0, dtype=np.uint64)
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, data.size, size=nodes * oversample)
    sketch = np.sort(data[picks].astype(np.uint64))
    splitters: list[int] = []
    previous: int | None = None
    for rank in range(1, nodes):
        position = min((rank * sketch.size) // nodes, sketch.size - 1)
        value = int(sketch[position])
        if previous is not None and value <= previous:
            # Refinement: this quantile fell inside the previous
            # boundary's duplicate run; advance to the next distinct
            # sketch value (or stick, conceding an empty partition).
            beyond = sketch[np.searchsorted(sketch, previous, side="right"):]
            value = int(beyond[0]) if beyond.size else previous
        splitters.append(value)
        previous = value
    return np.asarray(splitters, dtype=np.uint64)


def partition_owners(keys: np.ndarray, splitters: np.ndarray) -> np.ndarray:
    """Owning node index per key: node ``i`` holds ``[s[i-1], s[i])``.

    ``side="left"`` on the mirrored comparison would split duplicate
    boundary keys across two nodes; ``side="right"`` keeps every copy
    of a key on one node, so the exchange is stable and the
    concatenated output needs no cross-node merge.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    bounds = np.asarray(splitters, dtype=np.uint64)
    return np.searchsorted(bounds, keys, side="right")


def partition_counts(
    keys: np.ndarray, splitters: np.ndarray, nodes: int
) -> np.ndarray:
    """Records each node would own — the splitter-quality histogram."""
    owners = partition_owners(keys, splitters)
    return np.bincount(owners, minlength=nodes)


def serial_partitions(
    keys: np.ndarray, splitters: np.ndarray, nodes: int
) -> list[np.ndarray]:
    """Oracle exchange: each node's partition, input order preserved.

    The differential reference for the process-pool shuttle — the
    executed exchange must deliver exactly these records to each node
    (possibly permuted across senders, which the local sort erases).
    """
    keys = np.asarray(keys, dtype=np.uint64)
    owners = partition_owners(keys, splitters)
    return [keys[owners == node] for node in range(nodes)]


@dataclass(frozen=True)
class ShuffleLayout:
    """All-to-all bookkeeping: ``counts[sender][receiver]`` records.

    After the exchange phase each sender's shuffle slot holds its chunk
    grouped by receiver (a stable argsort by owner), so the matrix of
    per-receiver counts fully determines where every (sender, receiver)
    shard lives.  Everything here derives from that matrix; it is what
    the executor needs to turn ``nodes`` scatter acknowledgements into
    ``nodes`` gather task descriptions.
    """

    counts: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        nodes = len(self.counts)
        if nodes == 0:
            raise ConfigurationError("shuffle layout needs >= 1 node")
        if any(len(row) != nodes for row in self.counts):
            raise ConfigurationError(
                f"shuffle counts must be square, got rows of "
                f"{[len(row) for row in self.counts]}"
            )

    @property
    def nodes(self) -> int:
        return len(self.counts)

    @property
    def total_records(self) -> int:
        return sum(sum(row) for row in self.counts)

    def shard_range(self, sender: int, receiver: int) -> tuple[int, int]:
        """Element range of the (sender, receiver) shard inside the
        sender's shuffle slot."""
        start = sum(self.counts[sender][:receiver])
        return start, start + self.counts[sender][receiver]

    def gather_ranges(self, receiver: int) -> list[tuple[int, int, int]]:
        """``(sender_slot, start, stop)`` per sender — one receiver's
        shards, in sender order (the stable-exchange contract)."""
        return [
            (sender,) + self.shard_range(sender, receiver)
            for sender in range(self.nodes)
        ]

    def partition_lengths(self) -> list[int]:
        """Records each receiver ends up holding."""
        return [
            sum(row[receiver] for row in self.counts)
            for receiver in range(self.nodes)
        ]

    @property
    def skew(self) -> float:
        """Measured max/mean partition ratio (>= 1.0); the executed
        counterpart of :class:`~repro.distributed.cluster.Cluster`'s
        ``skew_factor`` parameter."""
        total = self.total_records
        if total == 0:
            return 1.0
        return max(1.0, max(self.partition_lengths()) * self.nodes / total)
