# bonsai-lint: disable-file=determinism -- the executor measures host
# wall-clock by design (the Table I figure of merit needs real elapsed
# time); everything it times is seeded, oracle-verified and digested.
"""Execute the cluster sort with real processes and measure it.

:class:`ClusterExecutor` runs the GraySort plan the analytical
:class:`~repro.distributed.cluster.Cluster` only models:

1. **splitters** — a seeded oversampled key sketch yields the range
   boundaries (:func:`~repro.distributed.exchange.sample_splitters`);
2. **exchange** — input chunks pack into one shared uint64 block; one
   worker per sender range-partitions its chunk into a shuffle block
   whose (sender, receiver) shards are disjoint ranges, through
   :meth:`~repro.parallel.plan.ParallelPlan.map`;
3. **local sort** — one worker per receiver gathers its shards,
   concatenates, and sorts through a single-tree
   :class:`~repro.engine.sorter.AmtSorter` into the output block;
4. **merge** — the parent concatenates the nodes' sorted partitions
   (range partitioning makes that globally sorted by construction).

Every run then verifies the output bit-exactly against a serial oracle
``np.sort`` — the verification is outside the timed window, so the
measured figure covers exactly the four phases above.  The report pairs
the measured Table I figure of merit (``elapsed x nodes / GB``) with
the analytical model's prediction at the *measured* partition skew, so
the measured-vs-modeled delta is one number.

Straggler tolerance is the parallel layer's: a killed or stalled node
sort degrades to a serial recompute in the parent
(:meth:`ParallelPlan.map`'s timeout/crash fallback), so the run still
produces bit-exact output; the injected worker marks a shared flag slot
first, which is how ``straggler_recovered`` is reported even with
observability disabled.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.configuration import AmtConfig
from repro.core.parameters import HardwareParams, MergerArchParams
from repro.distributed.cluster import Cluster, ClusterSortReport
from repro.distributed.exchange import (
    DEFAULT_OVERSAMPLE,
    ShuffleLayout,
    sample_splitters,
)
from repro.distributed.node import SortingNode
from repro.errors import ConfigurationError, SimulationError
from repro.obs.runtime import observation
from repro.parallel.plan import ParallelPlan
from repro.parallel.shm import (
    alloc_arrays,
    as_uint64_runs,
    pack_arrays,
    release,
    view_array,
)
from repro.parallel.workers import (
    worker_cluster_node_sort,
    worker_exchange_partition,
)
from repro.units import ms_per_gb

#: Straggler injection modes: ``kill`` SIGKILLs the node's worker
#: process (pool crash -> parent recompute), ``sleep`` stalls it past
#: the plan's per-task timeout (future timeout -> parent recompute).
STRAGGLER_MODES = ("kill", "sleep")


@dataclass(frozen=True)
class StragglerSpec:
    """Deliberate fault injection into one node's local sort."""

    node: int
    mode: str = "sleep"
    seconds: float = 0.5

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigurationError(f"straggler node must be >= 0, got {self.node}")
        if self.mode not in STRAGGLER_MODES:
            raise ConfigurationError(
                f"straggler mode must be one of {STRAGGLER_MODES}, got {self.mode!r}"
            )
        if self.seconds <= 0:
            raise ConfigurationError(
                f"straggler sleep must be positive, got {self.seconds}"
            )


@dataclass(frozen=True)
class ClusterExecutionReport:
    """One executed, verified cluster sort: measured next to modeled."""

    nodes: int
    records: int
    total_bytes: int
    elapsed_seconds: float
    splitter_seconds: float
    exchange_seconds: float
    sort_seconds: float
    merge_seconds: float
    measured_skew: float
    partition_records: tuple[int, ...]
    node_model_seconds: tuple[float, ...]
    node_stages: tuple[int, ...]
    modeled: ClusterSortReport
    straggler_recovered: bool
    digest: str
    data: np.ndarray | None = field(repr=False, compare=False, default=None)

    @property
    def measured_ms_per_gb(self) -> float:
        """The executed Table I figure of merit (elapsed x nodes / GB)."""
        return ms_per_gb(self.elapsed_seconds * self.nodes, self.total_bytes)

    @property
    def modeled_ms_per_gb(self) -> float:
        """The analytical prediction at the measured partition skew."""
        return self.modeled.per_node_ms_per_gb

    @property
    def measured_vs_modeled(self) -> float:
        """Measured over modeled — the reproduction's honesty gap (the
        functional Python engine against modeled FPGA hardware)."""
        return self.measured_ms_per_gb / self.modeled_ms_per_gb


def _default_config() -> AmtConfig:
    return AmtConfig(p=8, leaves=16)


def _default_hardware() -> HardwareParams:
    from repro.core import presets

    return presets.aws_f1_measured().hardware


def _output_digest(values: np.ndarray) -> str:
    """Order-sensitive content digest (same shape as the bench gate's)."""
    return hashlib.sha256(
        np.ascontiguousarray(values, dtype=np.uint64).tobytes()
    ).hexdigest()[:16]


@dataclass
class ClusterExecutor:
    """Run one measured cluster sort; see the module docstring.

    Parameters
    ----------
    nodes:
        Partition count — also the worker task count of both phases.
    config / hardware / arch / presort_run / mode:
        Per-node :class:`AmtSorter` parameters (every node runs the
        same single-tree sorter the serial path would).
    plan:
        ``None`` or a serial plan runs everything in-process (same
        results, no pool); a process plan runs each phase's tasks as
        actual worker processes.  The local-sort phase derives a
        one-task-per-chunk plan so a straggling node recomputes alone.
    oversample / seed:
        Splitter sketch parameters (seeded: same data + seed = same
        splitters at every ``jobs`` setting).
    node_model:
        The analytical node used for the modeled comparison report.
    straggler:
        Optional fault injection into one node's sort.
    task_timeout:
        Per-task seconds for the local-sort phase (required for
        ``sleep``-mode stragglers to actually trip the fallback);
        ``None`` inherits the plan's own timeout.
    """

    nodes: int = 4
    config: AmtConfig = field(default_factory=_default_config)
    hardware: HardwareParams = field(default_factory=_default_hardware)
    arch: MergerArchParams = field(default_factory=MergerArchParams)
    presort_run: int = 16
    mode: str = "model"
    plan: ParallelPlan | None = None
    oversample: int = DEFAULT_OVERSAMPLE
    seed: int = 0
    node_model: SortingNode = field(default_factory=SortingNode)
    straggler: StragglerSpec | None = None
    task_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigurationError(f"cluster needs >= 1 node, got {self.nodes}")
        if self.mode not in ("model", "simulate"):
            raise ConfigurationError(f"unknown mode {self.mode!r}")
        if self.straggler is not None and self.straggler.node >= self.nodes:
            raise ConfigurationError(
                f"straggler node {self.straggler.node} does not exist in a "
                f"{self.nodes}-node cluster"
            )

    # ------------------------------------------------------------------
    def execute(self, data: np.ndarray) -> ClusterExecutionReport:
        """Sort ``data`` across the cluster; verify; measure; report."""
        packed = as_uint64_runs([np.asarray(data)])
        if packed is None:
            raise ConfigurationError(
                "cluster sort ships records through uint64 shared-memory "
                "blocks; keys must be integers in [0, 2**64)"
            )
        keys = packed[0]
        if keys.size == 0:
            raise ConfigurationError("cannot cluster-sort zero records")
        plan = self.plan or ParallelPlan.serial()
        # One node per chunk: a straggler's timeout/crash recomputes
        # only that node, and its per-future timeout is per-node.
        node_plan = dataclasses.replace(
            plan,
            chunk_size=1,
            task_timeout=self.task_timeout or plan.task_timeout,
        )
        obs = observation()
        record_bytes = self.arch.record_bytes
        total_bytes = int(keys.size) * record_bytes
        chunks = np.array_split(keys, self.nodes)
        straggler = (
            None if self.straggler is None
            else (self.straggler.node, self.straggler.mode, self.straggler.seconds)
        )
        out_block = flag_block = None
        started = time.perf_counter()
        with obs.span(
            "cluster.sort", nodes=self.nodes, records=int(keys.size),
            mode=self.mode,
        ) as sort_span:
            with obs.span("cluster.splitters", oversample=self.oversample):
                splitters = sample_splitters(
                    keys, self.nodes, self.oversample, self.seed
                )
            split_done = time.perf_counter()
            in_block, in_desc = pack_arrays(chunks)
            shuffle_block, shuffle_desc = alloc_arrays(
                [int(chunk.size) for chunk in chunks], np.uint64
            )
            try:
                with obs.span("cluster.exchange", nodes=self.nodes):
                    exchange_tasks = [
                        (
                            in_desc, shuffle_desc, sender,
                            tuple(int(s) for s in splitters),
                        )
                        for sender in range(self.nodes)
                    ]
                    count_rows = plan.map(
                        worker_exchange_partition, exchange_tasks
                    )
                layout = ShuffleLayout(
                    counts=tuple(tuple(row) for row in count_rows)
                )
                exchange_done = time.perf_counter()
                out_block, out_desc = alloc_arrays(
                    layout.partition_lengths(), np.uint64
                )
                flag_block, flag_desc = alloc_arrays([1], np.uint8)
                # A fresh block is zero-filled on Linux, but the
                # recovered-straggler flag must not rest on that.
                view_array(flag_desc, 0, flag_block)[:] = 0
                with obs.span("cluster.local_sort", nodes=self.nodes):
                    sort_tasks = [
                        (
                            shuffle_desc, out_desc, flag_desc, receiver,
                            tuple(layout.gather_ranges(receiver)),
                            self.config, self.hardware, self.arch,
                            self.presort_run, self.mode, straggler,
                        )
                        for receiver in range(self.nodes)
                    ]
                    node_results = node_plan.map(
                        worker_cluster_node_sort, sort_tasks
                    )
                sorts_done = time.perf_counter()
                with obs.span("cluster.merge", nodes=self.nodes):
                    partitions = [
                        view_array(out_desc, receiver, out_block).copy()
                        for receiver in range(self.nodes)
                    ]
                    output = np.concatenate(partitions)
                merge_done = time.perf_counter()
                recovered = bool(view_array(flag_desc, 0, flag_block)[0])
            finally:
                release(in_block)
                release(shuffle_block)
                if out_block is not None:
                    release(out_block)
                if flag_block is not None:
                    release(flag_block)
            # Verification sits outside the timed window (the oracle
            # sort would otherwise dominate the measured figure) but
            # inside the dispatch span: a divergent run never reports.
            oracle = np.sort(keys, kind="stable")
            if output.size != oracle.size or not np.array_equal(output, oracle):
                raise SimulationError(
                    f"executed cluster sort diverged from the serial oracle "
                    f"({int(output.size)} records out vs {int(oracle.size)} in)"
                )
            digest = _output_digest(output)
            sort_span.set(
                skew=round(layout.skew, 4),
                straggler_recovered=recovered,
                digest=digest,
            )
        elapsed = merge_done - started
        by_node = {node: (seconds, stages) for node, seconds, stages in node_results}
        modeled = Cluster(
            node=self.node_model, nodes=self.nodes, skew_factor=layout.skew
        ).sort_report(total_bytes)
        obs.count("cluster.sorts", nodes=self.nodes)
        return ClusterExecutionReport(
            nodes=self.nodes,
            records=int(keys.size),
            total_bytes=total_bytes,
            elapsed_seconds=elapsed,
            splitter_seconds=split_done - started,
            exchange_seconds=exchange_done - split_done,
            sort_seconds=sorts_done - exchange_done,
            merge_seconds=merge_done - sorts_done,
            measured_skew=layout.skew,
            partition_records=tuple(layout.partition_lengths()),
            node_model_seconds=tuple(
                by_node[node][0] for node in range(self.nodes)
            ),
            node_stages=tuple(by_node[node][1] for node in range(self.nodes)),
            modeled=modeled,
            straggler_recovered=recovered,
            digest=digest,
            data=output,
        )
