"""A single FPGA sorting node.

Wraps the single-node scalability model (DRAM regime below 64 GB, the
two-phase SSD sorter above) together with the node's external network
interface, which bounds how fast the node can take part in a cluster
exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.scalability import ScalabilityModel
from repro.errors import ConfigurationError
from repro.units import GB


@dataclass
class SortingNode:
    """One Bonsai server node in a cluster.

    Parameters
    ----------
    sorter:
        The node-local sorting model (defaults to the paper's F1 node).
    network_bandwidth:
        The node's NIC rate in bytes/s (duplex).  100 GbE = 12.5 GB/s is
        typical of the sort-benchmark clusters Table I normalises.
    """

    sorter: ScalabilityModel = field(default_factory=ScalabilityModel)
    network_bandwidth: float = 12.5 * GB

    def __post_init__(self) -> None:
        if self.network_bandwidth <= 0:
            raise ConfigurationError(
                f"network bandwidth must be positive, got {self.network_bandwidth}"
            )

    def local_sort_seconds(self, n_bytes: int) -> float:
        """Time to sort a node-local partition."""
        if n_bytes <= 0:
            raise ConfigurationError(f"partition size must be positive, got {n_bytes}")
        return self.sorter.point(n_bytes).seconds

    def exchange_seconds(self, bytes_out: float, bytes_in: float) -> float:
        """Time to send/receive an all-to-all exchange share (duplex NIC)."""
        if bytes_out < 0 or bytes_in < 0:
            raise ConfigurationError("exchange volumes must be non-negative")
        return max(bytes_out, bytes_in) / self.network_bandwidth

    def capacity_bytes(self) -> int:
        """Largest partition the node can sort locally."""
        return self.sorter.hierarchy.slow.capacity_bytes
