"""Sort execution engine.

Executes the merge-sort procedure of Fig. 2 end to end:

* :mod:`repro.engine.stage` — one merge stage, functionally (vectorised
  numpy k-way merge) or cycle-simulated (via :mod:`repro.hw`).
* :mod:`repro.engine.sorter` — the recursive-stage DRAM sorter (§IV-A).
* :mod:`repro.engine.unrolled` — unrolled execution: range-partitioned
  (§III-A2) and address-range with AMT idling (§IV-B).
* :mod:`repro.engine.pipelined` — pipelined execution (§III-A3).
* :mod:`repro.engine.ssd_sorter` — the two-phase SSD sorter (§IV-C).
* :mod:`repro.engine.results` — result records with timing and traffic.
"""

from repro.engine.results import SortOutcome
from repro.engine.stage import merge_runs_numpy, merge_stage, merge_two_sorted
from repro.engine.sorter import AmtSorter
from repro.engine.unrolled import UnrolledSorter
from repro.engine.pipelined import PipelinedSorter
from repro.engine.ssd_sorter import SsdSorter

__all__ = [
    "SortOutcome",
    "merge_runs_numpy",
    "merge_stage",
    "merge_two_sorted",
    "AmtSorter",
    "UnrolledSorter",
    "PipelinedSorter",
    "SsdSorter",
]
