"""Key/value sorting: payloads follow their keys through the merge.

The AMT moves whole records — key and value together (§II: "any key and
value width up to 512 bits").  The functional engine models that by
carrying a payload array through the same merge dataflow as the keys,
using permutation-producing merges.  Merges are stable: records with
equal keys keep their input order (the hardware merger's port-A
preference gives the same guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.configuration import AmtConfig
from repro.core.parameters import HardwareParams, MergerArchParams
from repro.engine.results import SortOutcome
from repro.engine.sorter import AmtSorter
from repro.errors import ConfigurationError


def merge_two_sorted_with_perm(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stable two-way merge returning output positions for both inputs.

    Returns ``(merged_keys, left_positions, right_positions)`` where
    ``merged[left_positions[i]] == left_keys[i]`` (ties keep left first).
    """
    left_keys = np.asarray(left_keys)
    right_keys = np.asarray(right_keys)
    merged = np.empty(
        left_keys.size + right_keys.size, dtype=np.result_type(left_keys, right_keys)
    )
    left_positions = np.arange(left_keys.size) + np.searchsorted(
        right_keys, left_keys, side="left"
    )
    right_positions = np.arange(right_keys.size) + np.searchsorted(
        left_keys, right_keys, side="right"
    )
    merged[left_positions] = left_keys
    merged[right_positions] = right_keys
    return merged, left_positions, right_positions


@dataclass
class _Run:
    """A sorted run with its payload riding along."""

    keys: np.ndarray
    payload: np.ndarray


def _merge_runs(left: _Run, right: _Run) -> _Run:
    merged_keys, left_pos, right_pos = merge_two_sorted_with_perm(
        left.keys, right.keys
    )
    payload = np.empty(
        left.payload.size + right.payload.size, dtype=left.payload.dtype
    )
    payload[left_pos] = left.payload
    payload[right_pos] = right.payload
    return _Run(keys=merged_keys, payload=payload)


@dataclass
class KeyValueSorter:
    """Sorts (key, payload) record streams through the merge dataflow.

    Timing is delegated to a plain :class:`AmtSorter` over the keys (the
    record width used for bandwidth is the *full* record width, passed
    via ``arch``); the payload movement itself is the same bytes the
    timing already accounts for.
    """

    config: AmtConfig
    hardware: HardwareParams
    arch: MergerArchParams = field(default_factory=lambda: MergerArchParams(record_bytes=16))
    presort_run: int = 16

    def __post_init__(self) -> None:
        self._timing_sorter = AmtSorter(
            config=self.config,
            hardware=self.hardware,
            arch=self.arch,
            presort_run=self.presort_run,
        )

    def sort(self, keys: np.ndarray, payload: np.ndarray) -> tuple[SortOutcome, np.ndarray]:
        """Sort records by key; returns the key outcome plus the payload
        permuted identically (stable)."""
        keys = np.asarray(keys)
        payload = np.asarray(payload)
        if keys.shape != payload.shape:
            raise ConfigurationError(
                f"keys and payload must align: {keys.shape} vs {payload.shape}"
            )
        if keys.size == 0:
            outcome = self._timing_sorter.sort(keys)
            return outcome, payload.copy()

        # Split into presorted runs (stable within each run).
        runs: list[_Run] = []
        for start in range(0, keys.size, self.presort_run):
            chunk_keys = keys[start : start + self.presort_run]
            chunk_payload = payload[start : start + self.presort_run]
            order = np.argsort(chunk_keys, kind="stable")
            runs.append(
                _Run(keys=chunk_keys[order].copy(), payload=chunk_payload[order].copy())
            )
        # Merge stages with the configured fan-in.
        while len(runs) > 1:
            merged: list[_Run] = []
            for start in range(0, len(runs), self.config.leaves):
                group = runs[start : start + self.config.leaves]
                while len(group) > 1:
                    next_group = []
                    for index in range(0, len(group) - 1, 2):
                        next_group.append(_merge_runs(group[index], group[index + 1]))
                    if len(group) % 2:
                        next_group.append(group[-1])
                    group = next_group
                merged.append(group[0])
            runs = merged

        outcome = self._timing_sorter.sort(keys)  # modeled timing + stages
        result = runs[0]
        if not np.array_equal(outcome.data, result.keys):
            raise ConfigurationError(
                "payload path diverged from key path; this is a bug"
            )
        final = SortOutcome(
            data=result.keys,
            seconds=outcome.seconds,
            stages=outcome.stages,
            record_bytes=self.arch.record_bytes,
            mode="model",
            traffic=outcome.traffic,
            detail={"payload_bytes": int(payload.dtype.itemsize)},
        )
        return final, result.payload
