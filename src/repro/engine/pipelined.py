"""Pipelined execution: one AMT per merge stage (§III-A3, Fig. 4).

"We can pipeline multiple AMTs in such a way that each merge stage of
the sorting procedure is executed on a different AMT. [...] the
pipelined approach ensures a constant throughput of sorted data to the
I/O bus."

Functionally, a λ_pipe pipeline over one array is just λ_pipe merge
stages; the value of pipelining is *throughput across a queue of
arrays*: while array ``i`` is in stage 2, array ``i+1`` occupies stage 1.
:meth:`PipelinedSorter.sort_batch` models that steady state: the batch
finishes after ``fill + (n - 1)`` array-intervals at the Eq. 3 rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.configuration import AmtConfig
from repro.core.parameters import HardwareParams, MergerArchParams
from repro.core.performance import PerformanceModel
from repro.engine.results import SortOutcome
from repro.engine.stage import merge_stage, split_into_runs
from repro.errors import ConfigurationError
from repro.memory.traffic import TrafficMeter


@dataclass
class PipelinedSorter:
    """λ_pipe chained AMTs fed from the I/O bus."""

    config: AmtConfig
    hardware: HardwareParams
    arch: MergerArchParams = field(default_factory=MergerArchParams)
    presort_run: int = 256

    def __post_init__(self) -> None:
        if self.config.lambda_pipe < 2:
            raise ConfigurationError(
                "PipelinedSorter needs lambda_pipe >= 2; use AmtSorter for "
                "a single tree"
            )
        if self.config.lambda_unroll != 1:
            raise ConfigurationError(
                "unrolled pipelines: replicate PipelinedSorter per partition"
            )
        self.model = PerformanceModel(
            hardware=self.hardware, arch=self.arch, presort_run=self.presort_run
        )

    # ------------------------------------------------------------------
    def capacity_records(self) -> float:
        """Eq. 5: the largest array this pipeline can sort."""
        return self.model.pipeline_capacity_records(self.config)

    def check_capacity(self, n_records: int) -> None:
        """Raise when an array exceeds the Eq. 5 pipeline capacity."""
        capacity = self.capacity_records()
        if n_records > capacity:
            raise ConfigurationError(
                f"{n_records:,} records exceed the Eq. 5 pipeline capacity "
                f"of {capacity:,.0f} (lambda_pipe={self.config.lambda_pipe}, "
                f"leaves={self.config.leaves}, presort={self.presort_run})"
            )

    @property
    def throughput_bytes(self) -> float:
        """Eq. 3 steady-state rate."""
        return self.model.pipeline_throughput(self.config)

    # ------------------------------------------------------------------
    def sort(self, data: np.ndarray) -> SortOutcome:
        """Sort one array: λ_pipe stages, Eq. 4 latency."""
        data = np.asarray(data)
        if data.size == 0:
            return SortOutcome(
                data=data.copy(), seconds=0.0, stages=0,
                record_bytes=self.arch.record_bytes, mode="model",
            )
        self.check_capacity(data.size)
        runs = split_into_runs(data, self.presort_run)
        stages_run = 0
        for _ in range(self.config.lambda_pipe):
            # Every array passes through all λ stages (data cannot move
            # backwards in the pipeline); stages beyond the first single
            # run are pass-throughs.
            if len(runs) > 1:
                runs = merge_stage(runs, self.config.leaves)
            stages_run += 1
        if len(runs) > 1:
            raise ConfigurationError(
                "pipeline too shallow despite capacity check; this is a bug"
            )
        total_bytes = data.size * self.arch.record_bytes
        seconds = total_bytes * self.config.lambda_pipe / self.throughput_bytes
        traffic = TrafficMeter()
        for _ in range(self.config.lambda_pipe):
            traffic.record_read("dram", total_bytes)
            traffic.record_write("dram", total_bytes)
        return SortOutcome(
            data=runs[0],
            seconds=seconds,
            stages=stages_run,
            record_bytes=self.arch.record_bytes,
            mode="model",
            traffic=traffic,
            detail={"lambda_pipe": self.config.lambda_pipe},
        )

    def simulate_batch(
        self, arrays: list[np.ndarray]
    ) -> tuple[list[np.ndarray], float]:
        """Cycle-accurate queue sort via :mod:`repro.hw.pipeline`.

        Drives the arrays through λ_pipe chained cycle-level stages
        (per-bank budgets) and returns the sorted arrays plus the
        simulated makespan in seconds.  Laptop-scale arrays only; the
        Eq. 5 depth bound applies per array.
        """
        from repro.hw.pipeline import PipelineSimulation

        if not arrays:
            return [], 0.0
        simulation = PipelineSimulation(
            p=self.config.p,
            leaves=self.config.leaves,
            lambda_pipe=self.config.lambda_pipe,
            record_bytes=self.arch.record_bytes,
            presort_run=min(self.presort_run, 64),
            bank_bytes_per_cycle=(
                self.hardware.beta_dram
                / self.config.lambda_pipe
                / self.arch.frequency_hz
            ),
            batch_bytes=min(self.hardware.batch_bytes, 1024),
        )
        cycles = simulation.run([[int(x) for x in array] for array in arrays])
        outputs = [
            np.asarray(simulation.outputs[index], dtype=np.asarray(arrays[index]).dtype)
            for index in range(len(arrays))
        ]
        return outputs, cycles / self.arch.frequency_hz

    def sort_batch(self, arrays: list[np.ndarray]) -> tuple[list[np.ndarray], float]:
        """Sort a queue of arrays at pipeline steady state.

        Returns the sorted arrays and the modeled makespan: the first
        array pays the full Eq. 4 fill latency; each subsequent array
        adds one array-interval at the Eq. 3 rate (the I/O bus never
        idles, §III-A3).
        """
        if not arrays:
            return [], 0.0
        sorted_arrays = [self.sort(array) for array in arrays]
        fill = sorted_arrays[0].seconds
        steady = sum(
            outcome.total_bytes / self.throughput_bytes
            for outcome in sorted_arrays[1:]
        )
        return [outcome.data for outcome in sorted_arrays], fill + steady
