"""Result records produced by the execution engine."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.memory.traffic import TrafficMeter
from repro.units import gb_per_s, ms_per_gb


@dataclass
class SortOutcome:
    """A completed sort: the data plus how long the model says it took.

    Attributes
    ----------
    data:
        The sorted keys.
    seconds:
        Modeled (or cycle-simulated) wall-clock time.
    stages:
        Merge stages executed (including unrolled/pipelined structure).
    mode:
        ``"model"`` (functional data path + analytic timing) or
        ``"simulate"`` (cycle-level simulation timing).
    traffic:
        Byte traffic per device.
    detail:
        Free-form per-phase or per-stage annotations.
    """

    data: np.ndarray
    seconds: float
    stages: int
    record_bytes: int
    mode: str = "model"
    traffic: TrafficMeter = field(default_factory=TrafficMeter)
    detail: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ConfigurationError(f"negative sort time {self.seconds}")
        if self.stages < 0:
            raise ConfigurationError(f"negative stage count {self.stages}")

    @property
    def n_records(self) -> int:
        """Number of sorted records."""
        return int(len(self.data))

    @property
    def total_bytes(self) -> int:
        """Sorted array footprint in bytes."""
        return self.n_records * self.record_bytes

    @property
    def throughput_gb_per_s(self) -> float:
        """Sorted GB per second."""
        return gb_per_s(self.total_bytes, self.seconds) if self.seconds else float("inf")

    @property
    def latency_ms_per_gb(self) -> float:
        """Table I's figure of merit."""
        return ms_per_gb(self.seconds, self.total_bytes)

    def is_sorted(self) -> bool:
        """Verification helper used by tests and examples."""
        if self.n_records < 2:
            return True
        values = np.asarray(self.data)
        return bool(np.all(values[:-1] <= values[1:]))
