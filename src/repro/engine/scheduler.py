"""Adaptive reconfiguration scheduling.

The paper's core pitch is adaptivity: "FPGA programmability allows us to
leverage Bonsai to quickly implement the optimal merge tree configuration
for any problem size and memory hierarchy" (§I), with reconfiguration
measured at 4.3 s (§VI-E) and cited at hundreds of milliseconds for
partial reconfiguration [38].  The SSD sorter already exploits one
reconfiguration; this module generalises the decision: given a queue of
sorting jobs of different sizes, when is it worth reprogramming the FPGA
to each job's optimal configuration, and when should the current
bitstream be reused?

The policy is the natural one: keep the loaded configuration while the
predicted saving of the per-job optimum does not cover the reprogramming
cost; reprogram when it does.  :class:`AdaptiveScheduler.plan` returns
the full schedule with per-job decisions so the examples and tests can
audit it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configuration import AmtConfig
from repro.core.optimizer import Bonsai
from repro.core.parameters import ArrayParams
from repro.errors import ConfigurationError

#: Full-bitstream reprogramming time the paper measured (§VI-E).
DEFAULT_REPROGRAM_SECONDS = 4.3


@dataclass(frozen=True)
class ScheduledJob:
    """One job's outcome in a schedule."""

    array: ArrayParams
    config: AmtConfig
    reprogrammed: bool
    sort_seconds: float
    reprogram_seconds: float

    @property
    def total_seconds(self) -> float:
        """Sort time plus any reprogramming charged to this job."""
        return self.sort_seconds + self.reprogram_seconds


@dataclass(frozen=True)
class Schedule:
    """A full job sequence with its makespan."""

    jobs: tuple[ScheduledJob, ...]

    @property
    def total_seconds(self) -> float:
        """Makespan of the whole queue."""
        return sum(job.total_seconds for job in self.jobs)

    @property
    def reprogram_count(self) -> int:
        """How many jobs triggered a configuration swap."""
        return sum(1 for job in self.jobs if job.reprogrammed)

    @property
    def reprogram_overhead(self) -> float:
        """Total seconds spent reprogramming across the queue."""
        return sum(job.reprogram_seconds for job in self.jobs)


@dataclass
class AdaptiveScheduler:
    """Greedy keep-or-reprogram scheduling over a job queue.

    Parameters
    ----------
    bonsai:
        The optimizer used both to pick per-job optima and to evaluate
        any configuration's latency on any job.
    reprogram_seconds:
        Cost of swapping configurations.
    initial_config:
        The bitstream loaded before the first job (None = blank FPGA,
        which must program something for the first job at full cost).
    """

    bonsai: Bonsai
    reprogram_seconds: float = DEFAULT_REPROGRAM_SECONDS
    initial_config: AmtConfig | None = None

    def __post_init__(self) -> None:
        if self.reprogram_seconds < 0:
            raise ConfigurationError(
                f"reprogram cost must be >= 0, got {self.reprogram_seconds}"
            )

    # ------------------------------------------------------------------
    def latency_with(self, config: AmtConfig, array: ArrayParams) -> float:
        """Predicted latency of sorting ``array`` with a given config."""
        self.bonsai.resources.check(config)
        return self.bonsai.performance.latency_unrolled(config, array)

    def plan(self, arrays: list[ArrayParams]) -> Schedule:
        """Schedule a job queue with greedy keep-or-reprogram decisions."""
        jobs: list[ScheduledJob] = []
        loaded = self.initial_config
        for array in arrays:
            best = self.bonsai.latency_optimal(array)
            if loaded is None:
                # Blank FPGA: programming is mandatory, so load the optimum.
                jobs.append(
                    ScheduledJob(
                        array=array,
                        config=best.config,
                        reprogrammed=True,
                        sort_seconds=best.latency_seconds,
                        reprogram_seconds=self.reprogram_seconds,
                    )
                )
                loaded = best.config
                continue
            keep_seconds = self.latency_with(loaded, array)
            switch_seconds = best.latency_seconds + self.reprogram_seconds
            if switch_seconds < keep_seconds:
                jobs.append(
                    ScheduledJob(
                        array=array,
                        config=best.config,
                        reprogrammed=True,
                        sort_seconds=best.latency_seconds,
                        reprogram_seconds=self.reprogram_seconds,
                    )
                )
                loaded = best.config
            else:
                jobs.append(
                    ScheduledJob(
                        array=array,
                        config=loaded,
                        reprogrammed=False,
                        sort_seconds=keep_seconds,
                        reprogram_seconds=0.0,
                    )
                )
        return Schedule(jobs=tuple(jobs))

    # ------------------------------------------------------------------
    def static_plan(self, arrays: list[ArrayParams]) -> Schedule:
        """The no-adaptivity baseline: one configuration for the queue.

        Picks the single feasible configuration minimising the queue's
        total time (what a fixed ASIC-like deployment would do), charged
        one initial programming.
        """
        if not arrays:
            return Schedule(jobs=())
        candidates = {}
        for array in arrays:
            for entry in self.bonsai.rank_by_latency(array, top=5):
                candidates[entry.config] = None
        best_config = None
        best_total = float("inf")
        for config in candidates:
            total = sum(self.latency_with(config, array) for array in arrays)
            if total < best_total:
                best_total = total
                best_config = config
        jobs = []
        for index, array in enumerate(arrays):
            jobs.append(
                ScheduledJob(
                    array=array,
                    config=best_config,
                    reprogrammed=index == 0,
                    sort_seconds=self.latency_with(best_config, array),
                    reprogram_seconds=self.reprogram_seconds if index == 0 else 0.0,
                )
            )
        return Schedule(jobs=tuple(jobs))
