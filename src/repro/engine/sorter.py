"""The recursive-stage AMT sorter (Fig. 2, §IV-A).

Runs merge stages until the input is one sorted run.  Two execution
modes:

* ``"model"`` — the data moves through the vectorised functional merge;
  each stage's time comes from the performance model (``N r / min(p f r,
  beta)``).  Scales to millions of records.
* ``"simulate"`` — every stage runs in the cycle-level simulator,
  including loader batching, FIFO stalls and terminal flushing; the
  stage time is the simulated cycle count over the clock frequency.
  Intended for <= a few hundred thousand records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.configuration import AmtConfig
from repro.core.parameters import HardwareParams, MergerArchParams
from repro.engine.results import SortOutcome
from repro.engine.stage import merge_stage, split_into_runs
from repro.errors import ConfigurationError
from repro.hw.tree import simulate_merge
from repro.memory.traffic import TrafficMeter
from repro.obs.runtime import observation
from repro.parallel.plan import ParallelPlan


@dataclass
class AmtSorter:
    """Single-AMT merge sorter.

    Parameters
    ----------
    config:
        The AMT shape (``lambda`` fields must be 1; use
        :class:`~repro.engine.unrolled.UnrolledSorter` or
        :class:`~repro.engine.pipelined.PipelinedSorter` otherwise).
    hardware / arch:
        Table II parameters for timing.
    presort_run:
        Bitonic presorter run length (1 disables; §VI-C uses 16).
    mode:
        ``"model"`` or ``"simulate"``.
    parallel:
        Optional :class:`~repro.parallel.plan.ParallelPlan` sharding
        each stage's independent merge groups across a worker pool.
        Model-mode results are bit-identical with or without a plan;
        simulate mode switches to the per-group cycle decomposition
        (identical for every plan, see ``docs/performance.md``).
    """

    config: AmtConfig
    hardware: HardwareParams
    arch: MergerArchParams = field(default_factory=MergerArchParams)
    presort_run: int = 16
    mode: str = "model"
    parallel: ParallelPlan | None = None

    def __post_init__(self) -> None:
        if self.config.lambda_unroll != 1 or self.config.lambda_pipe != 1:
            raise ConfigurationError(
                "AmtSorter runs a single tree; use UnrolledSorter or "
                "PipelinedSorter for lambda > 1 configurations"
            )
        if self.mode not in ("model", "simulate"):
            raise ConfigurationError(f"unknown mode {self.mode!r}")
        if self.presort_run < 1:
            raise ConfigurationError("presort run length must be >= 1")

    # ------------------------------------------------------------------
    @property
    def stage_rate(self) -> float:
        """Streamed stage throughput: ``min(p f r, beta_DRAM)`` bytes/s."""
        return min(
            self.arch.amt_throughput_bytes(self.config.p), self.hardware.beta_dram
        )

    def sort(self, data: np.ndarray, input_presorted: bool = False) -> SortOutcome:
        """Sort an array of keys; returns data plus timing and traffic.

        ``input_presorted=True`` treats the input as already split into
        sorted runs of ``presort_run`` records (skips the presorter).
        """
        data = np.asarray(data)
        if data.size == 0:
            return SortOutcome(
                data=data.copy(), seconds=0.0, stages=0,
                record_bytes=self.arch.record_bytes, mode=self.mode,
            )
        obs = observation()
        record_bytes = self.arch.record_bytes
        with obs.span(
            "sorter.sort", mode=self.mode, records=int(data.size)
        ) as sort_span:
            runs = split_into_runs(
                data, self.presort_run, presorted=input_presorted
            )
            traffic = TrafficMeter()
            seconds = 0.0
            stages = 0
            while len(runs) > 1 or stages == 0:
                with obs.span(
                    "sorter.stage", stage=stages, runs=len(runs)
                ) as stage_span:
                    if self.mode == "simulate":
                        runs, stage_seconds = self._run_stage_simulated(runs)
                        stage_span.set(
                            cycles=round(stage_seconds * self.arch.frequency_hz)
                        )
                    else:
                        runs = self._run_stage_model(runs)
                        stage_seconds = (
                            data.size * record_bytes / self.stage_rate
                        )
                stages += 1
                seconds += stage_seconds
                traffic.record_read("dram", data.size * record_bytes)
                traffic.record_write("dram", data.size * record_bytes)
                obs.count("engine.stage_records", int(data.size), mode=self.mode)
                obs.count("engine.bytes_read", int(data.size) * record_bytes)
                obs.count("engine.bytes_written", int(data.size) * record_bytes)
            obs.count("engine.stages", stages, mode=self.mode)
            obs.count("engine.sorts")
            sort_span.set(stages=stages, model_seconds=seconds)
        return SortOutcome(
            data=runs[0],
            seconds=seconds,
            stages=stages,
            record_bytes=record_bytes,
            mode=self.mode,
            traffic=traffic,
            detail={"config": self.config, "presort_run": self.presort_run},
        )

    # ------------------------------------------------------------------
    def _run_stage_model(self, runs: list[np.ndarray]) -> list[np.ndarray]:
        """One functional merge stage, sharded when a plan is attached."""
        if self.parallel is None:
            return merge_stage(runs, self.config.leaves)
        from repro.parallel.api import merge_stage_sharded

        return merge_stage_sharded(runs, self.config.leaves, self.parallel)

    def _run_stage_simulated(
        self, runs: list[np.ndarray]
    ) -> tuple[list[np.ndarray], float]:
        """One stage through the cycle simulator."""
        frequency = self.arch.frequency_hz
        budget = self.hardware.beta_dram / frequency
        dtype = runs[0].dtype if runs else np.uint64
        if self.parallel is not None:
            from repro.parallel.api import simulate_stage_sharded

            out_runs, cycles = simulate_stage_sharded(
                runs,
                p=self.config.p,
                leaves=self.config.leaves,
                record_bytes=self.arch.record_bytes,
                read_bytes_per_cycle=budget,
                write_bytes_per_cycle=budget,
                batch_bytes=min(self.hardware.batch_bytes, 1024),
                plan=self.parallel,
            )
            return (
                [np.asarray(run, dtype=dtype) for run in out_runs],
                cycles / frequency,
            )
        int_runs = [[int(x) for x in run] for run in runs]
        out_runs, stats = simulate_merge(
            p=self.config.p,
            leaves=self.config.leaves,
            runs=int_runs,
            record_bytes=self.arch.record_bytes,
            read_bytes_per_cycle=budget,
            write_bytes_per_cycle=budget,
            batch_bytes=min(self.hardware.batch_bytes, 1024),
            check_sorted_inputs=False,
        )
        return (
            [np.asarray(run, dtype=dtype) for run in out_runs],
            stats.cycles / frequency,
        )
