"""The two-phase SSD sorter (§IV-C, Fig. 6).

Phase one forms DRAM-scale sorted runs through the throughput-optimal
pipeline; the FPGA is reprogrammed; phase two merges the runs through the
latency-optimal wide tree in as few SSD round trips as possible.

The engine executes the data path functionally (chunk sorts + wide
merges) and takes timing from :class:`~repro.core.ssd_planner.SsdSortPlan`
so the Table V breakdown and the examples share one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.parameters import ArrayParams
from repro.core.ssd_planner import SsdSortPlan
from repro.engine.results import SortOutcome
from repro.engine.stage import merge_stage
from repro.errors import ConfigurationError
from repro.memory.traffic import TrafficMeter
from repro.obs.runtime import observation
from repro.records.record import RecordFormat, U32


@dataclass
class SsdSorter:
    """Sorts arrays larger than DRAM via the two-phase procedure.

    Parameters
    ----------
    plan:
        The two-phase plan (configurations, run size, hierarchy).
    scale_run_records:
        The engine runs the *data path* at laptop scale: the run size is
        mapped to ``scale_run_records`` records so a few-million-record
        array exercises the same phase structure (stage counts, run
        counts) the plan computes for terabytes.  Timing always comes
        from the plan at its true scale.
    """

    plan: SsdSortPlan = field(default_factory=SsdSortPlan)
    fmt: RecordFormat = U32
    scale_run_records: int = 4096

    def __post_init__(self) -> None:
        if self.scale_run_records < 2:
            raise ConfigurationError("scaled run size must be >= 2 records")

    # ------------------------------------------------------------------
    def sort(self, data: np.ndarray) -> SortOutcome:
        """Functionally sort ``data`` with the two-phase structure.

        ``data`` stands in for an SSD-resident array; run boundaries
        follow ``scale_run_records``.  The returned timing is the plan's
        model for an array with the same *run count* at true scale.
        """
        data = np.asarray(data)
        if data.size == 0:
            return SortOutcome(
                data=data.copy(), seconds=0.0, stages=0,
                record_bytes=self.fmt.width_bytes, mode="model",
            )
        arch = self.plan.arch
        traffic = TrafficMeter()
        total_bytes = data.size * self.fmt.width_bytes
        obs = observation()

        # --- phase one: form sorted runs (pipelined, I/O saturating) ---
        with obs.span("ssd.phase_one", records=int(data.size)):
            runs = []
            for start in range(0, data.size, self.scale_run_records):
                chunk = data[start : start + self.scale_run_records].copy()
                chunk.sort(kind="stable")
                runs.append(chunk)
            traffic.record_read("ssd", total_bytes)
            traffic.record_write("ssd", total_bytes)
            obs.count("engine.ssd_runs_formed", len(runs))
            obs.count("engine.bytes_read", total_bytes, device="ssd")
            obs.count("engine.bytes_written", total_bytes, device="ssd")

        # --- phase two: wide merges, one SSD round trip per stage ------
        leaves = self.plan.phase_two_config.leaves
        phase_two_stages = 0
        while len(runs) > 1:
            with obs.span(
                "ssd.phase_two", stage=phase_two_stages, runs=len(runs)
            ):
                runs = merge_stage(runs, leaves)
            phase_two_stages += 1
            traffic.record_read("ssd", total_bytes)
            traffic.record_write("ssd", total_bytes)
            obs.count("engine.stage_records", int(data.size), mode="ssd")
            obs.count("engine.bytes_read", total_bytes, device="ssd")
            obs.count("engine.bytes_written", total_bytes, device="ssd")

        # --- timing at true scale --------------------------------------
        n_runs = max(1, -(-data.size // self.scale_run_records))
        true_bytes = self.plan.run_bytes * n_runs
        breakdown = self.plan.plan(ArrayParams.from_bytes(true_bytes, self.fmt))
        return SortOutcome(
            data=runs[0],
            seconds=breakdown.total_seconds,
            stages=phase_two_stages + 1,
            record_bytes=self.fmt.width_bytes,
            mode="model",
            traffic=traffic,
            detail={
                "breakdown": breakdown,
                "scaled_runs": max(1, -(-data.size // self.scale_run_records)),
                "true_bytes_modeled": true_bytes,
                "phase_two_stages_executed": phase_two_stages,
            },
        )

    # ------------------------------------------------------------------
    def modeled_breakdown(self, total_bytes: int):
        """Table V breakdown for a true-scale array size."""
        return self.plan.plan(ArrayParams.from_bytes(total_bytes, self.fmt))
