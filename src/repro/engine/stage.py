"""One merge stage: the functional data path.

The engine's "model" mode moves the actual data through an honest merge
(vectorised two-way merges arranged in a tournament, exactly the dataflow
of a binary merge tree) while timing comes from the performance model.
``simulate`` mode delegates to the cycle-level simulator instead.

All merges are stable with respect to key order; within equal keys the
left (lower-indexed-run) elements come first, matching the hardware
merger's ``<=`` port preference.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.network import flims


def merge_two_sorted(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Stable merge of two sorted arrays (left wins ties).

    Backend-dispatched through :mod:`repro.network.flims`: the numpy
    path computes each element's position in the merged output via
    ``searchsorted`` (left elements shift right by the count of
    *strictly smaller* right elements, so ties keep left first; a
    genuine two-way merge, no re-sorting of the payload); the scalar
    path is the classic two-pointer merge with the same tie rule, used
    when the backend is forced to ``python`` or the merge is too small
    to amortize the numpy call overhead.  Both produce bit-identical
    output arrays.
    """
    left = np.asarray(left)
    right = np.asarray(right)
    if left.size == 0:
        return right.copy()
    if right.size == 0:
        return left.copy()
    if not flims.use_numpy_arrays():
        merged = flims.merge_runs_python(left.tolist(), right.tolist())
        return np.asarray(merged, dtype=np.result_type(left, right))
    out = np.empty(left.size + right.size, dtype=np.result_type(left, right))
    left_positions = np.arange(left.size) + np.searchsorted(right, left, side="left")
    right_positions = np.arange(right.size) + np.searchsorted(left, right, side="right")
    out[left_positions] = left
    out[right_positions] = right
    return out


def merge_runs_numpy(runs: list[np.ndarray]) -> np.ndarray:
    """Merge any number of sorted runs through a binary tournament.

    This is the same dataflow as an AMT with ``len(runs)`` leaves: runs
    merge pairwise level by level until one remains.
    """
    if not runs:
        return np.empty(0, dtype=np.uint64)
    level = [np.asarray(run) for run in runs]
    while len(level) > 1:
        # bonsai-lint: disable=hot-loop-alloc -- one list per merge level (log n levels), not per record
        next_level = []
        for index in range(0, len(level) - 1, 2):
            next_level.append(merge_two_sorted(level[index], level[index + 1]))
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
    return level[0]


def merge_stage(runs: list[np.ndarray], leaves: int) -> list[np.ndarray]:
    """One AMT merge stage: groups of ``leaves`` runs each become one run.

    Mirrors :func:`repro.hw.loader.make_feeds`' grouping — output run
    ``j`` merges input runs ``[j * leaves, (j + 1) * leaves)``.
    """
    if leaves < 2:
        raise ConfigurationError(f"a merge stage needs >= 2 leaves, got {leaves}")
    if not runs:
        return [np.empty(0, dtype=np.uint64)]
    merged = []
    for start in range(0, len(runs), leaves):
        merged.append(merge_runs_numpy(runs[start : start + leaves]))
    return merged


def split_into_runs(data: np.ndarray, run_length: int, presorted: bool = False) -> list[np.ndarray]:
    """Slice an array into runs of ``run_length`` records, sorting each.

    The presorter's job (§VI-C): with ``presorted=True`` the slices are
    assumed sorted already and only split.
    """
    if run_length < 1:
        raise ConfigurationError(f"run length must be >= 1, got {run_length}")
    data = np.asarray(data)
    runs = []
    for start in range(0, data.size, run_length):
        chunk = data[start : start + run_length].copy()
        if not presorted:
            chunk.sort(kind="stable")
        runs.append(chunk)
    return runs


def check_stage_invariants(
    input_runs: list[np.ndarray], output_runs: list[np.ndarray], leaves: int
) -> None:
    """Assert a stage preserved records and produced sorted runs.

    Used by tests and the self-checking examples; raises
    :class:`ConfigurationError` with a diagnostic on violation.
    """
    in_count = sum(run.size for run in input_runs)
    out_count = sum(run.size for run in output_runs)
    if in_count != out_count:
        raise ConfigurationError(
            f"stage lost records: {in_count} in, {out_count} out"
        )
    expected_groups = max(1, -(-len(input_runs) // leaves))
    if len(output_runs) != expected_groups:
        raise ConfigurationError(
            f"stage produced {len(output_runs)} runs, expected {expected_groups}"
        )
    for index, run in enumerate(output_runs):
        if run.size > 1 and not np.all(run[:-1] <= run[1:]):
            raise ConfigurationError(f"stage output run {index} is not sorted")
