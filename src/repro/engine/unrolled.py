"""Unrolled execution: multiple AMTs working in parallel (§III-A2, §IV-B).

Two variants, mirroring the paper's two data-distribution schemes:

* **Range partitioning** — "we first partition the data into λ_unrl
  equal-sized disjoint subsets of non-overlapping ranges and then have
  each AMT work on one subset independently".  The sorted subsets
  concatenate directly; partitioning overlaps the first merge stage and
  costs no extra time.
* **Address ranges** — "another approach is to forgo partitioning and let
  each AMT sort a pre-defined address range", after which the sorted
  ranges are merged by a dwindling subset of the AMTs (the HBM scheme of
  §IV-B, where "half of the AMTs are idled" each final stage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro.core.configuration import AmtConfig
from repro.core.parameters import HardwareParams, MergerArchParams
from repro.engine.results import SortOutcome
from repro.engine.sorter import AmtSorter
from repro.engine.stage import merge_runs_numpy
from repro.errors import ConfigurationError
from repro.memory.traffic import TrafficMeter
from repro.obs.runtime import observation
from repro.parallel.plan import ParallelPlan


@dataclass
class UnrolledSorter:
    """λ_unrl independent AMTs over one array.

    ``parallel`` optionally shards the independent trees across a
    process pool (one worker per partition in model mode, one per
    cycle-simulated unit in :meth:`simulate`); results are bit-identical
    to the serial loops for every ``jobs`` setting.
    """

    config: AmtConfig
    hardware: HardwareParams
    arch: MergerArchParams = field(default_factory=MergerArchParams)
    presort_run: int = 16
    partitioning: Literal["range", "address"] = "range"
    parallel: ParallelPlan | None = None

    def __post_init__(self) -> None:
        if self.config.lambda_unroll < 2:
            raise ConfigurationError(
                "UnrolledSorter needs lambda_unroll >= 2; use AmtSorter "
                "for a single tree"
            )
        if self.config.lambda_pipe != 1:
            raise ConfigurationError("combine pipelining via PipelinedSorter")
        single = AmtConfig(p=self.config.p, leaves=self.config.leaves)
        self._tree_sorter = AmtSorter(
            config=single,
            hardware=self._per_amt_hardware(),
            arch=self.arch,
            presort_run=self.presort_run,
        )

    def _per_amt_hardware(self) -> HardwareParams:
        """Each AMT sees a 1/λ share of DRAM bandwidth (§III-A2)."""
        lam = self.config.lambda_unroll
        return HardwareParams(
            beta_dram=self.hardware.beta_dram / lam,
            beta_io=self.hardware.beta_io,
            c_dram=max(1, self.hardware.c_dram // lam),
            c_bram=self.hardware.c_bram,
            c_lut=self.hardware.c_lut,
            batch_bytes=self.hardware.batch_bytes,
        )

    # ------------------------------------------------------------------
    def simulate(self, data: np.ndarray) -> SortOutcome:
        """Cycle-accurate address-range sort via :mod:`repro.hw.banks`.

        Runs λ concurrent sorter units on per-bank budgets plus the
        idling final merges; intended for laptop-scale arrays.  Timing
        comes from the simulated clock at ``arch.frequency_hz``.
        """
        from repro.hw.banks import UnrolledSimulation

        data = np.asarray(data)
        if data.size == 0:
            return SortOutcome(
                data=data.copy(), seconds=0.0, stages=0,
                record_bytes=self.arch.record_bytes, mode="simulate",
            )
        if self.parallel is not None:
            return self._simulate_sharded(data)
        simulation = UnrolledSimulation(
            p=self.config.p,
            leaves=self.config.leaves,
            lambda_unroll=self.config.lambda_unroll,
            record_bytes=self.arch.record_bytes,
            presort_run=self.presort_run,
            total_bytes_per_cycle=self.hardware.beta_dram / self.arch.frequency_hz,
            batch_bytes=min(self.hardware.batch_bytes, 1024),
        )
        with observation().span(
            "unrolled.simulate", records=int(data.size),
            lambda_unroll=self.config.lambda_unroll,
        ) as span:
            cycles = simulation.run([int(x) for x in data])
            span.set(cycles=cycles)
        return SortOutcome(
            data=np.asarray(simulation.output, dtype=data.dtype),
            seconds=cycles / self.arch.frequency_hz,
            stages=max(unit.stages_done for unit in simulation.units) + 1,
            record_bytes=self.arch.record_bytes,
            mode="simulate",
            detail={
                "parallel_cycles": simulation.parallel_cycles,
                "final_merge_cycles": simulation.final_merge_cycles,
            },
        )

    def _simulate_sharded(self, data: np.ndarray) -> SortOutcome:
        """Per-unit worker simulation, bit-identical to the joint loop.

        A finished unit's tick is a no-op in
        :meth:`~repro.hw.banks.UnrolledSimulation.run`'s joint loop, so
        simulating each unit alone visits exactly the same cycles;
        ``parallel_cycles`` is recovered as the ``max()`` of per-unit
        completion counts and the final merges run in the parent.
        """
        from repro.parallel.api import simulate_unrolled_sharded

        with observation().span(
            "unrolled.simulate", records=int(data.size),
            lambda_unroll=self.config.lambda_unroll, sharded=True,
        ) as span:
            output, stages_done, parallel_cycles, final_cycles = (
                simulate_unrolled_sharded(
                    [int(x) for x in data],
                    p=self.config.p,
                    leaves=self.config.leaves,
                    lambda_unroll=self.config.lambda_unroll,
                    record_bytes=self.arch.record_bytes,
                    presort_run=self.presort_run,
                    total_bytes_per_cycle=(
                        self.hardware.beta_dram / self.arch.frequency_hz
                    ),
                    batch_bytes=min(self.hardware.batch_bytes, 1024),
                    plan=self.parallel,
                )
            )
            cycles = parallel_cycles + final_cycles
            span.set(cycles=cycles)
        return SortOutcome(
            data=np.asarray(output, dtype=data.dtype),
            seconds=cycles / self.arch.frequency_hz,
            stages=stages_done + 1,
            record_bytes=self.arch.record_bytes,
            mode="simulate",
            detail={
                "parallel_cycles": parallel_cycles,
                "final_merge_cycles": final_cycles,
            },
        )

    def _sort_partitions(self, partitions: list[np.ndarray]) -> list[SortOutcome]:
        """Model-mode sort of the λ independent partitions, in order.

        Shards one worker per partition when a plan is attached; the
        worker runs the same single-tree :class:`AmtSorter` as the
        serial loop, so outcomes are identical either way.
        """
        with observation().span(
            "unrolled.partitions", partitions=len(partitions)
        ):
            if self.parallel is not None:
                from repro.parallel.api import sort_partitions_sharded

                outcomes = sort_partitions_sharded(
                    partitions,
                    config=self._tree_sorter.config,
                    hardware=self._tree_sorter.hardware,
                    arch=self.arch,
                    presort_run=self.presort_run,
                    plan=self.parallel,
                )
                if outcomes is not None:
                    return outcomes
            return [self._tree_sorter.sort(partition) for partition in partitions]

    def sort(self, data: np.ndarray) -> SortOutcome:
        """Sort an array across the unrolled AMTs; returns data + timing."""
        data = np.asarray(data)
        if data.size == 0:
            return SortOutcome(
                data=data.copy(), seconds=0.0, stages=0,
                record_bytes=self.arch.record_bytes, mode="model",
            )
        with observation().span(
            "unrolled.sort", partitioning=self.partitioning,
            records=int(data.size), lambda_unroll=self.config.lambda_unroll,
        ):
            if self.partitioning == "range":
                return self._sort_range_partitioned(data)
            return self._sort_address_ranges(data)

    # ------------------------------------------------------------------
    def _sort_range_partitioned(self, data: np.ndarray) -> SortOutcome:
        lam = self.config.lambda_unroll
        # Non-overlapping value ranges of near-equal population: exact
        # quantile splitters (the hardware pipelines this with stage one).
        order_stats = np.quantile(data, np.linspace(0, 1, lam + 1)[1:-1])
        boundaries = np.concatenate(
            ([data.min()], order_stats.astype(data.dtype), [data.max()])
        )
        partitions = []
        for index in range(lam):
            low = boundaries[index]
            high = boundaries[index + 1]
            if index == 0:
                mask = data <= high
            elif index == lam - 1:
                mask = data > low
            else:
                mask = (data > low) & (data <= high)
            partitions.append(data[mask])
        outcomes = self._sort_partitions(partitions)
        merged = np.concatenate([outcome.data for outcome in outcomes])
        seconds = max(outcome.seconds for outcome in outcomes) if outcomes else 0.0
        traffic = TrafficMeter()
        for outcome in outcomes:
            traffic.merge(outcome.traffic)
        return SortOutcome(
            data=merged,
            seconds=seconds,
            stages=max(outcome.stages for outcome in outcomes),
            record_bytes=self.arch.record_bytes,
            mode="model",
            traffic=traffic,
            detail={"partitioning": "range", "lambda_unroll": lam},
        )

    # ------------------------------------------------------------------
    def _sort_address_ranges(self, data: np.ndarray) -> SortOutcome:
        lam = self.config.lambda_unroll
        chunk = -(-data.size // lam)
        outcomes = self._sort_partitions(
            [data[start : start + chunk] for start in range(0, data.size, chunk)]
        )
        seconds = max(outcome.seconds for outcome in outcomes)
        stages = max(outcome.stages for outcome in outcomes)
        traffic = TrafficMeter()
        for outcome in outcomes:
            traffic.merge(outcome.traffic)
        # Final merges with idling AMTs: ranges shrink by `leaves` per
        # stage; each stage re-streams all data at the active AMTs'
        # aggregate rate.
        runs = [outcome.data for outcome in outcomes]
        per_amt_rate = min(
            self.arch.amt_throughput_bytes(self.config.p),
            self.hardware.beta_dram / lam,
        )
        total_bytes = data.size * self.arch.record_bytes
        extra_stages = 0
        obs = observation()
        while len(runs) > 1:
            with obs.span(
                "unrolled.final_merge", stage=extra_stages, runs=len(runs)
            ):
                groups = max(1, -(-len(runs) // self.config.leaves))
                next_runs = []
                for start in range(0, len(runs), self.config.leaves):
                    next_runs.append(
                        merge_runs_numpy(runs[start : start + self.config.leaves])
                    )
            seconds += total_bytes / (groups * per_amt_rate)
            traffic.record_read("dram", total_bytes)
            traffic.record_write("dram", total_bytes)
            obs.count("engine.final_merge_records", int(data.size))
            obs.count("engine.bytes_read", total_bytes)
            obs.count("engine.bytes_written", total_bytes)
            runs = next_runs
            extra_stages += 1
        return SortOutcome(
            data=runs[0],
            seconds=seconds,
            stages=stages + extra_stages,
            record_bytes=self.arch.record_bytes,
            mode="model",
            traffic=traffic,
            detail={
                "partitioning": "address",
                "lambda_unroll": lam,
                "final_merge_stages": extra_stages,
            },
        )
