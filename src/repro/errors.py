"""Exception hierarchy for the Bonsai reproduction.

Every error raised by :mod:`repro` derives from :class:`BonsaiError`, so
callers can catch a single base class.  Sub-classes mark the layer that
produced the error (configuration validation, resource-model infeasibility,
hardware-simulation protocol violations, memory-model violations).
"""

from __future__ import annotations


class BonsaiError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ConfigurationError(BonsaiError, ValueError):
    """An AMT configuration or model parameter is malformed.

    Raised for non-power-of-two throughput or leaf counts, non-positive
    bandwidths, record widths outside the supported range, and similar
    parameter-validation failures.

    Also derives from :class:`ValueError`: a malformed parameter *is* a
    value error, and the dual inheritance lets generic callers that
    catch ``ValueError`` around leaf helpers (``repro.units``) keep
    working while ``except BonsaiError`` still catches everything.
    """


class InfeasibleConfigError(BonsaiError):
    """A requested AMT configuration does not fit the available hardware.

    Raised by the optimizer and resource models when a configuration
    violates the LUT (Eq. 9), BRAM (Eq. 10) or pipeline-capacity (Eq. 5)
    constraints of the target platform.
    """


class NoFeasibleConfigError(InfeasibleConfigError):
    """The optimizer's search space contains no implementable configuration."""


class SimulationError(BonsaiError):
    """A hardware-simulation protocol was violated.

    Examples: pushing into a full FIFO, reading a tuple of the wrong
    width, or running a component after its stream has terminated.
    """


class MemoryModelError(BonsaiError):
    """A memory-model invariant was violated (capacity overflow, bad batch)."""


class WorkloadError(BonsaiError):
    """A workload generator was asked for an impossible dataset."""


class ObservabilityError(BonsaiError):
    """The observability subsystem was misused.

    Raised for malformed JSONL traces, metric-snapshot schema
    mismatches, and span-context protocol violations — never by the
    disabled (no-op) path, which cannot fail.
    """


class ServeError(BonsaiError):
    """The sorting service was misconfigured or misused.

    Raised for unusable socket paths, malformed server parameters, and
    daemon lifecycle violations — not for per-job failures, which travel
    back to the submitting client as ``status: "error"`` responses.
    """


class ProtocolError(ServeError):
    """A serve-protocol message could not be understood.

    Raised for non-JSON request lines, unknown request kinds, missing or
    mistyped envelope fields, and oversized messages.  The server turns
    it into an ``status: "error"`` response rather than dying; the
    client raises it when the server's reply is unintelligible.
    """


class LintError(BonsaiError):
    """The static-analysis subsystem was misused.

    Raised for unknown rule names, unreadable lint targets, and rule
    registration conflicts — not for lint *findings*, which are reported
    as diagnostics and signalled through the exit code.
    """
