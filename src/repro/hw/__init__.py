"""Cycle-level hardware simulator of the AMT microarchitecture (§II, §V).

This package stands in for the paper's Verilog implementation.  Every
component the paper describes is modelled as a synchronous unit with a
``tick()`` method executed once per simulated clock cycle:

* :mod:`repro.hw.terminal` — terminal-record markers and pad sentinels
  implementing the zero-append/zero-filter flushing scheme (§V-B).
* :mod:`repro.hw.fifo` — bounded FIFOs with stall semantics and
  high-water statistics (the input buffers of §V-A).
* :mod:`repro.hw.merger` — the k-merger: feedback register plus bitonic
  half-merger, selecting inputs by head comparison (§I-A).
* :mod:`repro.hw.coupler` — k-couplers concatenating adjacent half-width
  tuples between tree levels (§II, Fig. 1).
* :mod:`repro.hw.loader` — the data loader: round-robin batched reads
  under a per-cycle bandwidth budget, double-buffered per leaf (§V-A).
* :mod:`repro.hw.tree` — assembles mergers/couplers/FIFOs into an
  AMT(p, l) and runs whole merge stages.
* :mod:`repro.hw.bus` — 512-bit packer/unpacker with zero append/filter
  (Fig. 7).
* :mod:`repro.hw.clock` — the synchronous scheduler.
* :mod:`repro.hw.probes` — statistics records for every component.
"""

from repro.hw.terminal import TERMINAL, SENTINEL_KEY, is_terminal
from repro.hw.fifo import Fifo
from repro.hw.merger import KMerger
from repro.hw.coupler import Coupler
from repro.hw.loader import DataLoader
from repro.hw.tree import AmtTree, simulate_merge
from repro.hw.bus import Packer, Unpacker, ZERO_TERMINAL_KEY
from repro.hw.clock import Simulation
from repro.hw.probes import MergerStats, LoaderStats, StageStats

__all__ = [
    "TERMINAL",
    "SENTINEL_KEY",
    "is_terminal",
    "Fifo",
    "KMerger",
    "Coupler",
    "DataLoader",
    "AmtTree",
    "simulate_merge",
    "Packer",
    "Unpacker",
    "ZERO_TERMINAL_KEY",
    "Simulation",
    "MergerStats",
    "LoaderStats",
    "StageStats",
]
