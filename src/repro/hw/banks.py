"""Cycle-level unrolled execution: λ AMTs on banked memory (§III-A2, §IV-B).

The paper validates unrolling by running multiple AMTs concurrently,
each saturating its own DRAM bank(s) (§VI-D).  This module simulates
that arrangement: λ independent sorter units share one clock, each with
a per-bank bandwidth budget, each sorting its own address-range
partition through all of its merge stages.  The final cross-partition
merges (the idling scheme of §IV-B) run afterwards through a shrunken
tree on the aggregate bandwidth.

Key observable: the makespan of the parallel phase equals the *slowest
unit*, not the sum — which is precisely the linear-scaling claim the
paper demonstrates on DRAM banks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SimulationError
from repro.hw.loader import DataLoader, OutputWriter, make_feeds
from repro.hw.tree import AmtTree, simulate_merge


@dataclass
class _SorterUnit:
    """One AMT sorting one partition through successive stages."""

    p: int
    leaves: int
    record_bytes: int
    bytes_per_cycle: float
    batch_bytes: int
    presort_run: int

    runs: list[list[int]] = field(default_factory=list)
    _parts: dict | None = field(default=None, repr=False)
    done: bool = False
    output: list[int] = field(default_factory=list)
    busy_cycles: int = 0
    stages_done: int = 0

    def load(self, array: list[int]) -> None:
        """Accept a partition, split into presorted runs."""
        self.runs = [
            sorted(array[start : start + self.presort_run])
            for start in range(0, len(array), self.presort_run)
        ] or [[]]
        self.done = False

    def tick(self, cycle: int = 0) -> None:
        """Advance this unit's current merge stage by one cycle."""
        if self.done:
            return
        if self._parts is None:
            self._arm()
        self.busy_cycles += 1
        parts = self._parts
        parts["writer"].tick(cycle)
        for component in parts["tree"].components:
            component.tick(cycle)
        parts["loader"].tick(cycle)
        if parts["writer"].done:
            runs = parts["writer"].runs
            self.runs = runs
            self._parts = None
            self.stages_done += 1
            if len(runs) <= 1:
                self.done = True
                self.output = runs[0] if runs else []

    def _arm(self) -> None:
        leaves = self.leaves
        runs = self.runs
        record_bytes = self.record_bytes
        if len(runs) < leaves:
            shrunk = 1 << max(1, (max(2, len(runs)) - 1).bit_length())
            leaves = min(leaves, shrunk)
        tree = AmtTree(p=self.p, leaves=leaves)
        leaf_width = tree.leaf_width
        batch_tuples = max(
            1,
            (max(leaf_width, self.batch_bytes // record_bytes))
            // leaf_width,
        )
        for fifo in tree.leaf_fifos:
            fifo.capacity = max(fifo.capacity, 2 * (2 * batch_tuples + 1))
        n_groups = max(1, math.ceil(len(runs) / leaves))
        loader = DataLoader(
            feeds=make_feeds(tree.leaf_fifos, runs, leaves),
            tuple_width=leaf_width,
            record_bytes=record_bytes,
            read_bytes_per_cycle=self.bytes_per_cycle,
            batch_bytes=self.batch_bytes,
        )
        writer = OutputWriter(
            source=tree.root_fifo,
            record_bytes=record_bytes,
            write_bytes_per_cycle=self.bytes_per_cycle,
            expected_runs=n_groups,
        )
        self._parts = {"tree": tree, "loader": loader, "writer": writer}


@dataclass
class UnrolledSimulation:
    """λ address-range AMTs on per-bank budgets, plus the final merges.

    Parameters
    ----------
    p / leaves / lambda_unroll:
        Per-tree shape and the unroll factor.
    total_bytes_per_cycle:
        Aggregate memory budget; each unit gets a 1/λ share (its bank).
    """

    p: int = 8
    leaves: int = 8
    lambda_unroll: int = 4
    record_bytes: int = 4
    presort_run: int = 16
    total_bytes_per_cycle: float = 128.0
    batch_bytes: int = 512

    units: list[_SorterUnit] = field(init=False)
    parallel_cycles: int = field(init=False, default=0)
    final_merge_cycles: int = field(init=False, default=0)
    output: list[int] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if self.lambda_unroll < 2:
            raise ConfigurationError("unrolled simulation needs lambda >= 2")
        share = self.total_bytes_per_cycle / self.lambda_unroll
        self.units = [
            _SorterUnit(
                p=self.p,
                leaves=self.leaves,
                record_bytes=self.record_bytes,
                bytes_per_cycle=share,
                batch_bytes=self.batch_bytes,
                presort_run=self.presort_run,
            )
            for _ in range(self.lambda_unroll)
        ]

    # ------------------------------------------------------------------
    def run(self, array: list[int], max_cycles: int = 5_000_000) -> int:
        """Sort ``array``; returns total cycles (parallel + final merges)."""
        chunk = -(-len(array) // self.lambda_unroll)
        for index, unit in enumerate(self.units):
            unit.load(list(array[index * chunk : (index + 1) * chunk]))

        cycle = 0
        while not all(unit.done for unit in self.units):
            if cycle >= max_cycles:
                raise SimulationError(
                    f"unrolled phase did not finish within {max_cycles} cycles"
                )
            for unit in self.units:
                unit.tick(cycle)
            cycle += 1
        self.parallel_cycles = cycle

        # Final merges: λ sorted ranges through a shrunken tree at the
        # aggregate budget (only this phase idles units, §IV-B).
        ranges = [unit.output for unit in self.units]
        merged, stats = simulate_merge(
            p=self.p,
            leaves=self.leaves,
            runs=ranges,
            record_bytes=self.record_bytes,
            read_bytes_per_cycle=self.total_bytes_per_cycle,
            write_bytes_per_cycle=self.total_bytes_per_cycle,
            batch_bytes=self.batch_bytes,
            check_sorted_inputs=False,
        )
        self.final_merge_cycles = stats.cycles
        self.output = merged[0]
        return self.parallel_cycles + self.final_merge_cycles

    # ------------------------------------------------------------------
    def unit_busy_cycles(self) -> list[int]:
        """Per-unit busy-cycle counts for balance checks."""
        return [unit.busy_cycles for unit in self.units]
