"""512-bit bus packing and the zero append / zero filter (Fig. 7, §V-B).

"To make full use of the external DRAM bandwidth, the communication
between the sorting kernel and the DDR controller is always through a
512-bit wide AXI-4 interface, regardless of the record width: the
Unpacker will extract one record from the 512-bit FIFOs per cycle
automatically once the record width is set by the user and the packer
will concatenate the output of the merge tree into 512-bit wide data."

On the memory side, run boundaries are encoded in-band: "The zero append
will append a zero as a terminal record whenever an entire sorted
subsequence is fed into an input buffer.  At the output of the merge
tree, these terminal records are filtered out using a zero filter.
Although we reserve zero for the terminal record, any other value may be
used."  :class:`Unpacker` performs the zero append while decoding bus
words into runs; :class:`Packer` performs the zero filter while encoding
merged runs back into bus words.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.records.record import RecordFormat

#: The reserved terminal key (§V-B uses zero).
ZERO_TERMINAL_KEY = 0

BUS_BITS = 512
BUS_BYTES = BUS_BITS // 8


@dataclass
class Unpacker:
    """Decodes 512-bit bus words into per-run record streams.

    The decoder treats the reserved terminal key as a run boundary and
    therefore rejects genuine records carrying that key — the caller must
    bias its key space, exactly as the hardware user must "reserve zero
    for the terminal record".
    """

    fmt: RecordFormat
    terminal_key: int = ZERO_TERMINAL_KEY

    @property
    def records_per_word(self) -> int:
        """Record lanes per 512-bit bus word."""
        return self.fmt.records_per_bus_word(BUS_BITS)

    def decode(self, words: list[list[int]]) -> list[list[int]]:
        """Split a stream of bus words into runs at terminal records.

        ``words`` is a list of bus words, each a list of record keys
        (padded words may carry ``None`` in unused lanes).
        """
        runs: list[list[int]] = []
        current: list[int] = []
        for word in words:
            if len(word) > self.records_per_word:
                raise SimulationError(
                    f"bus word carries {len(word)} records; the 512-bit bus "
                    f"fits {self.records_per_word} records of {self.fmt}"
                )
            for key in word:
                if key is None:
                    continue
                if key == self.terminal_key:
                    runs.append(current)
                    current = []
                    continue
                current.append(key)
        if current:
            raise SimulationError(
                "bus stream ended mid-run: final terminal record missing"
            )
        return runs


@dataclass
class Packer:
    """Encodes merged runs back into 512-bit bus words.

    Appends one terminal record after every run (the zero append on the
    write path) and pads the final word's unused lanes with ``None``.
    """

    fmt: RecordFormat
    terminal_key: int = ZERO_TERMINAL_KEY
    words_emitted: int = field(init=False, default=0)

    @property
    def records_per_word(self) -> int:
        """Record lanes per 512-bit bus word."""
        return self.fmt.records_per_bus_word(BUS_BITS)

    def encode(self, runs: list[list[int]]) -> list[list[int]]:
        """Pack runs into bus words with in-band terminals."""
        lanes: list[int] = []
        for run in runs:
            for key in run:
                if key == self.terminal_key:
                    raise SimulationError(
                        f"record key {key} collides with the reserved terminal; "
                        "bias the key space or choose another terminal value"
                    )
                lanes.append(key)
            lanes.append(self.terminal_key)
        words: list[list[int]] = []
        for start in range(0, len(lanes), self.records_per_word):
            word = lanes[start : start + self.records_per_word]
            if len(word) < self.records_per_word:
                word = word + [None] * (self.records_per_word - len(word))
            words.append(word)
        self.words_emitted += len(words)
        return words

    def roundtrip_check(self, runs: list[list[int]]) -> None:
        """Assert encode->decode reproduces the runs (used in tests)."""
        decoded = Unpacker(self.fmt, self.terminal_key).decode(self.encode(runs))
        if decoded != [list(run) for run in runs]:
            raise SimulationError("bus roundtrip mismatch")
