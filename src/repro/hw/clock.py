"""Synchronous clock scheduler.

All components expose ``tick(cycle)`` and communicate exclusively through
FIFOs.  Components are ticked in *root-to-leaf* order each cycle, so an
item pushed in cycle ``c`` is observed by its consumer no earlier than
cycle ``c + 1`` — the standard one-register-per-stage pipeline discipline.
The resulting pipeline fill latency matches the datapath depth, and
steady-state throughput is one tuple per component per cycle.

Two execution engines drive the same component graph:

* the **naive stepper** ticks every component on every cycle;
* the **event-driven fast path** (:mod:`repro.hw.fastpath`) puts
  provably-stalled components to sleep, wakes them on FIFO traffic or
  self-scheduled timers, and bulk-applies the skipped cycles' stall and
  idle accounting on wake; when the whole graph sleeps, the clock jumps
  straight to the next timer.  The two engines are cycle-exact
  equivalents — same final cycle count, same statistics, same data —
  which the differential suite in ``tests/hw/test_fastpath.py``
  verifies across randomized shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.errors import SimulationError
from repro.hw import fastpath

#: Default ``run_until`` cycle budget, shared by every stage driver
#: (:func:`repro.hw.tree.simulate_merge` threads it through unchanged).
#: Sized for the largest simulated stage plus an order of magnitude of
#: headroom: a timeout at this budget means deadlock, not slowness.
DEFAULT_MAX_CYCLES = 50_000_000


class Component(Protocol):
    """Anything with a per-cycle ``tick``."""

    def tick(self, cycle: int) -> None:  # pragma: no cover - protocol
        """Advance one clock cycle."""
        ...


@dataclass
class Simulation:
    """Runs a list of components until a completion predicate holds.

    Parameters
    ----------
    components:
        Tick order; producers of a FIFO should appear *after* its
        consumer for one-cycle-per-stage semantics.
    fast_forward:
        When true (the default) and every component implements the
        quiescence protocol of :mod:`repro.hw.fastpath`, ``run_until``
        uses the event-driven scheduler, which skips provably-stalled
        component ticks instead of executing them.  Cycle counts and
        statistics are identical either way; set false to force the
        naive stepper (e.g. when comparing the engines or stepping
        through a bug).
    """

    components: list = field(default_factory=list)
    cycle: int = 0
    fast_forward: bool = True

    def add(self, component: Component) -> None:
        """Append a component at the end of the tick order."""
        self.components.append(component)

    def step(self) -> None:
        """Advance the clock by one cycle."""
        for component in self.components:
            component.tick(self.cycle)
        self.cycle += 1

    def run_until(
        self, done: Callable[[], bool], max_cycles: int = DEFAULT_MAX_CYCLES
    ) -> int:
        """Step until ``done()`` is true; returns the elapsed cycle count.

        Raises
        ------
        SimulationError
            When ``max_cycles`` elapse first — almost always a deadlock
            in the component graph (a FIFO sized too small, or a
            terminal that never arrived).  The error message carries a
            stall snapshot: every FIFO's occupancy and high-water mark
            plus each merger's run state.
        """
        start = self.cycle
        limit = start + max_cycles
        components = self.components
        if self.fast_forward and fastpath.supports_fast_forward(components):
            try:
                self.cycle = fastpath.run_event_driven(
                    components, start, done, limit, max_cycles
                )
            except SimulationError:
                self.cycle = limit
                raise
            return self.cycle - start
        while not done():
            if self.cycle >= limit:
                raise SimulationError(
                    f"simulation did not complete within {max_cycles} cycles; "
                    "likely deadlock or missing terminal\n"
                    + fastpath.format_stall_report(components, self.cycle)
                )
            self.step()
        return self.cycle - start
