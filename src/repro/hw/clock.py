"""Synchronous clock scheduler.

All components expose ``tick(cycle)`` and communicate exclusively through
FIFOs.  Components are ticked in *root-to-leaf* order each cycle, so an
item pushed in cycle ``c`` is observed by its consumer no earlier than
cycle ``c + 1`` — the standard one-register-per-stage pipeline discipline.
The resulting pipeline fill latency matches the datapath depth, and
steady-state throughput is one tuple per component per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.errors import SimulationError


class Component(Protocol):
    """Anything with a per-cycle ``tick``."""

    def tick(self, cycle: int) -> None:  # pragma: no cover - protocol
        """Advance one clock cycle."""
        ...


@dataclass
class Simulation:
    """Runs a list of components until a completion predicate holds.

    Parameters
    ----------
    components:
        Tick order; producers of a FIFO should appear *after* its
        consumer for one-cycle-per-stage semantics.
    """

    components: list = field(default_factory=list)
    cycle: int = 0

    def add(self, component: Component) -> None:
        """Append a component at the end of the tick order."""
        self.components.append(component)

    def step(self) -> None:
        """Advance the clock by one cycle."""
        for component in self.components:
            component.tick(self.cycle)
        self.cycle += 1

    def run_until(
        self, done: Callable[[], bool], max_cycles: int = 10_000_000
    ) -> int:
        """Step until ``done()`` is true; returns the elapsed cycle count.

        Raises
        ------
        SimulationError
            When ``max_cycles`` elapse first — almost always a deadlock
            in the component graph (a FIFO sized too small, or a
            terminal that never arrived).
        """
        start = self.cycle
        while not done():
            if self.cycle - start >= max_cycles:
                raise SimulationError(
                    f"simulation did not complete within {max_cycles} cycles; "
                    "likely deadlock or missing terminal"
                )
            self.step()
        return self.cycle - start
