"""The k-coupler (§II, Fig. 1).

"In order to feed the output of a p/2-merger to the parent p-merger, a
p-coupler is used between tree levels to concatenate adjacent p/2-element
tuples into p-element tuples suitable for input into the parent p-merger."

The coupler consumes one half-width tuple per cycle and emits one
full-width tuple every second cycle.  When a run ends on an odd number of
half-tuples, the held half is padded with max-key sentinels — those sort
to the end of the run inside the parent merger and are dropped by the
output filter (§V-B's zero-filter analogue).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.hw.fifo import Fifo
from repro.hw.terminal import TERMINAL, SENTINEL_KEY, is_terminal
from repro.units import is_power_of_two


@dataclass
class Coupler:
    """Concatenates adjacent ``k/2``-record tuples into ``k``-record tuples.

    Parameters
    ----------
    k:
        Output tuple width; the input carries ``k/2``-record tuples.
    """

    k: int
    input: Fifo
    output: Fifo
    name: str = "coupler"

    _held: tuple | None = field(init=False, default=None, repr=False)
    consumed_tuples: int = field(init=False, default=0)
    emitted_tuples: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.k) or self.k < 2:
            raise SimulationError(
                f"coupler width must be a power of two >= 2, got {self.k}"
            )

    @property
    def half_width(self) -> int:
        """Width of the input tuples (k/2)."""
        return self.k // 2

    def tick(self, cycle: int = 0) -> None:
        """Advance one clock cycle: move at most one input item."""
        output = self.output
        source = self.input
        if output.is_full or source.is_empty:
            return
        head = source.peek()
        if is_terminal(head):
            held = self._held
            if held is not None:
                # Odd half-tuple at the end of a run: pad with max-key
                # sentinels and emit; the terminal goes out next cycle.
                padded = held + (SENTINEL_KEY,) * self.half_width
                self._held = None
                output.push(padded)
                self.emitted_tuples += 1
                return
            source.pop()
            output.push(TERMINAL)
            return
        item = source.pop()
        if len(item) != self.half_width:
            raise SimulationError(
                f"{self.name}: expected {self.half_width}-record tuples, "
                f"got {len(item)}"
            )
        self.consumed_tuples += 1
        held = self._held
        if held is None:
            self._held = tuple(item)
            return
        output.push(held + tuple(item))
        self._held = None
        self.emitted_tuples += 1

    # ------------------------------------------------------------------
    # quiescence protocol (repro.hw.fastpath)
    # ------------------------------------------------------------------
    def next_event_cycle(self, cycle: int) -> int | None:
        """``cycle`` when this tick would move an item, else ``None``.

        The coupler is purely reactive: with a full output or an empty
        input its tick is a complete no-op (it counts nothing), so it
        stays quiescent until a neighbour pushes or pops.
        """
        if self.output.is_full or self.input.is_empty:
            return None
        return cycle

    def stall_tag(self) -> str | None:
        """Stalled coupler ticks perform no bookkeeping at all."""
        return None

    def apply_stall(self, tag: str | None, n_cycles: int) -> None:
        """Skipped coupler stalls have nothing to account."""

    def skip_cycles(self, n_cycles: int) -> None:
        """Immediate form of :meth:`apply_stall` (see fastpath docs)."""
        self.apply_stall(self.stall_tag(), n_cycles)

    def wake_fifos_now(self) -> list[Fifo]:
        """Dynamic wake set: only the blocking port needs watching.

        The coupler acts as soon as the output has space *and* the
        input has data, so only the currently violated condition(s) can
        re-enable it: a full output can only be unblocked by a
        downstream pop, an empty input only by an upstream push.  The
        non-blocking port is frozen from the coupler's perspective (it
        is that FIFO's only producer/consumer on the relevant side).
        """
        fifos = []
        if self.output.is_full:
            fifos.append(self.output)
        if self.input.is_empty:
            fifos.append(self.input)
        return fifos
