"""Cycle-exact event-driven fast path for the simulator.

The naive :class:`~repro.hw.clock.Simulation` loop ticks every component
on every cycle.  In the memory-bound configurations the paper cares most
about (§IV, Eq. 1-3) almost all of those ticks are *stall ticks*: the
loader is mid-way through a multi-cycle batch transfer, most of the tree
is starved or back-pressured, and each tick only increments a stall or
idle counter.  This engine skips those ticks without changing a single
observable number: cycle counts, per-merger statistics, loader/writer
statistics and the merged output are bit-identical to the naive stepper
(the differential suite in ``tests/hw/test_fastpath.py`` verifies this
across randomized shapes).

The quiescence protocol
-----------------------

A component opts in by implementing three methods next to ``tick``:

``next_event_cycle(cycle) -> int | None``
    The earliest cycle at which this component's ``tick`` might do real
    work — move an item, change shared state, branch differently —
    assuming **no other component mutates shared state in between**.
    ``cycle`` (or smaller) means "I may act right now"; a future cycle
    is a self-scheduled timer (the loader's in-flight batch transfer,
    the writer's bandwidth-credit refill); ``None`` means "only another
    component's push or pop can wake me".

``stall_tag() -> str | None``
    A label classifying what the component's stall ticks would count
    *under the current frozen state* (``"stall_output"`` vs
    ``"idle_cycles"``, bandwidth-limited vs idle, ...).  Captured once
    when the component goes to sleep, because by the time the skipped
    window is accounted for, the FIFO state that justified the
    classification may already have changed.

``apply_stall(tag, n) -> None``
    Bulk-apply ``n`` skipped stall ticks' worth of bookkeeping for a
    captured ``tag``: the same counters a naive tick would have
    incremented ``n`` times, the same deterministic local state
    evolution (credit refill, transfer countdown), and nothing else.

``skip_cycles(n)`` (``= apply_stall(stall_tag(), n)``) is the immediate
form used when the state is known to still be frozen.

The engine
----------

:func:`run_event_driven` keeps a per-component *awake* flag.  Awake
components tick normally, in list order, preserving the naive stepper's
intra-cycle semantics exactly.  A component whose tick moved no data
(its adjacent FIFOs' push/pop counters are unchanged) is asked for its
next event; if that is not the next cycle, the component goes to sleep,
recording the cycle it slept from, its stall tag, and an optional timer.

Sleeping components are woken by

* **FIFO traffic**: when an awake component's tick changes a FIFO, every
  sleeping component adjacent to that FIFO is woken — effective the
  same cycle for components later in tick order (they have not ticked
  yet this cycle), the next cycle for earlier ones (their turn already
  passed, correctly, as a stall);
* **timers**: the self-scheduled ``next_event_cycle`` hints;
* **termination**: when the run completes or hits its cycle budget,
  every sleeper is settled up to the final cycle.

On wake, the skipped window is charged in one ``apply_stall`` call.
When *no* component is awake the clock jumps straight to the earliest
timer (or the cycle budget, turning silent deadlocks into instant,
fully-accounted timeouts).  Spurious wakes are harmless: the component
ticks once — counting its stall exactly as the naive stepper would —
and goes back to sleep.

Components that do not implement the protocol (trace recorders, fault
injectors, pausing wrappers) disable the fast path for the whole run;
:class:`~repro.hw.clock.Simulation` silently degrades to the naive
loop.  See ``docs/performance.md`` for the full contract and the
argument for why the engines cannot diverge.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Callable

from repro.errors import SimulationError
from repro.hw.fifo import Fifo

_PROTOCOL = ("next_event_cycle", "stall_tag", "apply_stall")

#: Consecutive no-movement ticks before a component is put to sleep.
#: Sleeping costs a wake/re-sleep round trip (several times a plain
#: stall tick), so it only pays off for stall windows longer than a few
#: cycles; components on the fringe of an active region — woken by a
#: neighbour's push every cycle or two — should keep ticking naively.
SLEEP_AFTER_STALLS = 8


def supports_fast_forward(components: list) -> bool:
    """True when every component implements the quiescence protocol."""
    return all(
        all(hasattr(component, method) for method in _PROTOCOL)
        for component in components
    )


def _component_fifos(component: object) -> list[Fifo]:
    """FIFOs referenced by a component's dataclass fields (one level)."""
    if not is_dataclass(component):
        return []
    out: list[Fifo] = []
    for spec in fields(component):
        value = getattr(component, spec.name, None)
        if isinstance(value, Fifo):
            out.append(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, Fifo):
                    out.append(item)
    return out


def _watched_fifos(component: object) -> list[Fifo]:
    """The FIFOs whose traffic must wake a sleeping component.

    Components whose ports are not direct dataclass fields (the loader
    reaches its leaf FIFOs through feed records) override the default
    via a ``wake_fifos()`` hook.
    """
    hook = getattr(component, "wake_fifos", None)
    if hook is not None:
        return list(hook())
    return _component_fifos(component)


def run_event_driven(
    components: list,
    cycle: int,
    done: Callable[[], bool],
    limit: int,
    max_cycles: int,
) -> int:
    """Run the event-driven scheduler; returns the final cycle number.

    Semantically identical to ticking every component on every cycle
    from ``cycle`` until ``done()`` or ``limit``: same final cycle, same
    statistics, same data movement.  Raises the same budget-exhausted
    :class:`~repro.errors.SimulationError` as the naive loop, with a
    stall snapshot appended.
    """
    n_components = len(components)
    order = list(components)

    # Wiring: one slot per distinct FIFO; per-component adjacency for
    # movement detection; per-slot watcher lists for wake propagation.
    slot_of: dict[int, int] = {}
    fifo_list: list[Fifo] = []
    watchers: list[list[int]] = []
    adjacency: list[list[tuple[Fifo, int]]] = []
    for index, component in enumerate(order):
        # bonsai-lint: disable=hot-loop-alloc -- wiring prologue runs once per simulation, before the cycle loop
        pairs: list[tuple[Fifo, int]] = []
        for fifo in _watched_fifos(component):
            slot = slot_of.get(id(fifo))
            if slot is None:
                slot = len(fifo_list)
                slot_of[id(fifo)] = slot
                fifo_list.append(fifo)
                # bonsai-lint: disable=hot-loop-alloc -- wiring prologue, one watcher list per distinct FIFO
                watchers.append([])
            watchers[slot].append(index)
            pairs.append((fifo, slot))
        adjacency.append(pairs)
    traffic = [fifo.pushes + fifo.pops for fifo in fifo_list]

    awake = [True] * n_components
    sleep_since = [0] * n_components
    sleep_tag: list = [None] * n_components
    timers: list = [None] * n_components
    last_move = [cycle] * n_components
    awake_count = n_components
    next_timer: int | None = None

    def wake(index: int, at_cycle: int) -> None:
        nonlocal awake_count
        skipped = at_cycle - sleep_since[index]
        if skipped > 0:
            order[index].apply_stall(sleep_tag[index], skipped)
        awake[index] = True
        timers[index] = None
        last_move[index] = at_cycle
        awake_count += 1

    def settle_all(at_cycle: int) -> None:
        for index in range(n_components):
            if not awake[index]:
                wake(index, at_cycle)

    while True:
        if next_timer is not None and next_timer <= cycle:
            next_timer = None
            for index in range(n_components):
                due = timers[index]
                if awake[index] or due is None:
                    continue
                if due <= cycle:
                    wake(index, cycle)
                elif next_timer is None or due < next_timer:
                    next_timer = due
        if done():
            settle_all(cycle)
            return cycle
        if cycle >= limit:
            settle_all(cycle)
            raise SimulationError(
                f"simulation did not complete within {max_cycles} cycles; "
                "likely deadlock or missing terminal\n"
                + format_stall_report(order, cycle)
            )
        if awake_count == 0:
            # Global quiescence: jump to the earliest self-scheduled
            # event, or straight to the budget boundary (deadlock).
            cycle = limit if next_timer is None else min(next_timer, limit)
            continue
        # ``enumerate(awake)`` reads each flag at iteration time, so a
        # component woken mid-cycle by an earlier neighbour still gets
        # its tick this cycle, while one that just slept is skipped.
        ops_before = Fifo.total_ops
        for index, is_awake in enumerate(awake):
            if not is_awake:
                continue
            component = order[index]
            component.tick(cycle)
            ops_after = Fifo.total_ops
            if ops_after != ops_before:
                # The tick moved data: remember, and wake any watchers.
                ops_before = ops_after
                last_move[index] = cycle
                if awake_count != n_components:
                    # Per-FIFO attribution is only needed while someone
                    # sleeps; with everyone awake the caches may go
                    # stale (counters are monotonic, so staleness can
                    # only cause a harmless spurious wake later).
                    for fifo, slot in adjacency[index]:
                        seen = fifo.pushes + fifo.pops
                        if seen != traffic[slot]:
                            traffic[slot] = seen
                            for watcher in watchers[slot]:
                                if not awake[watcher]:
                                    # Later in tick order: still ticks
                                    # this cycle.  Earlier: its turn
                                    # has passed (as a stall); it
                                    # resumes next cycle.
                                    wake(
                                        watcher,
                                        cycle if watcher > index else cycle + 1,
                                    )
                continue
            if cycle - last_move[index] < SLEEP_AFTER_STALLS:
                continue
            hint = component.next_event_cycle(cycle + 1)
            if hint is not None and hint <= cycle + 1:
                last_move[index] = cycle
                continue
            awake[index] = False
            awake_count -= 1
            sleep_since[index] = cycle + 1
            sleep_tag[index] = component.stall_tag()
            timers[index] = hint
            if hint is not None and (next_timer is None or hint < next_timer):
                next_timer = hint
        cycle += 1


# ----------------------------------------------------------------------
# Stall diagnostics (for the run_until timeout error)
# ----------------------------------------------------------------------
def format_stall_report(components: list, cycle: int) -> str:
    """Human-readable snapshot of why the simulation is not progressing.

    Lists every reachable FIFO's occupancy/capacity/high-water mark and
    each merger's run state (done flags, feedback register), so a
    ``max_cycles`` timeout is diagnosable without re-running under a
    trace recorder.
    """
    fifos: dict[int, Fifo] = {}
    merger_lines: list[str] = []
    other_lines: list[str] = []
    for component in components:
        for fifo in _watched_fifos(component):
            fifos[id(fifo)] = fifo
        if hasattr(component, "_done_a") and hasattr(component, "_feedback"):
            merger_lines.append(
                f"    {getattr(component, 'name', type(component).__name__)}: "
                f"done_a={component._done_a} done_b={component._done_b} "
                f"feedback={'held' if component._feedback is not None else 'empty'} "
                f"run_in_progress={component.run_in_progress}"
            )
        elif hasattr(component, "_inflight_cycles_left"):
            exhausted = sum(1 for feed in component.feeds if feed.exhausted)
            other_lines.append(
                f"    loader: inflight_cycles_left={component._inflight_cycles_left} "
                f"parked_leaves={sorted(component._parked)} "
                f"feeds_exhausted={exhausted}/{len(component.feeds)}"
            )
        elif hasattr(component, "expected_runs"):
            other_lines.append(
                f"    writer: runs={len(component.runs)}/{component.expected_runs} "
                f"credit={component._credit:.1f}"
            )
    lines = [f"stall snapshot at cycle {cycle}:"]
    if fifos:
        lines.append("  fifos (occupancy/capacity, high-water):")
        for fifo in sorted(fifos.values(), key=lambda f: f.name):
            lines.append(
                f"    {fifo.name}: {len(fifo)}/{fifo.capacity} hw={fifo.high_water}"
            )
    if merger_lines:
        lines.append("  mergers:")
        lines.extend(sorted(merger_lines))
    if other_lines:
        lines.append("  endpoints:")
        lines.extend(other_lines)
    return "\n".join(lines)
