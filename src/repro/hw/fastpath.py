"""Cycle-exact event-driven fast path for the simulator.

The naive :class:`~repro.hw.clock.Simulation` loop ticks every component
on every cycle.  In the memory-bound configurations the paper cares most
about (§IV, Eq. 1-3) almost all of those ticks are *stall ticks*: the
loader is mid-way through a multi-cycle batch transfer, most of the tree
is starved or back-pressured, and each tick only increments a stall or
idle counter.  This engine skips those ticks without changing a single
observable number: cycle counts, per-merger statistics, loader/writer
statistics and the merged output are bit-identical to the naive stepper
(the differential suite in ``tests/hw/test_fastpath.py`` verifies this
across randomized shapes).

The quiescence protocol
-----------------------

A component opts in by implementing three methods next to ``tick``:

``next_event_cycle(cycle) -> int | None``
    The earliest cycle at which this component's ``tick`` might do real
    work — move an item, change shared state, branch differently —
    assuming **no other component mutates shared state in between**.
    ``cycle`` (or smaller) means "I may act right now"; a future cycle
    is a self-scheduled timer (the loader's in-flight batch transfer,
    the writer's bandwidth-credit refill); ``None`` means "only another
    component's push or pop can wake me".

``stall_tag() -> str | None``
    A label classifying what the component's stall ticks would count
    *under the current frozen state* (``"stall_output"`` vs
    ``"idle_cycles"``, bandwidth-limited vs idle, ...).  Captured when
    the component goes to sleep and re-captured at every re-arm, so the
    skipped window is always accounted under the tag that was valid
    while it was skipped.

``apply_stall(tag, n) -> None``
    Bulk-apply ``n`` skipped stall ticks' worth of bookkeeping for a
    captured ``tag``: the same counters a naive tick would have
    incremented ``n`` times, the same deterministic local state
    evolution (credit refill, transfer countdown), and nothing else.

``skip_cycles(n)`` (``= apply_stall(stall_tag(), n)``) is the immediate
form used when the state is known to still be frozen.

Two *optional* hooks refine the wiring:

``wake_fifos() -> list[Fifo]``
    The static set of FIFOs a component's tick can touch, for
    components whose ports are not direct dataclass fields (the loader
    reaches its leaf FIFOs through feed records).

``wake_fifos_now() -> list[Fifo]``
    The *dynamic* wake set: the FIFOs whose traffic can change this
    component's ``next_event_cycle``/``stall_tag`` answers **in its
    current state**.  Consulted at sleep time and after every re-arm.
    An in-flight loader with nothing parked returns ``[]`` (its only
    event is its own transfer timer); a starved merger returns just its
    empty input port (downstream pops draining its output cannot enable
    it).  Returning ``[]`` is a contract that no FIFO traffic affects
    the component until it next wakes.

The engine
----------

:func:`run_event_driven` keeps a per-component *awake* flag.  Awake
components tick normally, in list order, preserving the naive stepper's
intra-cycle semantics exactly.  Every :data:`SWEEP_INTERVAL_MIN` cycles
(backing off to :data:`SWEEP_INTERVAL_MAX` while nothing changes) a
*sleep sweep* asks each awake component for its next event; components
with no event due go to sleep, recording the cycle they slept from,
their stall tag, an optional timer, and their dynamic wake set.

Traffic on a registered FIFO does **not** blindly wake a sleeper.  The
engine flushes the sleeper's skipped-cycle accounting up to the event
boundary (the exact cycle whose tick first observes the new state —
this cycle for components later in tick order than the mover, the next
cycle for earlier ones) and re-asks ``next_event_cycle``:

* if the component can act at the boundary it wakes fully (and still
  ticks this cycle when its turn has not passed);
* otherwise it *re-arms*: new stall tag, new timer, new wake set, still
  asleep.  A starved merger whose output is being drained stays asleep
  through every downstream pop instead of thrashing awake.

When **no sleeper is FIFO-registered** (everyone asleep is timer-only
or traffic-independent) the engine drops into a dense loop: prebound
``tick`` calls, no movement detection at all, until the next timer,
sweep boundary or completion.  Compute-bound shapes where every
component is busy every cycle run the dense loop almost exclusively,
which is how the fast path stays at or above naive parity there.

When *no* component is awake the clock jumps straight to the earliest
timer (or the cycle budget, turning silent deadlocks into instant,
fully-accounted timeouts).

Components that do not implement the protocol (trace recorders, fault
injectors, pausing wrappers) disable the fast path for the whole run;
:class:`~repro.hw.clock.Simulation` silently degrades to the naive
loop.  See ``docs/performance.md`` for the full contract and the
argument for why the engines cannot diverge.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from heapq import heappop, heappush
from typing import Callable

from repro.errors import SimulationError
from repro.hw.fifo import Fifo

_PROTOCOL = ("next_event_cycle", "stall_tag", "apply_stall")

#: Cycles between sleep-candidacy sweeps while components keep acting.
#: A sweep asks every awake component for its next event, so sweeping
#: too often taxes compute-bound shapes; sweeping too rarely leaves
#: stalled components ticking.  Sweeps back off exponentially to
#: :data:`SWEEP_INTERVAL_MAX` while they find nothing to sleep and no
#: wake occurs, then snap back.
SWEEP_INTERVAL_MIN = 8
SWEEP_INTERVAL_MAX = 256

#: A sleep/wake round trip (wake-set registration, re-evaluation,
#: deregistration) costs roughly as much as this many skipped stall
#: ticks.  A component whose sleep turns out shorter than this was a
#: net loss, so it is barred from re-sleeping for
#: :data:`SLEEP_PENALTY_CYCLES` — components that stall in short bursts
#: (a merger starved every other cycle by its coupler) settle into
#: plain awake ticking, which is cheaper than churning.
MIN_SLEEP_CYCLES = 32
SLEEP_PENALTY_CYCLES = 1024

#: Re-arms (in-place re-evaluations triggered by registered-FIFO
#: traffic) tolerated per sleep window before the engine concludes the
#: wake set is too hot and wakes the component outright, with the same
#: re-sleep penalty as a too-short sleep.  Each re-arm re-derives the
#: stall tag, timer and wake set — several ticks' worth of work — so a
#: sleeper re-armed every few cycles is strictly worse than an awake
#: component counting stalls in plain ticks.
REARM_LIMIT = 8


def supports_fast_forward(components: list) -> bool:
    """True when every component implements the quiescence protocol."""
    return all(
        all(hasattr(component, method) for method in _PROTOCOL)
        for component in components
    )


def _component_fifos(component: object) -> list[Fifo]:
    """FIFOs referenced by a component's dataclass fields (one level)."""
    if not is_dataclass(component):
        return []
    out: list[Fifo] = []
    for spec in fields(component):
        value = getattr(component, spec.name, None)
        if isinstance(value, Fifo):
            out.append(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, Fifo):
                    out.append(item)
    return out


def _watched_fifos(component: object) -> list[Fifo]:
    """The full static set of FIFOs a component's tick can touch.

    Components whose ports are not direct dataclass fields (the loader
    reaches its leaf FIFOs through feed records) override the default
    via a ``wake_fifos()`` hook.
    """
    hook = getattr(component, "wake_fifos", None)
    if hook is not None:
        return list(hook())
    return _component_fifos(component)


def run_event_driven(
    components: list,
    cycle: int,
    done: Callable[[], bool],
    limit: int,
    max_cycles: int,
) -> int:
    """Run the event-driven scheduler; returns the final cycle number.

    Semantically identical to ticking every component on every cycle
    from ``cycle`` until ``done()`` or ``limit``: same final cycle, same
    statistics, same data movement.  Raises the same budget-exhausted
    :class:`~repro.errors.SimulationError` as the naive loop, with a
    stall snapshot appended.
    """
    n_components = len(components)
    order = list(components)
    ticks = [component.tick for component in order]
    dynamic_sets = [
        getattr(component, "wake_fifos_now", None) for component in order
    ]

    # Wiring: one slot per distinct FIFO; per-component adjacency (the
    # static touchable set) for movement detection; per-slot lists of
    # *currently registered sleepers* for event dispatch.
    slot_of: dict[int, int] = {}
    fifo_list: list[Fifo] = []
    slot_sleepers: list[list[int]] = []
    slot_touchers: list[list[int]] = []
    adjacency: list[list[tuple[Fifo, int]]] = []
    for component_index, component in enumerate(order):
        # bonsai-lint: disable=hot-loop-alloc -- wiring prologue runs once per simulation, before the cycle loop
        pairs: list[tuple[Fifo, int]] = []
        for fifo in _watched_fifos(component):
            slot = slot_of.get(id(fifo))
            if slot is None:
                slot = len(fifo_list)
                slot_of[id(fifo)] = slot
                fifo_list.append(fifo)
                # bonsai-lint: disable=hot-loop-alloc -- wiring prologue, one sleeper list per distinct FIFO
                slot_sleepers.append([])
                # bonsai-lint: disable=hot-loop-alloc -- wiring prologue, one toucher list per distinct FIFO
                slot_touchers.append([])
            pairs.append((fifo, slot))
            slot_touchers[slot].append(component_index)
        adjacency.append(pairs)
    traffic = [fifo.pushes + fifo.pops for fifo in fifo_list]
    # watch_count[i] > 0 iff some FIFO component i can touch has a
    # registered sleeper; maintained at register/deregister so awake
    # components with no sleeping neighbours tick at naive cost (no
    # movement detection at all).
    watch_count = [0] * n_components

    awake = [True] * n_components
    sleep_since = [0] * n_components
    slept_at = [0] * n_components
    sleep_tag: list = [None] * n_components
    timers: list = [None] * n_components
    reg_slots: list[tuple[int, ...]] = [()] * n_components
    awake_count = n_components
    registered_count = 0
    next_timer: int | None = None
    next_sweep = cycle + SWEEP_INTERVAL_MIN
    sweep_interval = SWEEP_INTERVAL_MIN
    dense_ticks: list = []
    dense_dirty = True
    # Sparse-mode iteration order: the indices awake at cycle start
    # (rebuilt lazily on any sleep/wake) plus a heap of components woken
    # *mid-cycle* by an earlier-ticking neighbour, which still owe a
    # tick this cycle.  Scales the per-cycle cost with the number of
    # awake components instead of the component count.
    awake_list: list[int] = []
    awake_dirty = True
    pending: list[int] = []
    # Churn guard: components whose last sleep was too short to pay for
    # itself are barred from re-sleeping until this cycle.
    no_sleep_before = [0] * n_components
    # Re-arm guard: in-place re-evaluations since each component last
    # went to sleep (see REARM_LIMIT).
    rearms = [0] * n_components

    def register(index: int) -> None:
        """Record the component's dynamic wake set in the slot tables."""
        nonlocal registered_count
        hook = dynamic_sets[index]
        fifos = hook() if hook is not None else [
            fifo for fifo, _slot in adjacency[index]
        ]
        slots = []
        for fifo in fifos:
            slot = slot_of.get(id(fifo))
            if slot is None:
                # A FIFO outside the static wiring (exotic component):
                # give it a slot so its traffic is still observable.
                slot = len(fifo_list)
                slot_of[id(fifo)] = slot
                fifo_list.append(fifo)
                slot_sleepers.append([])
                slot_touchers.append([])
                traffic.append(fifo.pushes + fifo.pops)
            sleepers = slot_sleepers[slot]
            if not sleepers:
                for toucher in slot_touchers[slot]:
                    watch_count[toucher] += 1
            sleepers.append(index)
            traffic[slot] = fifo.pushes + fifo.pops
            slots.append(slot)
        reg_slots[index] = tuple(slots)
        registered_count += len(slots)

    def deregister(index: int) -> None:
        nonlocal registered_count
        slots = reg_slots[index]
        for slot in slots:
            sleepers = slot_sleepers[slot]
            sleepers.remove(index)
            if not sleepers:
                for toucher in slot_touchers[slot]:
                    watch_count[toucher] -= 1
        registered_count -= len(slots)
        reg_slots[index] = ()

    def put_to_sleep(index: int, from_cycle: int, hint: int | None) -> None:
        nonlocal awake_count, next_timer, dense_dirty, awake_dirty
        awake[index] = False
        awake_count -= 1
        sleep_since[index] = from_cycle
        slept_at[index] = from_cycle
        rearms[index] = 0
        sleep_tag[index] = order[index].stall_tag()
        timers[index] = hint
        if hint is not None and (next_timer is None or hint < next_timer):
            next_timer = hint
        register(index)
        dense_dirty = True
        awake_dirty = True

    def wake(index: int, at_cycle: int) -> None:
        """Flush a sleeper's skipped window and mark it awake."""
        nonlocal awake_count, dense_dirty, awake_dirty
        nonlocal sweep_interval, next_sweep
        skipped = at_cycle - sleep_since[index]
        if skipped > 0:
            order[index].apply_stall(sleep_tag[index], skipped)
        if at_cycle - slept_at[index] < MIN_SLEEP_CYCLES:
            no_sleep_before[index] = at_cycle + SLEEP_PENALTY_CYCLES
        deregister(index)
        awake[index] = True
        timers[index] = None
        awake_count += 1
        dense_dirty = True
        awake_dirty = True
        if sweep_interval != SWEEP_INTERVAL_MIN:
            sweep_interval = SWEEP_INTERVAL_MIN
            boundary = at_cycle + sweep_interval
            if boundary < next_sweep:
                next_sweep = boundary

    def handle_event(watcher: int, mover: int) -> None:
        """A registered FIFO of a sleeping ``watcher`` saw traffic.

        Flush the watcher's accounting up to the event boundary — the
        first cycle whose (real or skipped) tick observes the new state:
        this cycle when the watcher ticks after the mover, the next one
        when its turn already passed — then either wake it (it can act
        at the boundary) or re-arm it in place with a fresh tag, timer
        and wake set.  Re-arming is what lets a component sleep through
        adjacent traffic that provably cannot enable it.
        """
        nonlocal next_timer
        component = order[watcher]
        boundary = cycle if watcher > mover else cycle + 1
        skipped = boundary - sleep_since[watcher]
        if skipped > 0:
            component.apply_stall(sleep_tag[watcher], skipped)
            sleep_since[watcher] = boundary
        hint = component.next_event_cycle(boundary)
        if hint is not None and hint <= boundary:
            deregister(watcher)
            _mark_awake(watcher)
            if watcher > mover:
                # The watcher's turn has not passed: it still owes a
                # tick this cycle, outside the cycle-start awake list.
                heappush(pending, watcher)
            return
        if rearms[watcher] >= REARM_LIMIT:
            # The wake set is too hot for sleeping to pay off: wake the
            # component outright (a spurious wake is naive-identical)
            # and bar re-sleep so it settles into plain ticking.
            no_sleep_before[watcher] = cycle + SLEEP_PENALTY_CYCLES
            deregister(watcher)
            _mark_awake(watcher)
            if watcher > mover:
                heappush(pending, watcher)
            return
        rearms[watcher] += 1
        sleep_tag[watcher] = component.stall_tag()
        timers[watcher] = hint
        if hint is not None and (next_timer is None or hint < next_timer):
            next_timer = hint
        # The state that justified the old wake set is gone; re-derive.
        deregister(watcher)
        register(watcher)

    def _mark_awake(index: int) -> None:
        nonlocal awake_count, dense_dirty, awake_dirty
        nonlocal sweep_interval, next_sweep
        if cycle - slept_at[index] < MIN_SLEEP_CYCLES:
            no_sleep_before[index] = cycle + SLEEP_PENALTY_CYCLES
        awake[index] = True
        timers[index] = None
        awake_count += 1
        dense_dirty = True
        awake_dirty = True
        if sweep_interval != SWEEP_INTERVAL_MIN:
            sweep_interval = SWEEP_INTERVAL_MIN
            boundary = cycle + sweep_interval
            if boundary < next_sweep:
                next_sweep = boundary

    def settle_all(at_cycle: int) -> None:
        for index in range(n_components):
            if not awake[index]:
                wake(index, at_cycle)

    def sweep(at_cycle: int) -> None:
        """Put every eventless awake component to sleep.

        Runs between cycles (``at_cycle`` is the next cycle to
        execute), so each component's answer reflects exactly the state
        its next tick would see.  Sleeping late is always safe — the
        extra awake ticks are naive-identical stall ticks — which is
        why candidacy can be batched instead of tracked per tick.
        """
        nonlocal sweep_interval, next_sweep
        slept = False
        for index in range(n_components):
            if not awake[index] or at_cycle < no_sleep_before[index]:
                continue
            component = order[index]
            hint = component.next_event_cycle(at_cycle)
            if hint is not None and hint <= at_cycle:
                continue
            put_to_sleep(index, at_cycle, hint)
            slept = True
        if slept:
            sweep_interval = SWEEP_INTERVAL_MIN
        elif sweep_interval < SWEEP_INTERVAL_MAX:
            sweep_interval = min(2 * sweep_interval, SWEEP_INTERVAL_MAX)
        next_sweep = at_cycle + sweep_interval

    while True:
        if next_timer is not None and next_timer <= cycle:
            next_timer = None
            for index in range(n_components):
                due = timers[index]
                if awake[index] or due is None:
                    continue
                if due <= cycle:
                    wake(index, cycle)
                elif next_timer is None or due < next_timer:
                    next_timer = due
        if done():
            settle_all(cycle)
            return cycle
        if cycle >= limit:
            settle_all(cycle)
            raise SimulationError(
                f"simulation did not complete within {max_cycles} cycles; "
                "likely deadlock or missing terminal\n"
                + format_stall_report(order, cycle)
            )
        if awake_count == 0:
            # Global quiescence: jump to the earliest self-scheduled
            # event, or straight to the budget boundary (deadlock).
            cycle = limit if next_timer is None else min(next_timer, limit)
            continue
        if cycle >= next_sweep:
            sweep(cycle)
            if awake_count == 0:
                continue
        if registered_count == 0:
            # Dense mode: every sleeper is timer-only (or declared
            # traffic-independent), so no per-tick movement detection
            # is needed — run a bare tick loop to the next boundary.
            end = next_sweep if next_sweep < limit else limit
            if next_timer is not None and next_timer < end:
                end = next_timer
            if dense_dirty:
                # bonsai-lint: disable=hot-loop-alloc -- rebuilt only on a sleep/wake transition, then reused across dense cycles
                dense_ticks = [
                    ticks[index] for index in range(n_components) if awake[index]
                ]
                dense_dirty = False
            while cycle < end:
                for tick in dense_ticks:
                    tick(cycle)
                cycle += 1
                if done():
                    break
            continue
        # Sparse mode: one cycle with exact per-tick event dispatch.
        # Iterate the cycle-start awake list in index order, merging in
        # components woken mid-cycle by an earlier neighbour (they tick
        # this cycle, preserving naive intra-cycle order exactly).
        # Components with no sleeping neighbour (watch_count 0) tick
        # without any movement detection — in busy phases that is most
        # of them, keeping sparse-mode ticks at naive cost.
        if awake_dirty:
            # bonsai-lint: disable=hot-loop-alloc -- rebuilt only on a sleep/wake transition, then reused across sparse cycles
            awake_list = [
                index for index in range(n_components) if awake[index]
            ]
            awake_dirty = False
        position = 0
        n_listed = len(awake_list)
        while True:
            if pending and (
                position >= n_listed or pending[0] < awake_list[position]
            ):
                index = heappop(pending)
            elif position < n_listed:
                index = awake_list[position]
                position += 1
            else:
                break
            if not watch_count[index]:
                ticks[index](cycle)
                continue
            ops_before = Fifo.total_ops
            ticks[index](cycle)
            if Fifo.total_ops == ops_before:
                continue
            for fifo, slot in adjacency[index]:
                sleepers = slot_sleepers[slot]
                if not sleepers:
                    continue
                seen = fifo.pushes + fifo.pops
                if seen == traffic[slot]:
                    continue
                traffic[slot] = seen
                for watcher in tuple(sleepers):
                    handle_event(watcher, index)
        cycle += 1


# ----------------------------------------------------------------------
# Stall diagnostics (for the run_until timeout error)
# ----------------------------------------------------------------------
def format_stall_report(components: list, cycle: int) -> str:
    """Human-readable snapshot of why the simulation is not progressing.

    Lists every reachable FIFO's occupancy/capacity/high-water mark and
    each merger's run state (done flags, feedback register), so a
    ``max_cycles`` timeout is diagnosable without re-running under a
    trace recorder.
    """
    fifos: dict[int, Fifo] = {}
    merger_lines: list[str] = []
    other_lines: list[str] = []
    for component in components:
        for fifo in _watched_fifos(component):
            fifos[id(fifo)] = fifo
        if hasattr(component, "_done_a") and hasattr(component, "_feedback"):
            merger_lines.append(
                f"    {getattr(component, 'name', type(component).__name__)}: "
                f"done_a={component._done_a} done_b={component._done_b} "
                f"feedback={'held' if component._feedback is not None else 'empty'} "
                f"run_in_progress={component.run_in_progress}"
            )
        elif hasattr(component, "_inflight_cycles_left"):
            exhausted = sum(1 for feed in component.feeds if feed.exhausted)
            other_lines.append(
                f"    loader: inflight_cycles_left={component._inflight_cycles_left} "
                f"parked_leaves={sorted(component._parked)} "
                f"feeds_exhausted={exhausted}/{len(component.feeds)}"
            )
        elif hasattr(component, "expected_runs"):
            other_lines.append(
                f"    writer: runs={len(component.runs)}/{component.expected_runs} "
                f"credit={component._credit:.1f}"
            )
    lines = [f"stall snapshot at cycle {cycle}:"]
    if fifos:
        lines.append("  fifos (occupancy/capacity, high-water):")
        for fifo in sorted(fifos.values(), key=lambda f: f.name):
            lines.append(
                f"    {fifo.name}: {len(fifo)}/{fifo.capacity} hw={fifo.high_water}"
            )
    if merger_lines:
        lines.append("  mergers:")
        lines.extend(sorted(merger_lines))
    if other_lines:
        lines.append("  endpoints:")
        lines.extend(other_lines)
    return "\n".join(lines)
