"""Fault injection and in-stream checking for the cycle simulator.

§V-A describes the paper's own robustness experiment: "we did not have
any input buffer become empty (unless we were pausing the data loader in
order to ensure the AMT behaves correctly with empty input buffers)".
:class:`PausingLoader` reproduces that experiment — it freezes the data
loader over a cycle window so leaf FIFOs drain and the tree must stall
and recover without corrupting the merge.

:class:`FaultInjector` models a datapath upset (a flipped key bit on one
tuple), and :class:`SortednessMonitor` is the in-stream checker that
catches it: it watches a FIFO's traffic and raises the moment a run
stops being non-decreasing.  Together they verify the end-to-end checkers
actually detect what they claim to detect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.hw.fifo import Fifo
from repro.hw.loader import DataLoader
from repro.hw.terminal import SENTINEL_KEY, is_terminal


@dataclass
class PausingLoader:
    """Wraps a :class:`DataLoader`, freezing it over ``[start, stop)``.

    While paused the loader performs no work at all; downstream FIFOs
    drain and mergers stall on empty inputs — the behaviour §V-A's
    experiment provokes on the FPGA.
    """

    inner: DataLoader
    pause_start: int
    pause_stop: int
    paused_cycles: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.pause_start < 0 or self.pause_stop < self.pause_start:
            raise SimulationError(
                f"bad pause window [{self.pause_start}, {self.pause_stop})"
            )

    @property
    def done(self) -> bool:
        """Delegates to the wrapped loader."""
        return self.inner.done

    @property
    def stats(self):
        """Delegates to the wrapped loader's statistics."""
        return self.inner.stats

    def tick(self, cycle: int = 0) -> None:
        """Freeze inside the pause window; otherwise run the loader."""
        if self.pause_start <= cycle < self.pause_stop:
            self.paused_cycles += 1
            return
        self.inner.tick(cycle)


@dataclass
class FaultInjector:
    """Passes tuples between two FIFOs, corrupting one key once.

    Parameters
    ----------
    trigger_tuple:
        Ordinal of the tuple whose first record gets its key XOR-flipped.
    flip_mask:
        Bit pattern XORed into the key.
    """

    input: Fifo
    output: Fifo
    trigger_tuple: int
    flip_mask: int = 1 << 20
    tuples_seen: int = field(init=False, default=0)
    faults_injected: int = field(init=False, default=0)

    def tick(self, cycle: int = 0) -> None:
        """Forward one item, corrupting the trigger tuple's first key."""
        if self.input.is_empty or self.output.is_full:
            return
        item = self.input.pop()
        if not is_terminal(item):
            if self.tuples_seen == self.trigger_tuple:
                corrupted = (item[0] ^ self.flip_mask,) + tuple(item[1:])
                item = corrupted
                self.faults_injected += 1
            self.tuples_seen += 1
        self.output.push(item)


@dataclass
class SortednessMonitor:
    """Streams tuples through, asserting each run is non-decreasing.

    Sits between two FIFOs like a piece of datapath; raises
    :class:`SimulationError` at the cycle a violation passes through —
    the simulator analogue of an on-chip result checker.
    """

    input: Fifo
    output: Fifo
    name: str = "monitor"
    _previous: int | None = field(init=False, default=None)
    records_checked: int = field(init=False, default=0)
    runs_checked: int = field(init=False, default=0)

    def tick(self, cycle: int = 0) -> None:
        """Forward one item, asserting run order on the way through."""
        if self.input.is_empty or self.output.is_full:
            return
        item = self.input.pop()
        if is_terminal(item):
            self._previous = None
            self.runs_checked += 1
        else:
            for key in item:
                if key == SENTINEL_KEY:
                    continue
                if self._previous is not None and key < self._previous:
                    raise SimulationError(
                        f"{self.name}: run order violated at cycle {cycle}: "
                        f"{key} after {self._previous}"
                    )
                self._previous = key
                self.records_checked += 1
        self.output.push(item)
