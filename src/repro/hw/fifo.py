"""Bounded FIFOs with stall semantics (§V-A).

"Each leaf has an input buffer that is implemented as a FIFO, which is as
wide as the DRAM bus (512 bits) and can hold two full read batches."

Capacity is measured in stream items (tuples or terminal markers).  A push
into a full FIFO raises :class:`~repro.errors.SimulationError` — producers
are expected to check :attr:`has_space` first, which is exactly the stall
behaviour of the hardware handshake.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass
class Fifo:
    """A bounded first-in-first-out queue between two components.

    Parameters
    ----------
    capacity:
        Maximum number of items held (tuples or terminal markers).
    name:
        Label used in statistics and error messages.
    """

    capacity: int
    name: str = "fifo"
    _items: deque = field(default_factory=deque, repr=False)
    #: statistics
    pushes: int = 0
    pops: int = 0
    high_water: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise SimulationError(f"FIFO capacity must be >= 1, got {self.capacity}")

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        """True when nothing is queued."""
        return not self._items

    @property
    def is_full(self) -> bool:
        """True when at capacity; a push now would raise."""
        return len(self._items) >= self.capacity

    @property
    def has_space(self) -> bool:
        """True when at least one more item fits."""
        return len(self._items) < self.capacity

    def free_slots(self) -> int:
        """Number of additional items the FIFO can accept."""
        return self.capacity - len(self._items)

    def push(self, item: object) -> None:
        """Enqueue one item; raises when full (producer missed a stall)."""
        if self.is_full:
            raise SimulationError(f"push into full FIFO {self.name!r}")
        self._items.append(item)
        self.pushes += 1
        if len(self._items) > self.high_water:
            self.high_water = len(self._items)

    def peek(self) -> object:
        """The oldest item without removing it; raises when empty."""
        if not self._items:
            raise SimulationError(f"peek into empty FIFO {self.name!r}")
        return self._items[0]

    def pop(self) -> object:
        """Dequeue the oldest item; raises when empty."""
        if not self._items:
            raise SimulationError(f"pop from empty FIFO {self.name!r}")
        self.pops += 1
        return self._items.popleft()

    def drain(self) -> list:
        """Remove and return all items (used when tearing a stage down)."""
        out = list(self._items)
        self.pops += len(out)
        self._items.clear()
        return out
