"""Bounded FIFOs with stall semantics (§V-A).

"Each leaf has an input buffer that is implemented as a FIFO, which is as
wide as the DRAM bus (512 bits) and can hold two full read batches."

Capacity is measured in stream items (tuples or terminal markers).  A push
into a full FIFO raises :class:`~repro.errors.SimulationError` — producers
are expected to check :attr:`has_space` first, which is exactly the stall
behaviour of the hardware handshake.

Besides the per-item handshake the FIFO exposes a bulk surface —
:meth:`push_many`, :meth:`pop_many` and :meth:`peek_many` — for components
that move whole batches in one cycle (the data loader's burst delivery and
the output writer's credit-bounded drain).  Bulk calls are strictly
equivalent to the corresponding sequence of single-item calls: same
ordering, same statistics, same overflow/underflow errors.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass(slots=True)
class Fifo:
    """A bounded first-in-first-out queue between two components.

    Parameters
    ----------
    capacity:
        Maximum number of items held (tuples or terminal markers).
    name:
        Label used in statistics and error messages.
    """

    #: Class-wide monotonic count of push/pop operations across *all*
    #: FIFOs.  The event-driven scheduler snapshots it around a tick to
    #: learn, with two integer loads, whether the tick moved any data at
    #: all — only then does it scan per-FIFO counters to see which.
    total_ops = 0

    capacity: int
    name: str = "fifo"
    _items: deque = field(default_factory=deque, repr=False)
    #: statistics
    pushes: int = 0
    pops: int = 0
    high_water: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise SimulationError(f"FIFO capacity must be >= 1, got {self.capacity}")

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        """True when nothing is queued."""
        return not self._items

    @property
    def is_full(self) -> bool:
        """True when at capacity; a push now would raise."""
        return len(self._items) >= self.capacity

    @property
    def has_space(self) -> bool:
        """True when at least one more item fits."""
        return len(self._items) < self.capacity

    def free_slots(self) -> int:
        """Number of additional items the FIFO can accept."""
        return self.capacity - len(self._items)

    def push(self, item: object) -> None:
        """Enqueue one item; raises when full (producer missed a stall)."""
        items = self._items
        if len(items) >= self.capacity:
            raise SimulationError(f"push into full FIFO {self.name!r}")
        items.append(item)
        self.pushes += 1
        # bonsai-lint: disable=proc-global-write -- per-process scheduling counter; the fastpath reads it only within one process and no result depends on it
        Fifo.total_ops += 1
        if len(items) > self.high_water:
            self.high_water = len(items)

    def push_many(self, batch: list) -> None:
        """Enqueue a sequence of items in order; raises when they overflow.

        Equivalent to ``for item in batch: self.push(item)`` but with one
        capacity check and one statistics update.  Either the whole batch
        fits or nothing is enqueued.
        """
        items = self._items
        if len(items) + len(batch) > self.capacity:
            raise SimulationError(
                f"push of {len(batch)} items overflows FIFO {self.name!r} "
                f"({self.capacity - len(items)} slots free)"
            )
        items.extend(batch)
        self.pushes += len(batch)
        Fifo.total_ops += len(batch)
        if len(items) > self.high_water:
            self.high_water = len(items)

    def peek(self) -> object:
        """The oldest item without removing it; raises when empty."""
        if not self._items:
            raise SimulationError(f"peek into empty FIFO {self.name!r}")
        return self._items[0]

    def peek_many(self, limit: int) -> list:
        """The oldest ``limit`` items (or fewer) without removing them."""
        if limit < 0:
            raise SimulationError(f"peek_many limit must be >= 0, got {limit}")
        items = self._items
        if limit >= len(items):
            return list(items)
        return [items[index] for index in range(limit)]

    def pop(self) -> object:
        """Dequeue the oldest item; raises when empty."""
        if not self._items:
            raise SimulationError(f"pop from empty FIFO {self.name!r}")
        self.pops += 1
        # bonsai-lint: disable=proc-global-write -- per-process scheduling counter; the fastpath reads it only within one process and no result depends on it
        Fifo.total_ops += 1
        return self._items.popleft()

    def pop_many(self, count: int) -> list:
        """Dequeue the oldest ``count`` items in order; raises on underflow.

        Equivalent to ``[self.pop() for _ in range(count)]``: either all
        ``count`` items are returned or nothing is dequeued.
        """
        items = self._items
        if count < 0 or count > len(items):
            raise SimulationError(
                f"pop of {count} items from FIFO {self.name!r} "
                f"holding {len(items)}"
            )
        popleft = items.popleft
        out = [popleft() for _ in range(count)]
        self.pops += count
        Fifo.total_ops += count
        return out

    def drain(self) -> list:
        """Remove and return all items (used when tearing a stage down)."""
        out = list(self._items)
        self.pops += len(out)
        Fifo.total_ops += len(out)
        self._items.clear()
        return out
