"""The data loader (§V-A) and the symmetric output writer.

"The data loader checks in a round-robin fashion if any input buffer has
enough free space to hold a new read batch.  Whenever the data loader
encounters an input buffer with sufficient free space, it performs a
batched load into the buffer. [...] Due to batched and sequential
reads/writes, the data loader allows the off-chip memory to operate at
peak bandwidth."

The loader owns one run queue per leaf.  Batches share a single memory
port: one batch transfer is in flight at a time and takes
``ceil(batch_bytes / read_bytes_per_cycle)`` cycles, so aggregate read
bandwidth is capped exactly at the configured budget.  After the final
batch of a run, a terminal marker follows the data into the leaf FIFO,
and partial tail tuples are padded with max-key sentinels.

The :class:`OutputWriter` drains the tree root under the write-bandwidth
budget, splits the stream back into runs at terminal markers, and filters
pad sentinels — the "zero filter" of Fig. 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import SimulationError
from repro.hw.fifo import Fifo
from repro.hw.probes import LoaderStats
from repro.hw.terminal import TERMINAL, SENTINEL_KEY, is_terminal


@dataclass
class _LeafFeed:
    """Pending input of one leaf: a queue of runs, each a list of keys."""

    fifo: Fifo
    runs: list[list[int]]
    run_index: int = 0
    offset: int = 0

    @property
    def exhausted(self) -> bool:
        """True once every run (and its terminal) has been issued."""
        return self.run_index >= len(self.runs)


@dataclass
class DataLoader:
    """Round-robin batched reader feeding the leaf FIFOs.

    Parameters
    ----------
    feeds:
        One :class:`_LeafFeed` per leaf, built via :func:`make_feeds`.
    tuple_width:
        Records per leaf tuple (the deepest mergers' k).
    record_bytes:
        Record width ``r``.
    read_bytes_per_cycle:
        Memory read budget per cycle (``beta_read / f``).
    batch_bytes:
        Read batch size ``b`` (Table II); 1-4 KB per the paper.
    """

    feeds: list[_LeafFeed]
    tuple_width: int
    record_bytes: int
    read_bytes_per_cycle: float
    batch_bytes: int
    stats: LoaderStats = field(default_factory=LoaderStats)

    _cursor: int = field(init=False, default=0)
    _inflight_feed: _LeafFeed | None = field(init=False, default=None, repr=False)
    _inflight_index: int = field(init=False, default=0)
    _inflight_items: list = field(init=False, default_factory=list, repr=False)
    _inflight_cycles_left: int = field(init=False, default=0)
    #: per-feed skid buffers: transferred items awaiting FIFO space
    _parked: dict = field(init=False, default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.tuple_width < 1:
            raise SimulationError("tuple width must be >= 1")
        if self.record_bytes < 1:
            raise SimulationError("record width must be >= 1 byte")
        if self.read_bytes_per_cycle <= 0:
            raise SimulationError("read budget must be positive")
        if self.batch_bytes < self.record_bytes:
            raise SimulationError("batch must hold at least one record")

    @property
    def batch_records(self) -> int:
        """Records per full batch."""
        return max(self.tuple_width, self.batch_bytes // self.record_bytes)

    @property
    def done(self) -> bool:
        """True once every leaf's runs (and terminals) are delivered."""
        return (
            self._inflight_feed is None
            and not self._parked
            and all(f.exhausted for f in self.feeds)
        )

    def tick(self, cycle: int = 0) -> None:
        """Advance one cycle: progress the in-flight batch or start one.

        Issuing a batch counts as its first transfer cycle, so a batch
        needing ``c`` bandwidth-cycles is delivered exactly ``c`` ticks
        after issue.  Parked items (already transferred, awaiting FIFO
        space) drain opportunistically every cycle — the AXI skid-buffer
        behaviour — so a full leaf FIFO never blocks other leaves.
        """
        self._flush_parked()
        if self._inflight_feed is None:
            feed = self._pick_feed()
            if feed is None:
                self.stats.cycles_idle += 1
                return
            self._start_batch(feed)
        self._inflight_cycles_left -= 1
        self.stats.cycles_bandwidth_limited += 1
        if self._inflight_cycles_left <= 0:
            self._deliver()

    # ------------------------------------------------------------------
    # quiescence protocol (repro.hw.fastpath)
    # ------------------------------------------------------------------
    def next_event_cycle(self, cycle: int) -> int | None:
        """Next cycle this loader does real work, or ``None`` if starved.

        The only time-based event the loader owns is the in-flight batch
        timer: a transfer with ``t`` bandwidth-cycles left delivers on
        the tick ``t - 1`` cycles from now.  Everything else — skid
        buffers draining, a new batch issuing — depends on FIFO space
        and fires immediately or not at all under frozen FIFOs.
        """
        if self._parked:
            for index in self._parked:
                if self.feeds[index].fifo.has_space:
                    return cycle
        if self._inflight_feed is not None:
            remaining = self._inflight_cycles_left
            return cycle if remaining <= 1 else cycle + remaining - 1
        if self._find_feed() is not None:
            return cycle
        return None

    def stall_tag(self) -> str:
        """What the loader's skipped ticks account as right now.

        Valid while the leaf FIFOs are frozen: a transfer stays in
        flight (only the loader's own tick delivers it), and an idle
        loader stays idle (a feed only becomes startable when a leaf
        FIFO frees space, which wakes the loader).
        """
        return "bandwidth" if self._inflight_feed is not None else "idle"

    def apply_stall(self, tag: str, n_cycles: int) -> None:
        """Bulk-apply ``n_cycles`` quiescent ticks: advance the batch
        timer (bandwidth-limited cycles) or count idle cycles."""
        if tag == "bandwidth":
            self._inflight_cycles_left -= n_cycles
            self.stats.cycles_bandwidth_limited += n_cycles
        else:
            self.stats.cycles_idle += n_cycles

    def skip_cycles(self, n_cycles: int) -> None:
        """Immediate form of :meth:`apply_stall` (see fastpath docs)."""
        self.apply_stall(self.stall_tag(), n_cycles)

    def wake_fifos(self) -> list[Fifo]:
        """FIFOs whose traffic affects this loader (fastpath wiring).

        The leaf FIFOs are reached through feed records rather than
        direct fields, so the default dataclass-field scan cannot see
        them.
        """
        return [feed.fifo for feed in self.feeds]

    def wake_fifos_now(self) -> list[Fifo]:
        """FIFOs whose traffic can change this loader's *current* answers.

        Mid-transfer with nothing parked the loader is timer-only: feed
        FIFOs are not consulted until the batch delivers, so leaf
        traffic cannot affect ``next_event_cycle``/``stall_tag`` and the
        set is empty.  Parked leaves are always watched (a pop frees
        skid-buffer space); when no transfer is in flight, every
        non-exhausted, non-parked feed is watched because
        ``_find_feed`` scans their free space.  Everything this method
        reads (``_parked``, ``_inflight_feed``, ``exhausted``) is
        mutated only by the loader's own tick, so the set stays valid
        for the whole sleep.
        """
        parked = self._parked
        fifos = [self.feeds[index].fifo for index in parked]
        if self._inflight_feed is None:
            for index, feed in enumerate(self.feeds):
                if feed.exhausted or index in parked:
                    continue
                fifos.append(feed.fifo)
        return fifos

    # ------------------------------------------------------------------
    def _find_feed(self) -> int | None:
        """Round-robin scan for a leaf with pending data and buffer space.

        "Enough free space to hold a new read batch" (§V-A) is measured
        against the typical batch footprint; the rare batch carrying many
        run terminals overflows into the skid buffer instead.  Pure scan:
        the cursor moves only when :meth:`_pick_feed` commits to a feed.
        """
        n_feeds = len(self.feeds)
        batch_tuples = -(-self.batch_records // self.tuple_width)
        for step in range(n_feeds):
            index = (self._cursor + step) % n_feeds
            feed = self.feeds[index]
            if feed.exhausted or index in self._parked:
                continue
            if feed.fifo.free_slots() >= batch_tuples + 1:
                return index
        return None

    def _pick_feed(self) -> _LeafFeed | None:
        """Commit to the next feed chosen by :meth:`_find_feed`."""
        index = self._find_feed()
        if index is None:
            return None
        self._cursor = (index + 1) % len(self.feeds)
        self._inflight_index = index
        return self.feeds[index]

    def _start_batch(self, feed: _LeafFeed) -> None:
        """Carve the next batch out of the feed's pending runs.

        A leaf's runs occupy consecutive DRAM addresses, so one burst may
        span several short runs; terminal markers are interleaved at run
        boundaries (the zero-append of §V-B operates on the same stream).
        """
        items: list = []
        taken = 0
        batch_records = self.batch_records
        tuple_width = self.tuple_width
        pad_row = (SENTINEL_KEY,) * tuple_width
        while taken < batch_records and not feed.exhausted:
            run = feed.runs[feed.run_index]
            offset = feed.offset
            remaining = len(run) - offset
            take = min(batch_records - taken, remaining)
            if take:
                # the slice is already a fresh list the chunking below
                # owns; copying it again would double the allocation
                records = run[offset : offset + take]
                offset += take
                feed.offset = offset
                taken += take
                if tuple_width == 1:
                    # Burst lane: leaf tuples are single records, so the
                    # batch maps 1:1 onto rows without slicing.
                    # bonsai-lint: disable=hot-loop-alloc -- the per-record row tuples ARE the delivered payload; no slicing overhead remains to hoist
                    items.extend((record,) for record in records)
                else:
                    for start in range(0, len(records), tuple_width):
                        chunk = tuple(records[start : start + tuple_width])
                        if len(chunk) < tuple_width:
                            chunk = chunk + pad_row[: tuple_width - len(chunk)]
                        items.append(chunk)
            if offset >= len(run):
                items.append(TERMINAL)
                feed.run_index += 1
                feed.offset = 0
                self.stats.runs_fed += 1
            else:
                break  # batch quota hit mid-run
        batch_size_bytes = max(taken, 1) * self.record_bytes
        self._inflight_feed = feed
        self._inflight_items = items
        self._inflight_cycles_left = max(
            1, math.ceil(batch_size_bytes / self.read_bytes_per_cycle)
        )
        self.stats.batches_issued += 1
        self.stats.bytes_loaded += taken * self.record_bytes

    def _deliver(self) -> None:
        """Push the completed batch into its leaf FIFO; park any overflow."""
        feed = self._inflight_feed
        leftover = self._push_items(feed, self._inflight_items)
        if leftover:
            self._parked[self._inflight_index] = leftover
        self._inflight_feed = None
        self._inflight_items = []

    def _flush_parked(self) -> None:
        """Drain skid buffers into their FIFOs as space allows."""
        parked = self._parked
        for index in list(parked):
            feed = self.feeds[index]
            leftover = self._push_items(feed, parked[index])
            if leftover:
                parked[index] = leftover
            else:
                del parked[index]

    @staticmethod
    def _push_items(feed: _LeafFeed, items: list) -> list:
        """Push items until the FIFO fills; return the remainder.

        One bulk transfer per call: statistics and ordering are
        identical to pushing item by item, without the per-item
        handshake overhead.
        """
        count = min(len(items), feed.fifo.free_slots())
        if not count:
            return items
        feed.fifo.push_many(items[:count])
        return items[count:]


def _bit_reverse(value: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``value``."""
    out = 0
    for _ in range(bits):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


def make_feeds(
    leaf_fifos: Sequence[Fifo], runs: Sequence[Sequence[int]], n_leaves: int
) -> list[_LeafFeed]:
    """Distribute stage-input runs across leaves.

    Output run ``j`` merges input runs ``[j * l, (j + 1) * l)`` — the
    paper's recursive stage semantics (§II).  Within a group, run ``j``
    feeds leaf ``bitrev(j)``: bit-reversed placement spreads a partial
    final group evenly over both subtrees of every merger, so a stage
    with fewer runs than leaves still keeps the root's two ports
    balanced at full throughput (consecutive placement would starve one
    subtree entirely and halve the stage rate).  Merging is commutative,
    so the placement does not change the output.  Leaves short of a run
    receive an empty run (terminal only).
    """
    if len(leaf_fifos) != n_leaves:
        raise SimulationError(
            f"expected {n_leaves} leaf FIFOs, got {len(leaf_fifos)}"
        )
    depth = max(0, n_leaves.bit_length() - 1)
    if (1 << depth) != n_leaves:
        raise SimulationError(f"leaf count must be a power of two, got {n_leaves}")
    n_groups = max(1, -(-len(runs) // n_leaves))
    feeds = []
    for leaf in range(n_leaves):
        position = _bit_reverse(leaf, depth)
        # bonsai-lint: disable=hot-loop-alloc -- feed construction runs once per stage arm, not per record
        leaf_runs: list[list[int]] = []
        for group in range(n_groups):
            index = group * n_leaves + position
            # bonsai-lint: disable=hot-loop-alloc -- per-arm copy of each input run, not per-record work
            leaf_runs.append(list(runs[index]) if index < len(runs) else [])
        feeds.append(_LeafFeed(fifo=leaf_fifos[leaf], runs=leaf_runs))
    return feeds


@dataclass
class OutputWriter:
    """Drains the root FIFO under a write-bandwidth budget.

    Accumulates whole output runs (split at terminals) with pad
    sentinels removed, and tracks byte traffic for bandwidth accounting.
    """

    source: Fifo
    record_bytes: int
    write_bytes_per_cycle: float
    expected_runs: int

    runs: list[list[int]] = field(init=False, default_factory=list)
    _current: list[int] = field(init=False, default_factory=list)
    _credit: float = field(init=False, default=0.0)
    bytes_written: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.write_bytes_per_cycle <= 0:
            raise SimulationError("write budget must be positive")
        if self.expected_runs < 1:
            raise SimulationError("writer expects at least one output run")

    @property
    def done(self) -> bool:
        """True once every expected output run has been collected."""
        return len(self.runs) >= self.expected_runs

    def tick(self, cycle: int = 0) -> None:
        """Pop as many items as this cycle's write budget allows.

        The affordable prefix of the source FIFO is computed first, then
        moved in one bulk ``pop_many`` — credit arithmetic runs in the
        same item order as a per-item drain, so the float credit state
        (and therefore every future pop cycle) is bit-identical.
        """
        rate = self.write_bytes_per_cycle
        credit = min(self._credit + rate, 4 * rate)
        source = self.source
        record_bytes = self.record_bytes
        count = 0
        for head in source.peek_many(len(source)):
            if is_terminal(head):
                count += 1
                continue
            cost = len(head) * record_bytes
            if credit < cost:
                break
            credit -= cost
            count += 1
        self._credit = credit
        if not count:
            return
        current = self._current
        for head in source.pop_many(count):
            if is_terminal(head):
                self.runs.append(current)
                # bonsai-lint: disable=hot-loop-alloc -- fresh run buffer at a run boundary (once per run, not per record)
                current = []
                continue
            if SENTINEL_KEY in head:
                # Pad sentinels appear only in a run's final tuples;
                # the common path extends in place without filtering.
                # bonsai-lint: disable=hot-loop-alloc -- sentinel strip runs only on the rare padded tuple
                kept = [key for key in head if key != SENTINEL_KEY]
                current.extend(kept)
                self.bytes_written += len(kept) * record_bytes
            else:
                current.extend(head)
                self.bytes_written += len(head) * record_bytes
        self._current = current

    # ------------------------------------------------------------------
    # quiescence protocol (repro.hw.fastpath)
    # ------------------------------------------------------------------
    def next_event_cycle(self, cycle: int) -> int | None:
        """Next cycle a pop becomes affordable, or ``None`` if starved.

        With the source frozen, the only self-scheduled event is the
        bandwidth-credit refill reaching the head tuple's cost.  The
        refill is iterated with the exact per-tick float arithmetic
        (``min(credit + rate, 4 * rate)``) so the predicted pop cycle
        matches the naive stepper bit for bit; the loop saturates within
        four iterations because the credit cap is four ticks' worth.
        """
        source = self.source
        if source.is_empty:
            return None
        head = source.peek()
        if is_terminal(head):
            return cycle
        rate = self.write_bytes_per_cycle
        cap = 4 * rate
        cost = len(head) * self.record_bytes
        credit = self._credit
        waited = 0
        while True:
            credit = min(credit + rate, cap)
            if credit >= cost:
                return cycle + waited
            if credit >= cap:
                return None  # head costs more than the cap: stuck for good
            waited += 1

    def stall_tag(self) -> str:
        """Writer stalls always account the same way: credit accrual."""
        return "accrue"

    def apply_stall(self, tag: str, n_cycles: int) -> None:
        """Bulk-apply ``n_cycles`` of credit refill (no pops possible).

        Iterates the exact per-tick float arithmetic rather than closing
        the form, so the credit register lands on the bit pattern the
        naive stepper would produce; the loop saturates at the cap
        within four iterations regardless of ``n_cycles``.
        """
        rate = self.write_bytes_per_cycle
        cap = 4 * rate
        credit = self._credit
        for _ in range(n_cycles):
            if credit >= cap:
                break
            credit = min(credit + rate, cap)
        self._credit = credit

    def skip_cycles(self, n_cycles: int) -> None:
        """Immediate form of :meth:`apply_stall` (see fastpath docs)."""
        self.apply_stall(self.stall_tag(), n_cycles)

    def wake_fifos_now(self) -> list[Fifo]:
        """Dynamic wake set: the source only matters while it is empty.

        A non-empty source pins the head tuple in place (the writer is
        its only consumer), so upstream pushes cannot change
        ``next_event_cycle``'s answer — the writer is waiting purely on
        its credit-refill timer (or is stuck for good) and sleeps
        through root traffic instead of being re-woken by every push.
        """
        return [self.source] if self.source.is_empty else []
