"""The data loader (§V-A) and the symmetric output writer.

"The data loader checks in a round-robin fashion if any input buffer has
enough free space to hold a new read batch.  Whenever the data loader
encounters an input buffer with sufficient free space, it performs a
batched load into the buffer. [...] Due to batched and sequential
reads/writes, the data loader allows the off-chip memory to operate at
peak bandwidth."

The loader owns one run queue per leaf.  Batches share a single memory
port: one batch transfer is in flight at a time and takes
``ceil(batch_bytes / read_bytes_per_cycle)`` cycles, so aggregate read
bandwidth is capped exactly at the configured budget.  After the final
batch of a run, a terminal marker follows the data into the leaf FIFO,
and partial tail tuples are padded with max-key sentinels.

The :class:`OutputWriter` drains the tree root under the write-bandwidth
budget, splits the stream back into runs at terminal markers, and filters
pad sentinels — the "zero filter" of Fig. 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import SimulationError
from repro.hw.fifo import Fifo
from repro.hw.probes import LoaderStats
from repro.hw.terminal import TERMINAL, SENTINEL_KEY, is_terminal


@dataclass
class _LeafFeed:
    """Pending input of one leaf: a queue of runs, each a list of keys."""

    fifo: Fifo
    runs: list[list[int]]
    run_index: int = 0
    offset: int = 0

    @property
    def exhausted(self) -> bool:
        """True once every run (and its terminal) has been issued."""
        return self.run_index >= len(self.runs)


@dataclass
class DataLoader:
    """Round-robin batched reader feeding the leaf FIFOs.

    Parameters
    ----------
    feeds:
        One :class:`_LeafFeed` per leaf, built via :func:`make_feeds`.
    tuple_width:
        Records per leaf tuple (the deepest mergers' k).
    record_bytes:
        Record width ``r``.
    read_bytes_per_cycle:
        Memory read budget per cycle (``beta_read / f``).
    batch_bytes:
        Read batch size ``b`` (Table II); 1-4 KB per the paper.
    """

    feeds: list[_LeafFeed]
    tuple_width: int
    record_bytes: int
    read_bytes_per_cycle: float
    batch_bytes: int
    stats: LoaderStats = field(default_factory=LoaderStats)

    _cursor: int = field(init=False, default=0)
    _inflight_feed: _LeafFeed | None = field(init=False, default=None, repr=False)
    _inflight_items: list = field(init=False, default_factory=list, repr=False)
    _inflight_cycles_left: int = field(init=False, default=0)
    #: per-feed skid buffers: transferred items awaiting FIFO space
    _parked: dict = field(init=False, default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.tuple_width < 1:
            raise SimulationError("tuple width must be >= 1")
        if self.record_bytes < 1:
            raise SimulationError("record width must be >= 1 byte")
        if self.read_bytes_per_cycle <= 0:
            raise SimulationError("read budget must be positive")
        if self.batch_bytes < self.record_bytes:
            raise SimulationError("batch must hold at least one record")

    @property
    def batch_records(self) -> int:
        """Records per full batch."""
        return max(self.tuple_width, self.batch_bytes // self.record_bytes)

    @property
    def done(self) -> bool:
        """True once every leaf's runs (and terminals) are delivered."""
        return (
            self._inflight_feed is None
            and not self._parked
            and all(f.exhausted for f in self.feeds)
        )

    def tick(self, cycle: int = 0) -> None:
        """Advance one cycle: progress the in-flight batch or start one.

        Issuing a batch counts as its first transfer cycle, so a batch
        needing ``c`` bandwidth-cycles is delivered exactly ``c`` ticks
        after issue.  Parked items (already transferred, awaiting FIFO
        space) drain opportunistically every cycle — the AXI skid-buffer
        behaviour — so a full leaf FIFO never blocks other leaves.
        """
        self._flush_parked()
        if self._inflight_feed is None:
            feed = self._pick_feed()
            if feed is None:
                self.stats.cycles_idle += 1
                return
            self._start_batch(feed)
        self._inflight_cycles_left -= 1
        self.stats.cycles_bandwidth_limited += 1
        if self._inflight_cycles_left <= 0:
            self._deliver()

    # ------------------------------------------------------------------
    def _pick_feed(self) -> _LeafFeed | None:
        """Round-robin scan for a leaf with pending data and buffer space.

        "Enough free space to hold a new read batch" (§V-A) is measured
        against the typical batch footprint; the rare batch carrying many
        run terminals overflows into the skid buffer instead.
        """
        n_feeds = len(self.feeds)
        batch_tuples = -(-self.batch_records // self.tuple_width)
        for step in range(n_feeds):
            index = (self._cursor + step) % n_feeds
            feed = self.feeds[index]
            if feed.exhausted or index in self._parked:
                continue
            if feed.fifo.free_slots() >= batch_tuples + 1:
                self._cursor = (index + 1) % n_feeds
                return feed
        return None

    def _start_batch(self, feed: _LeafFeed) -> None:
        """Carve the next batch out of the feed's pending runs.

        A leaf's runs occupy consecutive DRAM addresses, so one burst may
        span several short runs; terminal markers are interleaved at run
        boundaries (the zero-append of §V-B operates on the same stream).
        """
        items: list = []
        taken = 0
        while taken < self.batch_records and not feed.exhausted:
            run = feed.runs[feed.run_index]
            remaining = len(run) - feed.offset
            take = min(self.batch_records - taken, remaining)
            if take:
                records = list(run[feed.offset : feed.offset + take])
                feed.offset += take
                taken += take
                for start in range(0, len(records), self.tuple_width):
                    chunk = records[start : start + self.tuple_width]
                    if len(chunk) < self.tuple_width:
                        chunk = chunk + [SENTINEL_KEY] * (
                            self.tuple_width - len(chunk)
                        )
                    items.append(tuple(chunk))
            if feed.offset >= len(run):
                items.append(TERMINAL)
                feed.run_index += 1
                feed.offset = 0
                self.stats.runs_fed += 1
            else:
                break  # batch quota hit mid-run
        batch_size_bytes = max(taken, 1) * self.record_bytes
        self._inflight_feed = feed
        self._inflight_items = items
        self._inflight_cycles_left = max(
            1, math.ceil(batch_size_bytes / self.read_bytes_per_cycle)
        )
        self.stats.batches_issued += 1
        self.stats.bytes_loaded += taken * self.record_bytes

    def _deliver(self) -> None:
        """Push the completed batch into its leaf FIFO; park any overflow."""
        feed = self._inflight_feed
        index = self.feeds.index(feed)
        leftover = self._push_items(feed, self._inflight_items)
        if leftover:
            self._parked[index] = leftover
        self._inflight_feed = None
        self._inflight_items = []

    def _flush_parked(self) -> None:
        """Drain skid buffers into their FIFOs as space allows."""
        for index in list(self._parked):
            feed = self.feeds[index]
            leftover = self._push_items(feed, self._parked[index])
            if leftover:
                self._parked[index] = leftover
            else:
                del self._parked[index]

    @staticmethod
    def _push_items(feed: _LeafFeed, items: list) -> list:
        """Push items until the FIFO fills; return the remainder."""
        position = 0
        while position < len(items) and feed.fifo.has_space:
            feed.fifo.push(items[position])
            position += 1
        return items[position:]


def _bit_reverse(value: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``value``."""
    out = 0
    for _ in range(bits):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


def make_feeds(
    leaf_fifos: Sequence[Fifo], runs: Sequence[Sequence[int]], n_leaves: int
) -> list[_LeafFeed]:
    """Distribute stage-input runs across leaves.

    Output run ``j`` merges input runs ``[j * l, (j + 1) * l)`` — the
    paper's recursive stage semantics (§II).  Within a group, run ``j``
    feeds leaf ``bitrev(j)``: bit-reversed placement spreads a partial
    final group evenly over both subtrees of every merger, so a stage
    with fewer runs than leaves still keeps the root's two ports
    balanced at full throughput (consecutive placement would starve one
    subtree entirely and halve the stage rate).  Merging is commutative,
    so the placement does not change the output.  Leaves short of a run
    receive an empty run (terminal only).
    """
    if len(leaf_fifos) != n_leaves:
        raise SimulationError(
            f"expected {n_leaves} leaf FIFOs, got {len(leaf_fifos)}"
        )
    depth = max(0, n_leaves.bit_length() - 1)
    if (1 << depth) != n_leaves:
        raise SimulationError(f"leaf count must be a power of two, got {n_leaves}")
    n_groups = max(1, -(-len(runs) // n_leaves))
    feeds = []
    for leaf in range(n_leaves):
        position = _bit_reverse(leaf, depth)
        leaf_runs: list[list[int]] = []
        for group in range(n_groups):
            index = group * n_leaves + position
            leaf_runs.append(list(runs[index]) if index < len(runs) else [])
        feeds.append(_LeafFeed(fifo=leaf_fifos[leaf], runs=leaf_runs))
    return feeds


@dataclass
class OutputWriter:
    """Drains the root FIFO under a write-bandwidth budget.

    Accumulates whole output runs (split at terminals) with pad
    sentinels removed, and tracks byte traffic for bandwidth accounting.
    """

    source: Fifo
    record_bytes: int
    write_bytes_per_cycle: float
    expected_runs: int

    runs: list[list[int]] = field(init=False, default_factory=list)
    _current: list[int] = field(init=False, default_factory=list)
    _credit: float = field(init=False, default=0.0)
    bytes_written: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.write_bytes_per_cycle <= 0:
            raise SimulationError("write budget must be positive")
        if self.expected_runs < 1:
            raise SimulationError("writer expects at least one output run")

    @property
    def done(self) -> bool:
        """True once every expected output run has been collected."""
        return len(self.runs) >= self.expected_runs

    def tick(self, cycle: int = 0) -> None:
        """Pop as many items as this cycle's write budget allows."""
        self._credit = min(
            self._credit + self.write_bytes_per_cycle,
            4 * self.write_bytes_per_cycle,
        )
        while not self.source.is_empty:
            head = self.source.peek()
            if is_terminal(head):
                self.source.pop()
                self.runs.append(self._current)
                self._current = []
                continue
            cost = len(head) * self.record_bytes
            if self._credit < cost:
                break
            self._credit -= cost
            self.source.pop()
            kept = [key for key in head if key != SENTINEL_KEY]
            self._current.extend(kept)
            self.bytes_written += len(kept) * self.record_bytes
