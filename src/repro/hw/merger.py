"""The k-merger (§I-A).

"We call a k-merger a hardware merger that can merge two sorted input
streams at a rate of k records per cycle.  The k-merger is designed to
expect k-record tuples at its two input ports and outputs one k-record
tuple each cycle.  In order to output k records per cycle, mergers use a
pipeline of two 2k-record bitonic half-mergers."

The classic feedback microarchitecture is modelled exactly:

* a *feedback register* holds the upper half of the previous cycle's
  2k-record merge;
* each cycle the merger selects the input port whose head tuple has the
  smaller leading record, merges that tuple with the feedback register
  through the bitonic half-merger, emits the lower k records, and keeps
  the upper k in the feedback register;
* a run begins with one priming cycle that initialises the feedback
  register, and ends when both ports have delivered their terminal
  marker, at which point the register is flushed and a single terminal
  is emitted downstream (§V-B: "only a single-cycle delay when flushing
  each merger's state").

Selecting by the *leading* record of each head tuple is the correct rule:
the feedback register always holds the k smallest unemitted records of
everything consumed so far, so the merged lower half can never overtake a
record still waiting in the unselected port (the exhaustive and
property-based tests in ``tests/hw/test_merger.py`` verify this over full
stream spaces).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.hw.fifo import Fifo
from repro.hw.probes import MergerStats
from repro.hw.terminal import TERMINAL, is_terminal
from repro.network.flims import tuple_merge_kernel
from repro.units import is_power_of_two


@dataclass
class KMerger:
    """Cycle-level model of a k-merger between three FIFOs.

    Parameters
    ----------
    k:
        Records merged per cycle (power of two).
    input_a / input_b:
        Upstream FIFOs carrying ``k``-record tuples and terminal markers.
    output:
        Downstream FIFO receiving ``k``-record tuples and one terminal
        marker per completed run.
    name:
        Label for statistics.
    """

    k: int
    input_a: Fifo
    input_b: Fifo
    output: Fifo
    name: str = "merger"

    stats: MergerStats = field(init=False)
    _merge_kernel: object = field(init=False, repr=False)
    _feedback: tuple | None = field(init=False, default=None, repr=False)
    _done_a: bool = field(init=False, default=False)
    _done_b: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.k):
            raise SimulationError(f"merger width must be a power of two, got {self.k}")
        # The 2k half-merger datapath, resolved once against the active
        # flims backend so the per-cycle path carries no dispatch.
        self._merge_kernel = tuple_merge_kernel(self.k)
        self.stats = MergerStats(name=self.name, k=self.k)

    # ------------------------------------------------------------------
    @property
    def run_in_progress(self) -> bool:
        """True between the first consumed tuple and the emitted terminal."""
        return self._feedback is not None or self._done_a or self._done_b

    def tick(self, cycle: int = 0) -> None:
        """Advance one clock cycle."""
        stats = self.stats
        if self.output.is_full:
            # A full output port only *stalls* a run that is underway;
            # before the first tuple arrives the merger is merely idle.
            if self.run_in_progress:
                stats.stall_output += 1
            else:
                stats.idle_cycles += 1
            return

        input_a = self.input_a
        input_b = self.input_b
        # Terminal recognition is a tag check on the port registers and
        # happens in parallel with the datapath (§V-B's scheme costs one
        # cycle per *flush*, not per consumed terminal): retire at most
        # one terminal per port without spending the cycle.
        if not self._done_a and not input_a.is_empty and is_terminal(input_a.peek()):
            input_a.pop()
            self._done_a = True
        if not self._done_b and not input_b.is_empty and is_terminal(input_b.peek()):
            input_b.pop()
            self._done_b = True

        if self._done_a and self._done_b:
            self._finish_run()
            return

        source = self._select_port()
        if source is None:
            if self.run_in_progress:
                stats.stall_input += 1
            else:
                stats.idle_cycles += 1
            return

        incoming = source.pop()
        self._check_tuple(incoming)
        if incoming.__class__ is not tuple:
            incoming = tuple(incoming)
        if self._feedback is None:
            # Priming cycle: the register latches the first tuple.
            self._feedback = incoming
            stats.prime_cycles += 1
            return
        lower, upper = self._merge_kernel(self._feedback, incoming)
        self._feedback = upper
        self.output.push(lower)
        stats.active_cycles += 1

    # ------------------------------------------------------------------
    # quiescence protocol (repro.hw.fastpath)
    # ------------------------------------------------------------------
    def next_event_cycle(self, cycle: int) -> int | None:
        """``cycle`` when this tick would move data, else ``None``.

        Mirrors ``tick``'s branch order exactly: a full output port or
        an un-servable input pattern is a pure counter tick, and stays
        one for as long as the surrounding FIFOs are frozen — the
        merger schedules no time-based events of its own.
        """
        if self.output.is_full:
            return None
        if not self._done_a and not self.input_a.is_empty and is_terminal(self.input_a.peek()):
            return cycle
        if not self._done_b and not self.input_b.is_empty and is_terminal(self.input_b.peek()):
            return cycle
        if self._done_a and self._done_b:
            return cycle
        if self._select_port() is None:
            return None
        return cycle

    def stall_tag(self) -> str:
        """Which counter this merger's stalled ticks increment right now.

        Valid for as long as the surrounding FIFOs are frozen: the output
        port's fullness can only change through a consumer pop (which
        wakes the merger) and ``run_in_progress`` only through the
        merger's own tick.
        """
        if self.output.is_full:
            return "stall_output" if self.run_in_progress else "idle_cycles"
        return "stall_input" if self.run_in_progress else "idle_cycles"

    def apply_stall(self, tag: str, n_cycles: int) -> None:
        """Bulk-apply ``n_cycles`` stalled ticks for a captured tag."""
        stats = self.stats
        setattr(stats, tag, getattr(stats, tag) + n_cycles)

    def skip_cycles(self, n_cycles: int) -> None:
        """Immediate form of :meth:`apply_stall` (see fastpath docs)."""
        self.apply_stall(self.stall_tag(), n_cycles)

    def wake_fifos_now(self) -> list[Fifo]:
        """Dynamic wake set: only the ports that block this merger.

        With the output full, nothing but a downstream pop can re-enable
        the datapath (input pushes leave ``next_event_cycle`` at None
        and the stall tag at stall_output).  With output space, the
        merger is starved on its *empty* live ports: a non-empty port's
        head is pinned (the merger is its only consumer) and this
        merger's own pushes are the only way its output fills, so
        neither needs watching.  A starved merger therefore sleeps
        straight through its output being drained downstream — the wake
        thrash that used to keep compute-bound shapes at naive speed.
        """
        if self.output.is_full:
            return [self.output]
        fifos = []
        if not self._done_a and self.input_a.is_empty:
            fifos.append(self.input_a)
        if not self._done_b and self.input_b.is_empty:
            fifos.append(self.input_b)
        return fifos

    # ------------------------------------------------------------------
    def _select_port(self) -> Fifo | None:
        """Choose the port to consume from, or None to stall.

        While both runs are live the merger must see both heads to compare
        them, so a single empty port stalls the datapath — the same
        behaviour as the hardware handshake (§V-A: "In case one input
        buffer becomes empty, the AMT will automatically stall").
        """
        input_a = self.input_a
        input_b = self.input_b
        if self._done_a:
            return None if input_b.is_empty else input_b
        if self._done_b:
            return None if input_a.is_empty else input_a
        if input_a.is_empty or input_b.is_empty:
            return None
        head_a = input_a.peek()
        head_b = input_b.peek()
        return input_a if head_a[0] <= head_b[0] else input_b

    def _merge(self, left: tuple, right: tuple) -> tuple[tuple, tuple]:
        """Merge two sorted k-tuples, returning (lower k, upper k).

        The datapath is the 2k bitonic half-merger network; evaluating
        the compare-exchange stages element by element per cycle is the
        simulator's hottest loop, and for integer keys the network's
        output is simply the sorted permutation of the 2k inputs — so
        the model delegates to the FLiMS kernel bound at construction
        (:func:`repro.network.flims.tuple_merge_kernel`), which is
        bit-identical across its scalar and vectorized backends.
        ``tests/network`` verifies the bitonic network itself produces
        the same sorted output over exhaustive and randomized inputs.
        """
        return self._merge_kernel(left, right)

    def _finish_run(self) -> None:
        """Flush the feedback register, then emit the terminal and reset."""
        if self._feedback is not None:
            self.output.push(self._feedback)
            self._feedback = None
            self.stats.active_cycles += 1
            return
        self.output.push(TERMINAL)
        self._done_a = False
        self._done_b = False
        self.stats.flush_cycles += 1
        self.stats.runs_completed += 1

    def _check_tuple(self, item: object) -> None:
        if is_terminal(item):
            raise SimulationError(f"{self.name}: terminal leaked past bookkeeping")
        if len(item) != self.k:
            raise SimulationError(
                f"{self.name}: expected {self.k}-record tuples, got {len(item)}"
            )
