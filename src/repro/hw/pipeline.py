"""Cycle-level AMT pipelining (§III-A3, Fig. 4).

Chains two or more AMTs so that "each merge stage of the sorting
procedure is executed on a different AMT": while array ``i`` is being
merged by stage 2, array ``i+1`` occupies stage 1.  Each inter-stage hop
goes through a DRAM bank, modelled as a run buffer with the bank's
bandwidth on both sides.

The simulation drives a queue of arrays through the pipeline and records
when each array's sorted output completes, so tests can verify the
paper's claim directly: after the pipeline fills, sorted arrays emerge
at a constant cadence of one array per array-interval — the I/O bus
never idles (§III-A3).

Scale note: like the rest of :mod:`repro.hw`, this is for laptop-scale
inputs; each stage's fan-in must cover the whole array
(``presort_run * leaves**stage_count >= n_records``, Eq. 5's depth bound).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SimulationError
from repro.hw.loader import DataLoader, OutputWriter, make_feeds
from repro.hw.tree import AmtTree


@dataclass
class _StageJob:
    """One array's passage through one pipeline stage."""

    array_index: int
    runs: list[list[int]]


@dataclass
class _PipelineStage:
    """One AMT plus its private loader/writer, re-armed per array.

    The hardware streams continuously; the simulator re-instantiates the
    loader per array (state reset), which is equivalent because stages
    hand whole sorted-run sets across DRAM banks anyway.
    """

    index: int
    p: int
    leaves: int
    record_bytes: int
    bytes_per_cycle: float
    batch_bytes: int

    queue: list[_StageJob] = field(default_factory=list)
    _active: dict | None = field(default=None, repr=False)
    completed: list[_StageJob] = field(default_factory=list)
    busy_cycles: int = field(default=0)

    def push(self, job: _StageJob) -> None:
        """Enqueue an array's runs for this stage."""
        self.queue.append(job)

    def tick(self, cycle: int = 0) -> None:
        """Advance the stage's active merge by one cycle."""
        if self._active is None:
            if not self.queue:
                return
            self._arm(self.queue.pop(0))
        self.busy_cycles += 1
        parts = self._active
        parts["writer"].tick(cycle)
        for component in parts["tree"].components:
            component.tick(cycle)
        parts["loader"].tick(cycle)
        if parts["writer"].done:
            self.completed.append(
                _StageJob(array_index=parts["job"].array_index,
                          runs=parts["writer"].runs)
            )
            self._active = None

    def _arm(self, job: _StageJob) -> None:
        leaves = self.leaves
        runs = job.runs
        record_bytes = self.record_bytes
        if len(runs) < leaves:
            shrunk = 1 << max(1, (max(2, len(runs)) - 1).bit_length())
            leaves = min(leaves, shrunk)
        tree = AmtTree(p=self.p, leaves=leaves)
        leaf_width = tree.leaf_width
        batch_tuples = max(
            1,
            (max(leaf_width, self.batch_bytes // record_bytes))
            // leaf_width,
        )
        for fifo in tree.leaf_fifos:
            fifo.capacity = max(fifo.capacity, 2 * (2 * batch_tuples + 1))
        n_groups = max(1, math.ceil(len(runs) / leaves))
        loader = DataLoader(
            feeds=make_feeds(tree.leaf_fifos, runs, leaves),
            tuple_width=leaf_width,
            record_bytes=record_bytes,
            read_bytes_per_cycle=self.bytes_per_cycle,
            batch_bytes=self.batch_bytes,
        )
        writer = OutputWriter(
            source=tree.root_fifo,
            record_bytes=record_bytes,
            write_bytes_per_cycle=self.bytes_per_cycle,
            expected_runs=n_groups,
        )
        self._active = {"job": job, "tree": tree, "loader": loader, "writer": writer}

    @property
    def idle(self) -> bool:
        """True when the stage has nothing armed or queued."""
        return self._active is None and not self.queue


@dataclass
class PipelineSimulation:
    """Drives a queue of arrays through λ_pipe chained AMT stages.

    Parameters
    ----------
    p / leaves / lambda_pipe:
        The pipeline's configuration (all stages share p and leaves,
        §III-A).
    presort_run:
        Input arrays arrive as sorted runs of this length (the
        presorter's output).
    bank_bytes_per_cycle:
        Per-stage DRAM-bank budget (§IV-C: "each AMT saturates the
        bandwidth capacity of one bank").
    """

    p: int = 4
    leaves: int = 4
    lambda_pipe: int = 2
    record_bytes: int = 4
    presort_run: int = 16
    bank_bytes_per_cycle: float = 64.0
    batch_bytes: int = 512

    stages: list[_PipelineStage] = field(init=False)
    completion_cycles: dict[int, int] = field(init=False, default_factory=dict)
    outputs: dict[int, list[int]] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.lambda_pipe < 2:
            raise ConfigurationError("pipeline needs >= 2 stages")
        self.stages = [
            _PipelineStage(
                index=i,
                p=self.p,
                leaves=self.leaves,
                record_bytes=self.record_bytes,
                bytes_per_cycle=self.bank_bytes_per_cycle,
                batch_bytes=self.batch_bytes,
            )
            for i in range(self.lambda_pipe)
        ]

    # ------------------------------------------------------------------
    def capacity_records(self) -> int:
        """Eq. 5's depth bound for this pipeline."""
        return self.presort_run * self.leaves**self.lambda_pipe

    def run(self, arrays: list[list[int]], max_cycles: int = 5_000_000) -> int:
        """Sort every array; returns total cycles.

        Completion cycles per array land in :attr:`completion_cycles`;
        sorted outputs in :attr:`outputs`.
        """
        for index, array in enumerate(arrays):
            if len(array) > self.capacity_records():
                raise ConfigurationError(
                    f"array {index} exceeds the Eq. 5 pipeline capacity "
                    f"({len(array)} > {self.capacity_records()})"
                )
            runs = [
                sorted(array[start : start + self.presort_run])
                for start in range(0, len(array), self.presort_run)
            ] or [[]]
            self.stages[0].push(_StageJob(array_index=index, runs=runs))

        expected = len(arrays)
        cycle = 0
        while len(self.completion_cycles) < expected:
            if cycle >= max_cycles:
                raise SimulationError(
                    f"pipeline did not finish within {max_cycles} cycles"
                )
            for stage in self.stages:
                stage.tick(cycle)
            self._advance(cycle)
            cycle += 1
        return cycle

    def _advance(self, cycle: int) -> None:
        """Hand completed stage outputs to the next stage / the output."""
        for position, stage in enumerate(self.stages):
            while stage.completed:
                job = stage.completed.pop(0)
                if position + 1 < len(self.stages):
                    self.stages[position + 1].push(job)
                else:
                    if len(job.runs) != 1:
                        raise SimulationError(
                            f"array {job.array_index} left the pipeline in "
                            f"{len(job.runs)} runs; pipeline too shallow"
                        )
                    self.completion_cycles[job.array_index] = cycle
                    self.outputs[job.array_index] = job.runs[0]

    # ------------------------------------------------------------------
    def completion_intervals(self) -> list[int]:
        """Cycles between consecutive array completions (the cadence)."""
        ordered = [self.completion_cycles[i] for i in sorted(self.completion_cycles)]
        return [b - a for a, b in zip(ordered, ordered[1:])]
