"""Statistics records for simulator components.

The experiments section relies on three kinds of simulator observations:
per-merger activity (validates the p-records-per-cycle claim), loader
behaviour (validates that batching keeps memory at peak bandwidth, §V-A),
and whole-stage summaries (cycles, records, stalls) that the model
validation benches compare against Eq. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class MergerStats:
    """Activity counters of one k-merger."""

    name: str = ""
    k: int = 1
    active_cycles: int = 0
    prime_cycles: int = 0
    flush_cycles: int = 0
    stall_input: int = 0
    stall_output: int = 0
    idle_cycles: int = 0
    runs_completed: int = 0

    @property
    def total_cycles(self) -> int:
        """Sum of all classified cycles."""
        return (
            self.active_cycles
            + self.prime_cycles
            + self.flush_cycles
            + self.stall_input
            + self.stall_output
            + self.idle_cycles
        )

    @property
    def utilization(self) -> float:
        """Fraction of cycles spent producing output."""
        total = self.total_cycles
        return self.active_cycles / total if total else 0.0


@dataclass
class LoaderStats:
    """Activity counters of the data loader."""

    batches_issued: int = 0
    bytes_loaded: int = 0
    runs_fed: int = 0
    cycles_bandwidth_limited: int = 0
    cycles_idle: int = 0


@dataclass
class StageStats:
    """Summary of one simulated merge stage."""

    cycles: int = 0
    records_in: int = 0
    records_out: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    output_runs: int = 0
    merger_stats: list[MergerStats] = field(default_factory=list)
    loader_stats: LoaderStats = field(default_factory=LoaderStats)

    def seconds_at(self, frequency_hz: float) -> float:
        """Wall-clock stage time at a given clock frequency."""
        if frequency_hz <= 0:
            raise ConfigurationError(
                f"frequency must be positive, got {frequency_hz}"
            )
        return self.cycles / frequency_hz

    def publish(self, obs) -> None:
        """Bridge this stage's probes into an observation's registry.

        Merger activity is aggregated across the tree (per-merger
        series would explode the snapshot for wide trees); the loader's
        bandwidth-limited cycles land as their own counter because §V-A
        is exactly about keeping that number high.
        """
        obs.count("sim.stages")
        obs.count("sim.cycles", self.cycles)
        obs.count("sim.records", self.records_out)
        obs.count("sim.bytes_read", self.bytes_read)
        obs.count("sim.bytes_written", self.bytes_written)
        active = stalled = idle = 0
        for merger in self.merger_stats:
            active += merger.active_cycles
            stalled += merger.stall_input + merger.stall_output
            idle += merger.idle_cycles
        obs.count("sim.merger_active_cycles", active)
        obs.count("sim.merger_stall_cycles", stalled)
        obs.count("sim.merger_idle_cycles", idle)
        obs.count("sim.loader_batches", self.loader_stats.batches_issued)
        obs.count(
            "sim.loader_bandwidth_limited_cycles",
            self.loader_stats.cycles_bandwidth_limited,
        )

    @property
    def records_per_cycle(self) -> float:
        """Achieved stage throughput in records per cycle."""
        return self.records_out / self.cycles if self.cycles else 0.0
