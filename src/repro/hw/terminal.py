"""Terminal records and pad sentinels (§V-B).

The paper flushes merger state between consecutive input runs by feeding
"exactly one terminal record between adjacent input arrays"; the terminal
"propagates through the AMT causing only a single-cycle delay when
flushing each merger's state".  On the memory side the terminal is encoded
as the reserved key zero (zero append / zero filter in Fig. 7); inside the
simulator we use a distinguished marker object so genuine zero keys can be
tested against the encoder explicitly.

Pad sentinels fill the tail of a run up to a whole merger tuple; they carry
the maximum representable key so they sort to the end of their run and are
dropped by the output filter.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class _Terminal:
    """Singleton marker separating adjacent runs inside simulator streams."""

    __slots__ = ()
    _instance: "_Terminal | None" = None

    def __new__(cls) -> "_Terminal":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<TERMINAL>"


#: The terminal marker instance; compare with ``is_terminal`` or ``is``.
TERMINAL = _Terminal()

#: Pad key used to complete partial tuples; must exceed every real key.
#: Real keys are at most 512-bit record prefixes compared as 64-bit numpy
#: integers, so (2**64 - 1) is reserved.
SENTINEL_KEY = (1 << 64) - 1


def is_terminal(item: object) -> bool:
    """True when a stream item is the terminal marker."""
    return item is TERMINAL


def is_sentinel(key: int) -> bool:
    """True when a record key is the pad sentinel."""
    return key == SENTINEL_KEY


def pad_to_tuple(records: list[int], width: int) -> list[int]:
    """Pad a partial tuple with sentinels up to ``width`` records."""
    if len(records) > width:
        raise ConfigurationError(
            f"cannot pad {len(records)} records down to width {width}"
        )
    return records + [SENTINEL_KEY] * (width - len(records))


def strip_sentinels(records: list[int]) -> list[int]:
    """Remove pad sentinels from a flushed output run."""
    return [key for key in records if key != SENTINEL_KEY]
