"""Cycle-trace recording for the simulator.

A :class:`TraceRecorder` samples component state every cycle and
produces a structured activity trace — the software analogue of an ILA
capture.  Used for debugging stalls (which component starved first?) and
by tests that assert *when* things happen, not only what.

Traces are plain lists of :class:`TraceEvent`; :func:`render_timeline`
draws a compact ASCII occupancy chart (one row per watched FIFO).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.hw.fifo import Fifo


@dataclass(frozen=True)
class TraceEvent:
    """One sampled observation."""

    cycle: int
    subject: str
    kind: str
    value: float


@dataclass
class TraceRecorder:
    """Samples FIFO occupancies (and arbitrary probes) per cycle.

    Register it in the simulation's component list (anywhere in the tick
    order); it observes, never mutates.
    """

    fifos: dict = field(default_factory=dict)
    probes: dict = field(default_factory=dict)
    sample_every: int = 1
    events: list[TraceEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise SimulationError(
                f"sample interval must be >= 1, got {self.sample_every}"
            )

    def watch_fifo(self, name: str, fifo: Fifo) -> None:
        """Record this FIFO's occupancy each sampled cycle."""
        self.fifos[name] = fifo

    def watch(self, name: str, probe) -> None:
        """Record an arbitrary zero-argument numeric probe."""
        self.probes[name] = probe

    def tick(self, cycle: int = 0) -> None:
        """Sample all watched subjects this cycle (if due)."""
        if cycle % self.sample_every:
            return
        for name, fifo in self.fifos.items():
            self.events.append(
                TraceEvent(cycle=cycle, subject=name, kind="occupancy",
                           value=float(len(fifo)))
            )
        for name, probe in self.probes.items():
            self.events.append(
                TraceEvent(cycle=cycle, subject=name, kind="probe",
                           value=float(probe()))
            )

    # ------------------------------------------------------------------
    def series(self, subject: str) -> list[tuple[int, float]]:
        """(cycle, value) samples for one subject."""
        return [
            (event.cycle, event.value)
            for event in self.events
            if event.subject == subject
        ]

    def peak(self, subject: str) -> float:
        """Largest sampled value for a subject."""
        samples = self.series(subject)
        if not samples:
            raise SimulationError(f"no samples recorded for {subject!r}")
        return max(value for _, value in samples)

    def first_cycle_at(self, subject: str, threshold: float) -> int | None:
        """First sampled cycle where the subject reached ``threshold``."""
        for cycle, value in self.series(subject):
            if value >= threshold:
                return cycle
        return None


def render_timeline(recorder: TraceRecorder, width: int = 64) -> str:
    """ASCII occupancy timeline: one row per watched FIFO.

    Each column aggregates a cycle window; glyphs scale with the mean
    occupancy relative to the FIFO's capacity ('.' empty to '#' full).
    """
    glyphs = " .:-=+*#"
    lines = []
    for name, fifo in recorder.fifos.items():
        samples = recorder.series(name)
        if not samples:
            continue
        last_cycle = samples[-1][0] or 1
        buckets = [[] for _ in range(width)]
        for cycle, value in samples:
            index = min(width - 1, cycle * width // (last_cycle + 1))
            buckets[index].append(value)
        row = []
        for bucket in buckets:
            if not bucket:
                row.append(" ")
                continue
            mean = sum(bucket) / len(bucket)
            level = min(len(glyphs) - 1,
                        int(mean / max(1, fifo.capacity) * (len(glyphs) - 1)))
            row.append(glyphs[level])
        lines.append(f"{name:>16s} |{''.join(row)}|")
    return "\n".join(lines)
