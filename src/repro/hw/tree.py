"""AMT assembly and whole-stage simulation (§II, Fig. 1).

"To implement a p and l AMT, we put a p-merger at the root of the AMT,
two p/2-mergers as its children, then four p/4-mergers as their children,
etc., until the binary tree has log2(l) levels and can thus merge l
arrays.  In general, the tree nodes at the k-th level are p/2^k-mergers.
If for a given level k, we have 2^k > p, we use 1-mergers."

:class:`AmtTree` wires mergers, couplers and FIFOs into that shape;
:func:`simulate_merge` drives one full merge stage — data loader at the
leaves, output writer at the root — and returns the merged runs plus
cycle-level statistics.  This is the reproduction's stand-in for running
the Verilog design on the FPGA.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.hw.clock import DEFAULT_MAX_CYCLES, Simulation
from repro.hw.coupler import Coupler
from repro.hw.fifo import Fifo
from repro.hw.loader import DataLoader, OutputWriter, make_feeds
from repro.hw.merger import KMerger
from repro.hw.probes import StageStats
from repro.obs.runtime import observation
from repro.units import is_power_of_two, log2_int

#: FIFO depth (in tuples) between internal tree levels; absorbs selection
#: jitter without hiding genuine skew stalls.
INTERNAL_FIFO_DEPTH = 8


@dataclass
class AmtTree:
    """An adaptive merge tree AMT(p, l) as a connected component graph.

    Attributes
    ----------
    leaf_fifos:
        ``l`` input FIFOs expecting ``leaf_width``-record sorted tuples.
    root_fifo:
        Output FIFO producing ``p``-record sorted tuples.
    components:
        All mergers and couplers in root-to-leaf tick order.
    """

    p: int
    leaves: int
    leaf_fifo_depth: int = 8
    name: str = "amt"

    leaf_fifos: list[Fifo] = field(init=False, default_factory=list)
    root_fifo: Fifo = field(init=False, repr=False, default=None)
    components: list = field(init=False, default_factory=list)
    mergers: list[KMerger] = field(init=False, default_factory=list)
    couplers: list[Coupler] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.p):
            raise ConfigurationError(f"throughput p must be a power of two, got {self.p}")
        if not is_power_of_two(self.leaves) or self.leaves < 2:
            raise ConfigurationError(
                f"leaf count must be a power of two >= 2, got {self.leaves}"
            )
        self._build()

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of merger levels (log2 of the leaf count)."""
        return log2_int(self.leaves)

    def merger_width_at(self, level: int) -> int:
        """Merger k at tree level ``level`` (root is level 0)."""
        if not 0 <= level < self.depth:
            raise ConfigurationError(
                f"level {level} outside tree of depth {self.depth}"
            )
        return max(1, self.p >> level)

    @property
    def leaf_width(self) -> int:
        """Records per leaf input tuple (the deepest mergers' k)."""
        return self.merger_width_at(self.depth - 1)

    # ------------------------------------------------------------------
    def _build(self) -> None:
        """Create mergers level by level, inserting couplers where the
        parent is wider than its children."""
        self.root_fifo = Fifo(INTERNAL_FIFO_DEPTH, name=f"{self.name}.root")
        # ``pending`` holds, per level, the FIFOs that feed each merger
        # input port, ordered left to right.
        pending: list[Fifo] = [self.root_fifo]
        for level in range(self.depth):
            width = self.merger_width_at(level)
            child_width = (
                self.merger_width_at(level + 1) if level + 1 < self.depth else None
            )
            next_pending: list[Fifo] = []
            for index, out_fifo in enumerate(pending):
                port_fifos = []
                for side in ("a", "b"):
                    label = f"{self.name}.L{level}.{index}.{side}"
                    if level == self.depth - 1:
                        port = Fifo(self.leaf_fifo_depth, name=f"{label}.leaf")
                        self.leaf_fifos.append(port)
                    elif child_width == width:
                        # Child is the same width: direct FIFO connection.
                        port = Fifo(INTERNAL_FIFO_DEPTH, name=label)
                        next_pending.append(port)
                    else:
                        # Child is half width: couple two child tuples.
                        port = Fifo(INTERNAL_FIFO_DEPTH, name=label)
                        child_out = Fifo(
                            INTERNAL_FIFO_DEPTH, name=f"{label}.precouple"
                        )
                        coupler = Coupler(
                            k=width,
                            input=child_out,
                            output=port,
                            name=f"{label}.coupler",
                        )
                        self.couplers.append(coupler)
                        self.components.append(coupler)
                        next_pending.append(child_out)
                    port_fifos.append(port)
                merger = KMerger(
                    k=width,
                    input_a=port_fifos[0],
                    input_b=port_fifos[1],
                    output=out_fifo,
                    name=f"{self.name}.L{level}.{index}",
                )
                self.mergers.append(merger)
                self.components.append(merger)
            pending = next_pending
        if len(self.leaf_fifos) != self.leaves:
            raise SimulationError(
                f"tree built {len(self.leaf_fifos)} leaves, expected {self.leaves}"
            )

    # ------------------------------------------------------------------
    def pipeline_latency_cycles(self) -> int:
        """Approximate fill latency: one cycle per component level plus
        half-merger depths; negligible against stage lengths but reported
        for completeness."""
        total = 0
        for level in range(self.depth):
            width = self.merger_width_at(level)
            total += 1 + (2 * max(1, math.ceil(math.log2(2 * width))) if width > 1 else 1)
        return total


def simulate_merge(
    p: int,
    leaves: int,
    runs: Sequence[Sequence[int]],
    record_bytes: int = 4,
    read_bytes_per_cycle: float | None = None,
    write_bytes_per_cycle: float | None = None,
    batch_bytes: int = 1024,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    check_sorted_inputs: bool = True,
    auto_shrink: bool = True,
    engine: str = "fast",
) -> tuple[list[list[int]], StageStats]:
    """Run one merge stage of AMT(p, l) over ``runs``.

    Parameters
    ----------
    runs:
        Sorted input runs; run ``j*l + i`` feeds leaf ``i`` in group ``j``.
        Every group of ``l`` consecutive runs becomes one output run.
    record_bytes:
        Record width ``r``.
    read_bytes_per_cycle / write_bytes_per_cycle:
        Memory bandwidth budgets per cycle (``beta / f``); default is
        unconstrained (slightly above tree demand), letting the tree run
        at its natural ``p`` records/cycle.
    batch_bytes:
        Data-loader read batch size ``b`` (1-4 KB per §II).
    max_cycles:
        ``run_until`` budget before declaring deadlock; one shared
        default (:data:`repro.hw.clock.DEFAULT_MAX_CYCLES`) for every
        stage driver.
    engine:
        ``"fast"`` (default) runs the quiescence fast-forward scheduler;
        ``"naive"`` forces the per-cycle stepper.  Both produce
        identical outputs, cycle counts and statistics — see
        ``docs/performance.md``.
    auto_shrink:
        When a stage has fewer runs than leaves, merge through the
        equivalently-shaped shallower tree AMT(p, 2^ceil(log2(runs))).
        This models how the hardware sustains full rate on late stages:
        a sorted run is a valid stream of k-wide sorted tuples at *any*
        tree level, so few long runs enter near the root through wide
        ports instead of trickling record-by-record through 1-merger
        leaves.  Eq. 1's per-stage rate assumes exactly this.

    Returns
    -------
    (output_runs, stats):
        Merged runs in group order, and cycle-level stage statistics.
    """
    if engine not in ("fast", "naive"):
        raise ConfigurationError(
            f"unknown simulation engine {engine!r}; expected 'fast' or 'naive'"
        )
    if check_sorted_inputs:
        for index, run in enumerate(runs):
            for left, right in zip(run, run[1:]):
                if right < left:
                    raise ConfigurationError(
                        f"input run {index} is not sorted at value {right!r}"
                    )
    if auto_shrink and len(runs) < leaves:
        shrunk = 1 << max(1, (max(2, len(runs)) - 1).bit_length())
        leaves = min(leaves, shrunk)
    tree = AmtTree(p=p, leaves=leaves)
    demand_bytes = tree.p * record_bytes
    if read_bytes_per_cycle is None:
        read_bytes_per_cycle = float(2 * demand_bytes)
    if write_bytes_per_cycle is None:
        write_bytes_per_cycle = float(2 * demand_bytes)

    # Size leaf FIFOs to hold two full batches (§V-A).
    batch_tuples = max(
        1, (max(tree.leaf_width, batch_bytes // record_bytes)) // tree.leaf_width
    )
    for fifo in tree.leaf_fifos:
        fifo.capacity = max(fifo.capacity, 2 * (batch_tuples + 1))

    n_groups = max(1, math.ceil(len(runs) / leaves))
    feeds = make_feeds(tree.leaf_fifos, runs, leaves)
    loader = DataLoader(
        feeds=feeds,
        tuple_width=tree.leaf_width,
        record_bytes=record_bytes,
        read_bytes_per_cycle=read_bytes_per_cycle,
        batch_bytes=batch_bytes,
    )
    writer = OutputWriter(
        source=tree.root_fifo,
        record_bytes=record_bytes,
        write_bytes_per_cycle=write_bytes_per_cycle,
        expected_runs=n_groups,
    )
    sim = Simulation(fast_forward=engine == "fast")
    sim.add(writer)
    for component in tree.components:
        sim.add(component)
    sim.add(loader)

    obs = observation()
    with obs.span(
        "hw.merge_stage", p=p, leaves=leaves, groups=n_groups,
    ) as span:
        cycles = sim.run_until(lambda: writer.done, max_cycles=max_cycles)
        span.set(cycles=cycles)

    records_in = sum(len(run) for run in runs)
    records_out = sum(len(run) for run in writer.runs)
    stats = StageStats(
        cycles=cycles,
        records_in=records_in,
        records_out=records_out,
        bytes_read=loader.stats.bytes_loaded,
        bytes_written=writer.bytes_written,
        output_runs=len(writer.runs),
        merger_stats=[merger.stats for merger in tree.mergers],
        loader_stats=loader.stats,
    )
    if records_out != records_in:
        raise SimulationError(
            f"record count mismatch: {records_in} in, {records_out} out"
        )
    stats.publish(obs)
    return writer.runs, stats
