"""bonsai-lint: AST-based enforcement of the repo's cross-cutting contracts.

Three conventions in this codebase are load-bearing but invisible to the
type system: the hw simulator's FIFO-only communication discipline, the
decimal-vs-binary unit split of :mod:`repro.units`, and the purity of
the Eq. 1-10 analytical models the optimizer exhaustively evaluates.
This package machine-checks them (plus determinism and the error
taxonomy) as five AST rules:

========================  ==================================================
``unit-mix``              no decimal/binary mixing; no magic byte literals
``clock-discipline``      ``tick()`` talks through FIFOs; integral cycles
``determinism``           seeded RNGs only; no wall clock; no set iteration
``model-purity``          performance/resources models stay pure
``error-taxonomy``        raise ``repro.errors`` classes, not builtins
========================  ==================================================

Run via ``bonsai lint [paths...]`` or ``python -m repro.lint``; suppress
intentional findings inline with ``# bonsai-lint: disable=<rule> -- why``.
See ``docs/static-analysis.md`` for the full rule rationale.
"""

from __future__ import annotations

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import Rule, all_rules, register, resolve_rules
from repro.lint.reporters import (
    JSON_SCHEMA_VERSION,
    render_json,
    render_sarif,
    render_text,
)
from repro.lint.runner import LintResult, collect_files, lint_file, run

__all__ = [
    "Diagnostic",
    "Severity",
    "Rule",
    "register",
    "all_rules",
    "resolve_rules",
    "LintResult",
    "collect_files",
    "lint_file",
    "run",
    "render_text",
    "render_json",
    "render_sarif",
    "JSON_SCHEMA_VERSION",
]
