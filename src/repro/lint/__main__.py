"""``python -m repro.lint`` dispatches to the lint runner."""

import sys

from repro.lint.main import main

sys.exit(main())
