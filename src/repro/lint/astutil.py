"""Small AST helpers shared by the rules."""

from __future__ import annotations

import ast


def parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """Child-to-parent mapping for every node under ``tree``."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def self_attribute_chain(node: ast.AST) -> list[str] | None:
    """Attribute names hanging off ``self``, outermost last.

    ``self.output.push`` returns ``["output", "push"]``;
    ``self.cycle`` returns ``["cycle"]``; anything not rooted at a
    ``self`` name returns ``None``.
    """
    chain: list[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self":
        return chain[::-1]
    return None


def dotted_call_name(func: ast.AST) -> str | None:
    """Dotted name of a call target built from plain names.

    ``np.random.rand`` returns ``"np.random.rand"``; calls on computed
    expressions (subscripts, call results) return ``None``.
    """
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(parts[::-1])
    return None


def assignment_targets(node: ast.AST) -> list[ast.expr]:
    """Flattened assignment targets of Assign/AugAssign/AnnAssign."""
    if isinstance(node, ast.Assign):
        raw = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        raw = [node.target]
    else:
        return []
    flat: list[ast.expr] = []
    stack = raw
    while stack:
        target = stack.pop()
        if isinstance(target, (ast.Tuple, ast.List)):
            stack.extend(target.elts)
        else:
            flat.append(target)
    return flat
