"""Per-file context handed to every rule.

The context carries the parsed AST, the raw source, and the *dotted
module name* when the file belongs to the ``repro`` package.  Rules use
the module name to scope themselves (clock-discipline only inspects
``repro.hw``, model-purity only the Eq. 1-10 modules, and so on);
files outside the package — benchmarks, scripts — get ``module=None``
and only the unscoped checks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.errors import LintError


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: str
    module: str | None
    source: str
    tree: ast.Module

    @property
    def lines(self) -> list[str]:
        """Physical source lines (1-based access via ``lines[n - 1]``)."""
        return self.source.splitlines()


def module_name(path: Path) -> str | None:
    """Dotted module path for files under a ``repro`` package directory.

    ``src/repro/hw/merger.py`` maps to ``repro.hw.merger``;
    ``__init__.py`` maps to its package.  Files with no ``repro``
    ancestor directory (benchmarks, standalone scripts) return ``None``.
    """
    parts = list(path.parts)
    if "repro" not in parts:
        return None
    anchor = len(parts) - 1 - parts[::-1].index("repro")
    dotted = parts[anchor:-1]
    if path.stem != "__init__":
        dotted = dotted + [path.stem]
    return ".".join(dotted)


def build_context(path: Path) -> FileContext:
    """Read and parse one file into a :class:`FileContext`.

    Raises
    ------
    LintError
        When the file cannot be read, decoded as UTF-8, or compiled
        (null bytes).  Syntax errors propagate as ``SyntaxError``.  The
        runner turns both into ``parse-error`` diagnostics so one broken
        file does not hide findings in the rest of the tree.
    """
    try:
        source = path.read_text(encoding="utf-8")
    except UnicodeDecodeError as error:
        raise LintError(f"cannot decode {path} as UTF-8: {error}") from error
    except OSError as error:
        raise LintError(f"cannot read {path}: {error}") from error
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        raise
    except ValueError as error:  # e.g. null bytes in the source
        raise LintError(f"cannot parse {path}: {error}") from error
    return FileContext(
        path=str(path), module=module_name(path), source=source, tree=tree
    )
