"""Diagnostic records emitted by lint rules.

A diagnostic pins one finding to a file position.  Diagnostics sort by
``(path, line, column, rule)`` so reports are stable across runs and
machines — the linter itself must satisfy the determinism contract it
enforces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How seriously a finding should be taken.

    Both severities fail the run (``bonsai lint`` exits non-zero on any
    finding); the split exists so reports separate contract violations
    (``ERROR``) from convention drift (``WARNING``).
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule fired at a file position.

    Parameters
    ----------
    path:
        File the finding is in, as given on the command line.
    line / column:
        1-based line and 0-based column of the offending node.
    rule:
        Registry name of the rule that fired (e.g. ``unit-mix``).
    message:
        Human-readable explanation with a suggested fix.
    severity:
        :class:`Severity` of the finding.
    related:
        Optional provenance chain — a tuple of ``{"path", "line",
        "column", "message"}`` dicts tracing how the finding arose
        (taint source -> sink, raise -> escape).  Excluded from
        ordering and equality so reports stay stable.
    """

    path: str
    line: int
    column: int
    rule: str = field(compare=True)
    message: str = field(compare=False)
    severity: Severity = field(compare=False, default=Severity.ERROR)
    related: tuple = field(compare=False, default=())

    def render(self) -> str:
        """The canonical one-line text form of this finding."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule} {self.severity.value}: {self.message}"
        )

    def to_json(self) -> dict:
        """JSON-serialisable form used by the JSON reporter."""
        out = {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.related:
            out["related"] = [dict(r) for r in self.related]
        return out
