"""Git-diff-scoped file selection for ``--changed-only``.

Pre-commit iteration wants findings for the files being committed, not
the whole tree.  The changed set is everything ``git diff HEAD`` sees
(staged and unstaged modifications) plus untracked files — the union a
developer thinks of as "my changes".

``bonsai lint`` intersects its collected file list with this set and
runs only those files.  ``bonsai check`` still analyses the *full*
tree (an interprocedural analysis with a partial call graph would
understate every transitive property) and restricts *reporting* to the
changed files instead.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

from repro.errors import LintError


def _git_lines(arguments: list[str], root: Path) -> list[str]:
    try:
        completed = subprocess.run(
            ["git", *arguments],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired) as error:
        raise LintError(f"cannot run git for --changed-only: {error}") from error
    if completed.returncode != 0:
        detail = completed.stderr.strip() or f"exit {completed.returncode}"
        raise LintError(f"git {arguments[0]} failed for --changed-only: {detail}")
    return [line for line in completed.stdout.splitlines() if line.strip()]


def repo_root(start: str | Path = ".") -> Path:
    """Top-level directory of the enclosing git repository."""
    lines = _git_lines(["rev-parse", "--show-toplevel"], Path(start))
    if not lines:
        raise LintError("git rev-parse returned no repository root")
    return Path(lines[0])


def changed_files(start: str | Path = ".") -> set[Path]:
    """Resolved paths of files changed relative to ``HEAD``.

    Staged and unstaged modifications (``git diff --name-only HEAD``)
    plus untracked, non-ignored files.  Deleted files drop out naturally
    because the caller intersects with files that exist on disk.
    """
    root = repo_root(start)
    names = _git_lines(["diff", "--name-only", "HEAD"], root)
    names += _git_lines(
        ["ls-files", "--others", "--exclude-standard"], root
    )
    return {(root / name).resolve() for name in names}
