"""bonsai-check: whole-program interprocedural analysis.

``bonsai lint`` (the sibling per-file rules) sees one AST node at a
time; this package sees the whole program.  It builds a project symbol
table and call graph over every linted file once, then runs the
interprocedural analyses on top of them:

========================  ==================================================
``unit-flow-mix``         additive/comparison arithmetic combines two
                          different unit families (decimal bytes, binary
                          bytes, records, cycles, seconds, hertz), where at
                          least one family arrived through a call chain
``unit-flow-call``        a call argument's inferred unit family contradicts
                          the callee parameter's declared family
``transitive-purity``     an Eq. 1-10 model function transitively reaches
                          I/O, RNG, wall-clock, or mutation of ``repro.hw``
                          simulator state
``fifo-discipline``       a ``repro.hw`` component touches a peer
                          component's state other than through the
                          FIFO/bus/coupler port protocol
``worker-entry``          a ``repro.parallel`` pool entry is not a
                          module-level single-task function, or the
                          workers module does work at import time
``hot-loop-alloc``        allocation inside a per-record loop of a function
``hot-loop-attr``         reachable from the simulator/merge-kernel hot
``hot-fifo-op``           roots (see ``perfcheck``; a ``--profile`` trace
``hot-format``            widens the roots); repeated attribute chains,
``hot-try``               single-element FIFO ops, formatting, per-
                          iteration try/except
``proc-global-write``     worker-reachable code writes shared state outside
``proc-unpicklable``      the sanctioned obs payload path, captures
``proc-shm-lifetime``     unpicklable objects, or leaks/reuses shared-
                          memory blocks (see ``procsafety``)
``det-taint-sink``        nondeterministic values (unseeded RNG, wall
``det-unseeded-flow``     clock, hash/listing order) flow through the call
``det-order-leak``        graph into evidence sinks, deterministic-contract
                          zones, or across function boundaries without
                          ``sorted(...)`` laundering (see ``detflow``)
``exn-escape``            per-function escaped-exception sets: non-taxonomy
``exn-swallow``           escapes from CLI entry points, handlers that drop
``exn-broad-fallback``    failures, broad worker fallbacks, and taxonomy
``exn-dead-handler``      handlers that can never fire (see ``exnflow``)
========================  ==================================================

The operational layer makes whole-program analysis adoptable:

* a committed baseline (``.bonsai-check-baseline.json``) so pre-existing
  findings report as suppressed while new ones fail the run;
* a content-hash summary cache (``--cache-dir``) keyed on the summary
  version *and* the rule-set hash, so warm runs re-extract zero
  unchanged files and adding a pass invalidates stale summaries;
* the SARIF 2.1.0 reporter shared with ``bonsai lint``, with stable
  ``partialFingerprints`` and provenance ``relatedLocations``;
* ``--select``/``--ignore`` per-rule filtering and
  ``--require-justification`` suppression auditing;
* ``--changed-only`` (full-tree analysis, diff-scoped reporting) for
  pre-commit loops, and ``--statistics`` run counters.

Run via ``bonsai check [paths...]`` or ``python -m repro.lint.graph``.
"""

from __future__ import annotations

from repro.lint.graph.analyzer import CheckResult, analyze
from repro.lint.graph.baseline import Baseline
from repro.lint.graph.rules import CHECK_RULES, ruleset_hash
from repro.lint.graph.summary import SUMMARY_VERSION, FileSummary, extract_summary
from repro.lint.graph.symbols import ProjectIndex

__all__ = [
    "CHECK_RULES",
    "SUMMARY_VERSION",
    "Baseline",
    "CheckResult",
    "FileSummary",
    "ProjectIndex",
    "analyze",
    "extract_summary",
    "ruleset_hash",
]
