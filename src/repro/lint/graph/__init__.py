"""bonsai-check: whole-program interprocedural analysis.

``bonsai lint`` (the sibling per-file rules) sees one AST node at a
time; this package sees the whole program.  It builds a project symbol
table and call graph over every linted file once, then runs three
interprocedural analyses on top of them:

========================  ==================================================
``unit-flow-mix``         additive/comparison arithmetic combines two
                          different unit families (decimal bytes, binary
                          bytes, records, cycles, seconds, hertz), where at
                          least one family arrived through a call chain
``unit-flow-call``        a call argument's inferred unit family contradicts
                          the callee parameter's declared family
``transitive-purity``     an Eq. 1-10 model function transitively reaches
                          I/O, RNG, wall-clock, or mutation of ``repro.hw``
                          simulator state
``fifo-discipline``       a ``repro.hw`` component touches a peer
                          component's state other than through the
                          FIFO/bus/coupler port protocol
``worker-entry``          a ``repro.parallel`` pool entry is not a
                          module-level single-task function, or the
                          workers module does work at import time
========================  ==================================================

The operational layer makes whole-program analysis adoptable:

* a committed baseline (``.bonsai-check-baseline.json``) so pre-existing
  findings report as suppressed while new ones fail the run;
* a content-hash summary cache (``--cache-dir``) so warm runs re-extract
  zero unchanged files and only re-run the cheap propagation passes;
* the SARIF 2.1.0 reporter shared with ``bonsai lint``.

Run via ``bonsai check [paths...]`` or ``python -m repro.lint.graph``.
"""

from __future__ import annotations

from repro.lint.graph.analyzer import CheckResult, analyze
from repro.lint.graph.baseline import Baseline
from repro.lint.graph.summary import SUMMARY_VERSION, FileSummary, extract_summary
from repro.lint.graph.symbols import ProjectIndex

#: every diagnostic rule this analyzer can emit, with the one-line
#: description used by ``--list-analyses`` and the SARIF rule table
CHECK_RULES: dict[str, str] = {
    "unit-flow-mix": (
        "arithmetic combines two different unit families reached "
        "through the interprocedural unit-flow analysis"
    ),
    "unit-flow-call": (
        "call argument's unit family contradicts the callee "
        "parameter's family"
    ),
    "transitive-purity": (
        "pure model function transitively reaches I/O, RNG, clock, or "
        "repro.hw state mutation"
    ),
    "fifo-discipline": (
        "repro.hw component reaches into a peer component's state "
        "outside the FIFO/bus/coupler port protocol"
    ),
    "worker-entry": (
        "repro.parallel pool entry is not a module-level single-task "
        "function, or its workers module does import-time work or "
        "eager heavy imports"
    ),
}

__all__ = [
    "CHECK_RULES",
    "SUMMARY_VERSION",
    "Baseline",
    "CheckResult",
    "FileSummary",
    "ProjectIndex",
    "analyze",
    "extract_summary",
]
