"""``python -m repro.lint.graph`` dispatches to the check runner."""

import sys

from repro.lint.graph.main import main

sys.exit(main())
