"""Orchestration of one ``bonsai check`` run.

Pipeline: collect files -> extract (or cache-load) summaries -> build
the project index -> run the interprocedural analyses -> filter rule
selection and inline suppressions -> split against the baseline -> one
:class:`CheckResult`.

Unreadable or unparseable files become ``parse-error`` diagnostics —
a whole-program analysis with a silent hole in its call graph would
understate every transitive property, so a broken file must fail the
run visibly.
"""

from __future__ import annotations

# bonsai-lint: disable-file=determinism -- the analyzer times its own
# wall-clock run for reporting; nothing simulated depends on it

import ast
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.errors import LintError
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.graph.baseline import Baseline
from repro.lint.graph.cache import SummaryCache
from repro.lint.graph.detflow import check_determinism_flow
from repro.lint.graph.exnflow import check_exception_flow
from repro.lint.graph.fifocheck import check_fifo_discipline
from repro.lint.graph.perfcheck import check_hot_paths
from repro.lint.graph.procsafety import check_process_safety
from repro.lint.graph.purity import check_purity
from repro.lint.graph.rules import CHECK_RULES
from repro.lint.graph.summary import FileSummary, extract_summary
from repro.lint.graph.symbols import ProjectIndex
from repro.lint.graph.unitflow import check_unit_flow
from repro.lint.graph.workercheck import check_worker_entries
from repro.lint.runner import (
    PARSE_ERROR_RULE,
    UNJUSTIFIED_SUPPRESSION_RULE,
    collect_files,
)


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one whole-program analysis run."""

    diagnostics: tuple[Diagnostic, ...]
    baselined: tuple[Diagnostic, ...]
    files_scanned: int
    reanalyzed: int
    suppressed: int
    rules: tuple[str, ...]
    elapsed_seconds: float = 0.0

    @property
    def exit_code(self) -> int:
        """0 when every finding is baseline-accepted; 1 otherwise."""
        return 1 if self.diagnostics else 0

    @property
    def from_cache(self) -> int:
        """Files whose summaries were loaded instead of re-extracted."""
        return self.files_scanned - self.reanalyzed

    def count(self, severity: Severity) -> int:
        """Number of *new* findings at one severity."""
        return sum(1 for d in self.diagnostics if d.severity is severity)


@dataclass
class _Collected:
    summaries: list[FileSummary] = field(default_factory=list)
    parse_errors: list[Diagnostic] = field(default_factory=list)
    reanalyzed: int = 0
    total: int = 0


def _collect_summaries(
    paths: Sequence[str | Path], cache: SummaryCache
) -> _Collected:
    out = _Collected()
    for path in collect_files(paths):
        out.total += 1
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            out.parse_errors.append(Diagnostic(
                path=str(path), line=1, column=0, rule=PARSE_ERROR_RULE,
                message=f"cannot read file: {error}", severity=Severity.ERROR,
            ))
            continue
        cached = cache.load(str(path), source)
        if cached is not None:
            out.summaries.append(cached)
            continue
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            out.parse_errors.append(Diagnostic(
                path=str(path), line=error.lineno or 1,
                column=(error.offset or 1) - 1, rule=PARSE_ERROR_RULE,
                message=f"file does not parse: {error.msg}",
                severity=Severity.ERROR,
            ))
            continue
        except ValueError as error:
            out.parse_errors.append(Diagnostic(
                path=str(path), line=1, column=0, rule=PARSE_ERROR_RULE,
                message=f"file does not parse: {error}",
                severity=Severity.ERROR,
            ))
            continue
        summary = extract_summary(str(path), source, tree)
        cache.store(source, summary)
        out.summaries.append(summary)
        out.reanalyzed += 1
    return out


def resolve_rule_selection(
    select: Iterable[str] | None, ignore: Iterable[str] | None
) -> tuple[str, ...]:
    """Active rule names after ``--select``/``--ignore`` filtering."""
    selected = list(select) if select else sorted(CHECK_RULES)
    ignored = set(ignore) if ignore else set()
    for name in list(selected) + sorted(ignored):
        if name not in CHECK_RULES:
            known = ", ".join(sorted(CHECK_RULES))
            raise LintError(f"unknown check rule '{name}' (known: {known})")
    return tuple(name for name in selected if name not in ignored)


def load_profile_rows(profile: str | Path) -> list[Mapping]:
    """Phase rows of a ``bonsai report`` trace, for hot-set widening."""
    from repro.errors import ObservabilityError
    from repro.obs.report import build_report

    try:
        report = build_report(str(profile))
    except (OSError, ObservabilityError) as error:
        raise LintError(f"cannot load profile {profile}: {error}") from error
    return list(report.get("rows", []))


def _justification_findings(
    summaries: Sequence[FileSummary], silenced: Sequence[Diagnostic]
) -> list[Diagnostic]:
    """One warning per unjustified directive that silenced a finding."""
    by_path: dict[str, list[Diagnostic]] = {}
    for diagnostic in silenced:
        by_path.setdefault(diagnostic.path, []).append(diagnostic)
    out: list[Diagnostic] = []
    for summary in summaries:
        hits = by_path.get(summary.path)
        if not hits:
            continue
        for directive in summary.directives:
            if directive["justified"]:
                continue
            rules = set(directive["rules"])
            covers = any(
                ("all" in rules or d.rule in rules)
                and (
                    directive["kind"] == "disable-file"
                    or directive["target"] == d.line
                )
                for d in hits
            )
            if covers:
                out.append(Diagnostic(
                    path=summary.path, line=directive["line"], column=0,
                    rule=UNJUSTIFIED_SUPPRESSION_RULE,
                    message=(
                        "check suppression without a '-- reason' "
                        "justification; state why the finding is safe"
                    ),
                    severity=Severity.WARNING,
                ))
    return out


def analyze(
    paths: Sequence[str | Path],
    *,
    baseline: Baseline | None = None,
    cache_dir: str | Path | None = None,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    profile: str | Path | None = None,
    require_justification: bool = False,
    restrict: Iterable[str | Path] | None = None,
) -> CheckResult:
    """Run the whole-program analyses over ``paths``.

    ``restrict`` limits *reporting* (not analysis) to findings located
    in the given files — the call graph is still built from every file
    in ``paths``, so interprocedural facts stay sound, but only the
    changed files' findings surface.  This is what ``--changed-only``
    uses for fast pre-commit iteration.
    """
    started = time.perf_counter()
    active = resolve_rule_selection(select, ignore)
    profile_rows = load_profile_rows(profile) if profile is not None else None
    cache = SummaryCache(cache_dir)
    collected = _collect_summaries(paths, cache)
    index = ProjectIndex.build(collected.summaries)

    raw: list[Diagnostic] = []
    raw.extend(check_unit_flow(index))
    raw.extend(check_purity(index))
    raw.extend(check_fifo_discipline(index))
    raw.extend(check_worker_entries(index))
    raw.extend(check_hot_paths(index, profile_rows))
    raw.extend(check_process_safety(index))
    raw.extend(check_determinism_flow(index))
    raw.extend(check_exception_flow(index))

    active_set = set(active)
    by_path = {summary.path: summary for summary in collected.summaries}
    kept: list[Diagnostic] = []
    silenced: list[Diagnostic] = []
    inline_suppressed = 0
    for diagnostic in raw:
        if diagnostic.rule not in active_set:
            continue
        summary = by_path.get(diagnostic.path)
        if summary is not None and summary.suppressed(
            diagnostic.rule, diagnostic.line
        ):
            inline_suppressed += 1
            silenced.append(diagnostic)
        else:
            kept.append(diagnostic)
    if require_justification:
        kept.extend(
            _justification_findings(collected.summaries, silenced)
        )
    kept.extend(collected.parse_errors)

    if restrict is not None:
        allowed = {Path(p).resolve() for p in restrict}
        kept = [
            d for d in kept if Path(d.path).resolve() in allowed
        ]

    new, accepted = (baseline or Baseline()).split(sorted(kept))

    return CheckResult(
        diagnostics=tuple(sorted(new)),
        baselined=tuple(sorted(accepted)),
        files_scanned=collected.total,
        reanalyzed=collected.reanalyzed,
        suppressed=inline_suppressed,
        rules=tuple(active),
        elapsed_seconds=time.perf_counter() - started,
    )
