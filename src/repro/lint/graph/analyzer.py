"""Orchestration of one ``bonsai check`` run.

Pipeline: collect files -> extract (or cache-load) summaries -> build
the project index -> run the three interprocedural analyses -> filter
inline suppressions -> split against the baseline -> one
:class:`CheckResult`.

Unreadable or unparseable files become ``parse-error`` diagnostics —
a whole-program analysis with a silent hole in its call graph would
understate every transitive property, so a broken file must fail the
run visibly.
"""

from __future__ import annotations

# bonsai-lint: disable-file=determinism -- the analyzer times its own
# wall-clock run for reporting; nothing simulated depends on it

import ast
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.graph.baseline import Baseline
from repro.lint.graph.cache import SummaryCache
from repro.lint.graph.fifocheck import check_fifo_discipline
from repro.lint.graph.purity import check_purity
from repro.lint.graph.summary import FileSummary, extract_summary
from repro.lint.graph.symbols import ProjectIndex
from repro.lint.graph.unitflow import check_unit_flow
from repro.lint.graph.workercheck import check_worker_entries
from repro.lint.runner import PARSE_ERROR_RULE, collect_files


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one whole-program analysis run."""

    diagnostics: tuple[Diagnostic, ...]
    baselined: tuple[Diagnostic, ...]
    files_scanned: int
    reanalyzed: int
    suppressed: int
    rules: tuple[str, ...]
    elapsed_seconds: float = 0.0

    @property
    def exit_code(self) -> int:
        """0 when every finding is baseline-accepted; 1 otherwise."""
        return 1 if self.diagnostics else 0

    @property
    def from_cache(self) -> int:
        """Files whose summaries were loaded instead of re-extracted."""
        return self.files_scanned - self.reanalyzed

    def count(self, severity: Severity) -> int:
        """Number of *new* findings at one severity."""
        return sum(1 for d in self.diagnostics if d.severity is severity)


@dataclass
class _Collected:
    summaries: list[FileSummary] = field(default_factory=list)
    parse_errors: list[Diagnostic] = field(default_factory=list)
    reanalyzed: int = 0
    total: int = 0


def _collect_summaries(
    paths: Sequence[str | Path], cache: SummaryCache
) -> _Collected:
    out = _Collected()
    for path in collect_files(paths):
        out.total += 1
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            out.parse_errors.append(Diagnostic(
                path=str(path), line=1, column=0, rule=PARSE_ERROR_RULE,
                message=f"cannot read file: {error}", severity=Severity.ERROR,
            ))
            continue
        cached = cache.load(str(path), source)
        if cached is not None:
            out.summaries.append(cached)
            continue
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            out.parse_errors.append(Diagnostic(
                path=str(path), line=error.lineno or 1,
                column=(error.offset or 1) - 1, rule=PARSE_ERROR_RULE,
                message=f"file does not parse: {error.msg}",
                severity=Severity.ERROR,
            ))
            continue
        except ValueError as error:
            out.parse_errors.append(Diagnostic(
                path=str(path), line=1, column=0, rule=PARSE_ERROR_RULE,
                message=f"file does not parse: {error}",
                severity=Severity.ERROR,
            ))
            continue
        summary = extract_summary(str(path), source, tree)
        cache.store(source, summary)
        out.summaries.append(summary)
        out.reanalyzed += 1
    return out


def analyze(
    paths: Sequence[str | Path],
    *,
    baseline: Baseline | None = None,
    cache_dir: str | Path | None = None,
) -> CheckResult:
    """Run the whole-program analyses over ``paths``."""
    started = time.perf_counter()
    cache = SummaryCache(cache_dir)
    collected = _collect_summaries(paths, cache)
    index = ProjectIndex.build(collected.summaries)

    raw: list[Diagnostic] = []
    raw.extend(check_unit_flow(index))
    raw.extend(check_purity(index))
    raw.extend(check_fifo_discipline(index))
    raw.extend(check_worker_entries(index))

    by_path = {summary.path: summary for summary in collected.summaries}
    kept: list[Diagnostic] = []
    inline_suppressed = 0
    for diagnostic in raw:
        summary = by_path.get(diagnostic.path)
        if summary is not None and summary.suppressed(
            diagnostic.rule, diagnostic.line
        ):
            inline_suppressed += 1
        else:
            kept.append(diagnostic)
    kept.extend(collected.parse_errors)

    new, accepted = (baseline or Baseline()).split(sorted(kept))
    from repro.lint.graph import CHECK_RULES  # circular-at-import otherwise

    return CheckResult(
        diagnostics=tuple(sorted(new)),
        baselined=tuple(sorted(accepted)),
        files_scanned=collected.total,
        reanalyzed=collected.reanalyzed,
        suppressed=inline_suppressed,
        rules=tuple(sorted(CHECK_RULES)),
        elapsed_seconds=time.perf_counter() - started,
    )
