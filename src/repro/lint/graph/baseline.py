"""Committed finding baselines for ``bonsai check``.

Whole-program analyses are only adoptable when turning them on does not
require fixing every historical finding first.  The baseline file
(``.bonsai-check-baseline.json``, committed to the repo) records the
*accepted* findings: a run reports them as suppressed, fails only on
findings outside the baseline, and ``--update-baseline`` regenerates
the file after a reviewed change.

Fingerprints deliberately exclude line numbers — ``(path, rule,
message, occurrence-index)`` — so unrelated edits above a finding do
not churn the baseline; the occurrence index keeps N identical findings
in one file distinct.  Paths are normalised to working-directory-
relative POSIX form before fingerprinting, and the saved file orders
findings by ``(relpath, rule, fingerprint)``, so the same tree produces
byte-identical baselines whether the analyzer was invoked with
absolute or relative paths and regardless of the checkout location.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import LintError
from repro.lint.diagnostics import Diagnostic

BASELINE_VERSION = 1
DEFAULT_BASELINE = ".bonsai-check-baseline.json"


def _relpath(path: str) -> str:
    """Checkout-independent form of a diagnostic path.

    Relative to the working directory (the repo root in CI and the
    test suite) with POSIX separators; a path outside the tree is kept
    absolute rather than climbing through ``..`` segments.
    """
    candidate = os.path.relpath(path)
    if candidate.startswith(".."):
        return Path(path).as_posix()
    return Path(candidate).as_posix()


def _fingerprints(diagnostics: list[Diagnostic]) -> list[str]:
    """Stable fingerprint per diagnostic (order-aligned with input)."""
    seen: dict[tuple[str, str, str], int] = {}
    out: list[str] = []
    for diagnostic in diagnostics:
        key = (_relpath(diagnostic.path), diagnostic.rule, diagnostic.message)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        raw = "::".join([*key, str(occurrence)])
        out.append(hashlib.sha256(raw.encode("utf-8")).hexdigest()[:20])
    return out


@dataclass
class Baseline:
    """The accepted-finding set, keyed by fingerprint."""

    entries: dict[str, dict] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        file = Path(path)
        if not file.exists():
            return cls()
        try:
            data = json.loads(file.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise LintError(f"cannot read baseline {file}: {error}") from error
        if data.get("version") != BASELINE_VERSION:
            raise LintError(
                f"baseline {file} has version {data.get('version')!r}; "
                f"this analyzer writes version {BASELINE_VERSION} — "
                "regenerate with --update-baseline"
            )
        return cls(entries=dict(data.get("findings", {})))

    @classmethod
    def from_diagnostics(cls, diagnostics: list[Diagnostic]) -> "Baseline":
        """Baseline accepting exactly the given findings."""
        entries: dict[str, dict] = {}
        for print_, diagnostic in zip(_fingerprints(diagnostics), diagnostics):
            entries[print_] = {
                "rule": diagnostic.rule,
                "path": _relpath(diagnostic.path),
                "message": diagnostic.message,
            }
        return cls(entries=entries)

    def save(self, path: str | Path) -> None:
        """Write the baseline, byte-stable across checkouts.

        Findings are ordered by ``(relpath, rule, fingerprint)`` —
        NOT by raw fingerprint, whose order would follow the hash of
        whatever path form the analyzer was invoked with.  The entry
        dicts are emitted with sorted keys by construction, so the
        document needs no ``sort_keys`` pass that would disturb the
        finding order.
        """
        ordered = sorted(
            self.entries.items(),
            key=lambda item: (
                item[1].get("path", ""), item[1].get("rule", ""), item[0],
            ),
        )
        payload = {
            "findings": {
                key: {
                    "message": entry.get("message", ""),
                    "path": entry.get("path", ""),
                    "rule": entry.get("rule", ""),
                }
                for key, entry in ordered
            },
            "tool": "bonsai-check",
            "version": BASELINE_VERSION,
        }
        Path(path).write_text(
            json.dumps(payload, indent=2) + "\n",
            encoding="utf-8",
        )

    def split(
        self, diagnostics: list[Diagnostic]
    ) -> tuple[list[Diagnostic], list[Diagnostic]]:
        """Partition findings into ``(new, baselined)``."""
        new: list[Diagnostic] = []
        accepted: list[Diagnostic] = []
        for print_, diagnostic in zip(_fingerprints(diagnostics), diagnostics):
            if print_ in self.entries:
                accepted.append(diagnostic)
            else:
                new.append(diagnostic)
        return new, accepted
