"""Committed finding baselines for ``bonsai check``.

Whole-program analyses are only adoptable when turning them on does not
require fixing every historical finding first.  The baseline file
(``.bonsai-check-baseline.json``, committed to the repo) records the
*accepted* findings: a run reports them as suppressed, fails only on
findings outside the baseline, and ``--update-baseline`` regenerates
the file after a reviewed change.

Fingerprints deliberately exclude line numbers — ``(path, rule,
message, occurrence-index)`` — so unrelated edits above a finding do
not churn the baseline; the occurrence index keeps N identical findings
in one file distinct.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import LintError
from repro.lint.diagnostics import Diagnostic

BASELINE_VERSION = 1
DEFAULT_BASELINE = ".bonsai-check-baseline.json"


def _fingerprints(diagnostics: list[Diagnostic]) -> list[str]:
    """Stable fingerprint per diagnostic (order-aligned with input)."""
    seen: dict[tuple[str, str, str], int] = {}
    out: list[str] = []
    for diagnostic in diagnostics:
        key = (diagnostic.path, diagnostic.rule, diagnostic.message)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        raw = "::".join([*key, str(occurrence)])
        out.append(hashlib.sha256(raw.encode("utf-8")).hexdigest()[:20])
    return out


@dataclass
class Baseline:
    """The accepted-finding set, keyed by fingerprint."""

    entries: dict[str, dict] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        file = Path(path)
        if not file.exists():
            return cls()
        try:
            data = json.loads(file.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise LintError(f"cannot read baseline {file}: {error}") from error
        if data.get("version") != BASELINE_VERSION:
            raise LintError(
                f"baseline {file} has version {data.get('version')!r}; "
                f"this analyzer writes version {BASELINE_VERSION} — "
                "regenerate with --update-baseline"
            )
        return cls(entries=dict(data.get("findings", {})))

    @classmethod
    def from_diagnostics(cls, diagnostics: list[Diagnostic]) -> "Baseline":
        """Baseline accepting exactly the given findings."""
        entries: dict[str, dict] = {}
        for print_, diagnostic in zip(_fingerprints(diagnostics), diagnostics):
            entries[print_] = {
                "rule": diagnostic.rule,
                "path": diagnostic.path,
                "message": diagnostic.message,
            }
        return cls(entries=entries)

    def save(self, path: str | Path) -> None:
        """Write the baseline (sorted, so diffs stay reviewable)."""
        payload = {
            "version": BASELINE_VERSION,
            "tool": "bonsai-check",
            "findings": {
                key: self.entries[key] for key in sorted(self.entries)
            },
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def split(
        self, diagnostics: list[Diagnostic]
    ) -> tuple[list[Diagnostic], list[Diagnostic]]:
        """Partition findings into ``(new, baselined)``."""
        new: list[Diagnostic] = []
        accepted: list[Diagnostic] = []
        for print_, diagnostic in zip(_fingerprints(diagnostics), diagnostics):
            if print_ in self.entries:
                accepted.append(diagnostic)
            else:
                new.append(diagnostic)
        return new, accepted
