"""Content-hash summary cache.

Extraction (parse + one AST pass) dominates a cold ``bonsai check``;
the whole-program propagation passes are linear in the summary sizes
and always re-run.  The cache therefore stores one JSON summary per
*content hash*: a warm run with unchanged sources re-extracts zero
files, and an edit invalidates exactly the entries whose content
changed — the call-graph SCCs touching them are recomputed from the
freshly assembled index, which is the cheap part.

Entries are keyed ``sha256(source) + SUMMARY_VERSION + rule-set
hash``, so path renames hit the cache while analyzer upgrades — a
bumped summary version *or* an added/changed rule — miss it wholesale.
Content hash alone would be wrong: a warm cache from before a new pass
landed would silently skip the facts that pass needs.  The cache is
advisory: any read/decode error falls back to re-extraction.

The version and rule table are read through their modules on every
call (not imported as values) so tests can monkeypatch a bump and
assert the forced re-extraction.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.lint.graph import rules as _rules
from repro.lint.graph import summary as _summary
from repro.lint.graph.summary import FileSummary


def content_key(source: str) -> str:
    """Cache key of one file's contents under the current analyzer."""
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return (
        f"{digest}-v{_summary.SUMMARY_VERSION}-r{_rules.ruleset_hash()}"
    )


class SummaryCache:
    """Directory of serialized :class:`FileSummary` objects."""

    def __init__(self, directory: str | Path | None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.hits = 0
        self.misses = 0
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    @property
    def enabled(self) -> bool:
        return self.directory is not None

    def load(self, path: str, source: str) -> FileSummary | None:
        """Cached summary for ``source``, or ``None`` on a miss."""
        if self.directory is None:
            return None
        entry = self.directory / f"{content_key(source)}.json"
        try:
            data = json.loads(entry.read_text(encoding="utf-8"))
            summary = (
                FileSummary.from_json(path, data)
                if data.get("version") == _summary.SUMMARY_VERSION else None
            )
        except (OSError, ValueError, KeyError, TypeError):
            summary = None
        if summary is None:
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def store(self, source: str, summary: FileSummary) -> None:
        """Persist one freshly extracted summary (best effort)."""
        if self.directory is None:
            return
        entry = self.directory / f"{content_key(source)}.json"
        try:
            entry.write_text(
                json.dumps(summary.to_json(), sort_keys=True),
                encoding="utf-8",
            )
        except OSError:  # bonsai-lint: disable=exn-swallow -- a read-only cache dir degrades to cold runs; the analysis result is unaffected
            pass
