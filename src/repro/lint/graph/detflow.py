"""Interprocedural determinism-taint analysis.

Every claim this reproduction makes — cycle counts, bench baselines,
the parallel layer's bit-identity guarantee — is an assertion about a
deterministic computation.  The per-file ``determinism`` rule flags
*direct* nondeterminism (an unseeded RNG, a wall-clock read, a set
iteration) in the file that contains it; this pass follows the value.
Taint introduced by a source propagates through returns, parameters and
``self`` attributes over the call graph until it either dies locally or
*surfaces* — at a sink, at a ``return``, or at an iteration site — and
only surfacing taint is reported:

``det-taint-sink``
    a tainted value reaches a sink argument: a call into ``repro.obs``
    (trace/record payloads) or ``repro.bench`` (benchmark results and
    baselines), a ``hashlib`` digest, or any callee whose name contains
    ``digest``/``fingerprint``.  Reported at the sink call (or at the
    call handing the tainted argument to a function that forwards it to
    a sink), with the source as a related location.
``det-unseeded-flow``
    a deterministic-contract module (``repro.engine``, ``repro.hw``,
    ``repro.core``, ``repro.records``, ``repro.parallel``) consumes a
    call result carrying *value* taint (RNG, clock, ``id()``).  Those
    layers' outputs are the paper's claims; they must not observe
    nondeterministic values at all, sink or no sink.
``det-order-leak``
    *order* taint (set hash order, directory-listing order, parallel
    completion order) crosses a function boundary unsorted: a function
    returns order-tainted data produced elsewhere, or iterates a
    set/listing built by another function.  Same-function order hazards
    stay with the file-local rule.

Three sanctions keep the pass quiet on legitimate code (the documented
false-positive guards):

* a *seeded* RNG — ``random.Random(seed)`` / ``default_rng(seed)`` with
  any argument — is never a source, so seeds threaded from config flow
  freely;
* ``sorted()`` (and the order-insensitive reductions ``min``/``max``/
  ``sum``/``len``/``any``/``all``) launder order taint — sorting fixes
  the order but deliberately keeps value taint, because sorting random
  numbers does not make them reproducible;
* wall-clock reads inside ``repro.obs``, ``repro.bench`` and
  ``repro.lint`` are sanctioned: observability spans, benchmark wall
  times and the analyzer's own run timer measure the *host*, not the
  simulated machine, and are never compared across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.graph.symbols import ProjectIndex

#: taint kinds whose *values* differ across runs
VALUE_KINDS = frozenset({"rng", "clock", "id"})
#: taint kinds whose iteration/element *order* differs across runs
ORDER_KINDS = frozenset({"set-order", "fs-order", "completion-order"})
#: a set-valued expression: hazardous only once something iterates it
CARRIER_KIND = "set-carrier"

#: modules whose wall-clock reads are sanctioned (they time the host,
#: not the simulated machine, and their readings gate nothing replayed).
#: ``repro.distributed.executor`` joins the list for the same reason the
#: bench runner is on it: the executed cluster sort's figure of merit
#: *is* host wall-clock (Table I's ``elapsed x nodes / GB``), measured
#: around phases whose outputs are separately oracle-verified and
#: digest-gated — the timings annotate the run, they never gate replay.
#: ``repro.serve.server``/``client``/``smoke`` are wall-clock territory
#: by nature (an asyncio event loop, socket timeouts, signal-driven
#: drain); everything they *execute* goes through the deterministic
#: :mod:`repro.serve.session`, which is deliberately NOT sanctioned.
CLOCK_SANCTIONED_PREFIXES = (
    "repro.obs.", "repro.bench.", "repro.lint.",
    "repro.distributed.executor.",
    "repro.serve.server.", "repro.serve.client.", "repro.serve.smoke.",
)

#: modules under the deterministic-computation contract
DETERMINISTIC_ZONES = (
    "repro.engine.", "repro.hw.", "repro.core.", "repro.records.",
    "repro.parallel.", "repro.serve.session.", "repro.serve.queue.",
    "repro.serve.protocol.",
)

#: resolved-callee prefixes that persist cross-run evidence
SINK_PREFIXES = ("repro.obs.", "repro.bench.")
#: syntactic dotted heads that fingerprint their arguments
DIGEST_ROOTS = ("hashlib",)
#: callee-name fragments marking evidence sinks wherever they live
SINK_NAME_HINTS = ("digest", "fingerprint")

_KIND_LABEL = {
    "rng": "an unseeded RNG", "clock": "a wall-clock read",
    "id": "object identity (id())", "set-order": "set hash order",
    "fs-order": "directory-listing order",
    "completion-order": "parallel completion order",
    CARRIER_KIND: "a set's hash order",
}


@dataclass
class TaintAnalysis:
    """Fixpoint of taint facts over the call graph.

    ``ret[fq]`` holds the concrete taints a function's return value may
    carry; ``passthru[fq]`` maps parameters whose taint reaches the
    return to ``"full"`` or ``"ordfree"`` (through a launderer);
    ``sinkp[fq]`` maps parameters that reach a sink inside ``fq`` (or
    transitively through its callees) to ``(sink label, mode)``;
    ``attr[(class fq, attr)]`` accumulates taints written into ``self``
    attributes by any method of the class.
    """

    index: ProjectIndex
    ret: dict[str, set] = field(default_factory=dict)
    passthru: dict[str, dict[str, str]] = field(default_factory=dict)
    sinkp: dict[str, dict[str, tuple]] = field(default_factory=dict)
    attr: dict[tuple[str, str], set] = field(default_factory=dict)

    _MAX_ROUNDS = 12

    def solve(self) -> None:
        for fq in self.index.functions:
            self.ret[fq] = set()
            self.passthru[fq] = {}
            self.sinkp[fq] = {}
        for _ in range(self._MAX_ROUNDS):
            if not self._round():
                break

    def _round(self) -> bool:
        changed = False
        for fq, fn in self.index.functions.items():
            flow = fn.flow
            owner = self._owner(fq)
            if owner is not None:
                for write in flow.get("self_sets", []):
                    key = (owner, write["attr"])
                    taints = self.concrete(fq, write["atoms"])
                    have = self.attr.setdefault(key, set())
                    if not taints <= have:
                        have |= taints
                        changed = True
            for record in flow.get("returns", []):
                taints = self.concrete(fq, record["atoms"])
                if not taints <= self.ret[fq]:
                    self.ret[fq] |= taints
                    changed = True
                if self._merge_modes(
                    self.passthru[fq], self.param_modes(fq, record["atoms"])
                ):
                    changed = True
            for call in flow.get("calls", []):
                callee = self.index.resolve_call(fq, call["target"])
                label = self.sink_label(fq, call, callee)
                if label is not None:
                    for atoms in self._all_args(call):
                        for param, mode in self.param_modes(fq, atoms).items():
                            if param not in self.sinkp[fq]:
                                self.sinkp[fq][param] = (label, mode)
                                changed = True
                elif callee is not None and self.sinkp.get(callee):
                    for param, atoms in self.arg_params(call, callee).items():
                        hit = self.sinkp[callee].get(param)
                        if hit is None:
                            continue
                        for own, mode in self.param_modes(fq, atoms).items():
                            if own not in self.sinkp[fq]:
                                combined = (
                                    "ordfree"
                                    if "ordfree" in (mode, hit[1]) else "full"
                                )
                                self.sinkp[fq][own] = (hit[0], combined)
                                changed = True
        return changed

    # -- resolution ----------------------------------------------------
    def concrete(self, fq: str, atoms: list, depth: int = 0) -> set:
        """Taint tuples ``(kind, origin fq, line, col, detail)``."""
        if depth > 6:
            return set()
        fn = self.index.functions.get(fq)
        if fn is None:
            return set()
        flow = fn.flow
        out: set = set()
        for atom in atoms:
            tag = atom[0]
            if tag == "src":
                source = flow.get("sources", [])[atom[1]]
                if self._sanctioned(fq, source):
                    continue
                out.add((
                    source["kind"], fq, source["line"], source["col"],
                    source["detail"],
                ))
            elif tag == "call":
                call = flow.get("calls", [])[atom[1]]
                callee = self.index.resolve_call(fq, call["target"])
                if callee is None:
                    # unknown callee (builtin, stdlib, foreign): assume
                    # it passes its inputs through to its result, so
                    # taint survives str()/encode()/join() conversions
                    for inputs in self._all_inputs(call):
                        out |= self.concrete(fq, inputs, depth + 1)
                    continue
                out |= self.ret.get(callee, set())
                for param, arg_atoms in self.arg_params(call, callee).items():
                    mode = self.passthru.get(callee, {}).get(param)
                    if mode is None:
                        continue
                    through = self.concrete(fq, arg_atoms, depth + 1)
                    if mode == "ordfree":
                        through = {t for t in through if t[0] in VALUE_KINDS}
                    out |= through
            elif tag == "self":
                owner = self._owner(fq)
                if owner is not None:
                    out |= self.attr.get((owner, atom[1]), set())
            elif tag == "ordfree":
                out |= {
                    t for t in self.concrete(fq, [atom[1]], depth + 1)
                    if t[0] in VALUE_KINDS
                }
        return out

    def param_modes(
        self, fq: str, atoms: list, depth: int = 0, laundered: bool = False
    ) -> dict[str, str]:
        """Own parameters feeding ``atoms``, with their laundering mode."""
        if depth > 6:
            return {}
        fn = self.index.functions.get(fq)
        if fn is None:
            return {}
        flow = fn.flow
        out: dict[str, str] = {}
        mode = "ordfree" if laundered else "full"
        for atom in atoms:
            tag = atom[0]
            if tag == "param":
                self._merge_modes(out, {atom[1]: mode})
            elif tag == "ordfree":
                self._merge_modes(out, self.param_modes(
                    fq, [atom[1]], depth + 1, laundered=True
                ))
            elif tag == "call":
                call = flow.get("calls", [])[atom[1]]
                callee = self.index.resolve_call(fq, call["target"])
                if callee is None:
                    for inputs in self._all_inputs(call):
                        self._merge_modes(out, self.param_modes(
                            fq, inputs, depth + 1, laundered=laundered,
                        ))
                    continue
                for param, arg_atoms in self.arg_params(call, callee).items():
                    inner = self.passthru.get(callee, {}).get(param)
                    if inner is None:
                        continue
                    self._merge_modes(out, self.param_modes(
                        fq, arg_atoms, depth + 1,
                        laundered=laundered or inner == "ordfree",
                    ))
        return out

    @staticmethod
    def _merge_modes(have: dict[str, str], new: dict[str, str]) -> bool:
        changed = False
        for param, mode in new.items():
            current = have.get(param)
            if current is None or (current == "ordfree" and mode == "full"):
                have[param] = mode
                changed = True
        return changed

    def arg_params(self, call: dict, callee: str) -> dict[str, list]:
        """Callee parameter -> caller-side atoms for one call site."""
        fn = self.index.functions.get(callee)
        if fn is None:
            return {}
        out: dict[str, list] = {}
        for position, atoms in enumerate(call.get("args", [])):
            if position < len(fn.params):
                out[fn.params[position]] = atoms
        for name, atoms in call.get("kwargs", {}).items():
            if name in fn.params:
                out[name] = atoms
        return out

    @staticmethod
    def _all_args(call: dict) -> list:
        return list(call.get("args", [])) + list(call.get("kwargs", {}).values())

    @staticmethod
    def _all_inputs(call: dict) -> list:
        """Args, kwargs *and* the method-call receiver's atoms."""
        out = TaintAnalysis._all_args(call)
        recv = call.get("recv")
        if recv:
            out.append(recv)
        return out

    def sink_label(
        self, fq: str, call: dict, callee: str | None
    ) -> str | None:
        """A human-readable sink name when this call persists evidence."""
        if callee is not None:
            if callee.startswith(SINK_PREFIXES):
                return f"{callee}()"
            tail = callee.rsplit(".", 1)[-1]
            if any(hint in tail for hint in SINK_NAME_HINTS):
                return f"{callee}()"
        target = call["target"]
        if target[0] == "dotted":
            dotted = target[1]
            if dotted.split(".")[0] in DIGEST_ROOTS:
                return f"{dotted}()"
            tail = dotted.rsplit(".", 1)[-1]
            if any(hint in tail for hint in SINK_NAME_HINTS):
                return f"{dotted}()"
        if target[0] == "name" and any(
            hint in target[1] for hint in SINK_NAME_HINTS
        ):
            return f"{target[1]}()"
        return None

    def _sanctioned(self, fq: str, source: dict) -> bool:
        if source["kind"] != "clock":
            return False
        summary = self.index.file_of.get(fq)
        module = summary.module if summary is not None else None
        return bool(module) and (module + ".").startswith(
            CLOCK_SANCTIONED_PREFIXES
        )

    def _owner(self, fq: str) -> str | None:
        fn = self.index.functions.get(fq)
        if fn is None or fn.class_name is None:
            return None
        summary = self.index.file_of.get(fq)
        module = summary.module if summary is not None else None
        if module is None:
            return None
        return f"{module}.{fn.class_name}"


def _pick(taints: set, keep) -> tuple | None:
    """The taint a diagnostic shows: deterministic choice, values first.

    Takes the raw set plus a predicate (rather than a pre-filtered set)
    so the selection is a single order-insensitive ``min`` reduction —
    which is also why this pass's own set consumption never trips its
    ``det-order-leak`` rule.
    """
    kept = [t for t in taints if keep(t)]
    if not kept:
        return None
    return min(
        kept,
        key=lambda t: (t[0] not in VALUE_KINDS, t[0], t[1], t[2], t[3]),
    )


def _source_note(index: ProjectIndex, taint: tuple) -> str:
    kind, origin, line, _col, detail = taint
    return (
        f"{_KIND_LABEL.get(kind, kind)} from {detail} in "
        f"{origin}() (line {line})"
    )


def _related(index: ProjectIndex, taint: tuple) -> tuple:
    kind, origin, line, col, detail = taint
    path = index.paths.get(origin)
    if path is None:
        return ()
    return ({
        "path": path, "line": line, "column": col,
        "message": f"{_KIND_LABEL.get(kind, kind)} introduced here ({detail})",
    },)


def check_determinism_flow(index: ProjectIndex) -> list[Diagnostic]:
    """Emit ``det-*`` diagnostics over the whole program."""
    analysis = TaintAnalysis(index)
    analysis.solve()
    out: list[Diagnostic] = []
    seen: set[tuple] = set()

    def emit(
        rule: str, fq: str, line: int, col: int, message: str,
        taint: tuple, severity: Severity = Severity.ERROR,
    ) -> None:
        key = (rule, index.paths[fq], line, taint[0], taint[1], taint[2])
        if key in seen:
            return
        seen.add(key)
        out.append(Diagnostic(
            path=index.paths[fq], line=line, column=col, rule=rule,
            message=message, severity=severity,
            related=_related(index, taint),
        ))

    for fq, fn in index.functions.items():
        summary = index.file_of[fq]
        module = summary.module or ""
        if not module.startswith("repro."):
            continue
        flow = fn.flow
        in_zone = (module + ".").startswith(DETERMINISTIC_ZONES)
        for call in flow.get("calls", []):
            callee = index.resolve_call(fq, call["target"])
            label = analysis.sink_label(fq, call, callee)
            if label is not None:
                taints: set = set()
                for atoms in analysis._all_args(call):
                    taints |= analysis.concrete(fq, atoms)
                taint = _pick(taints, lambda t: t[0] != CARRIER_KIND)
                if taint is not None:
                    emit(
                        "det-taint-sink", fq, call["line"], call["col"],
                        f"{_source_note(index, taint)} reaches evidence "
                        f"sink {label}; thread a config seed or sort "
                        "before recording",
                        taint,
                    )
            elif callee is not None and analysis.sinkp.get(callee):
                for param, atoms in analysis.arg_params(call, callee).items():
                    hit = analysis.sinkp[callee].get(param)
                    if hit is None:
                        continue
                    ordfree = hit[1] == "ordfree"
                    taint = _pick(
                        analysis.concrete(fq, atoms),
                        lambda t: t[0] != CARRIER_KIND
                        and (not ordfree or t[0] in VALUE_KINDS),
                    )
                    if taint is not None:
                        emit(
                            "det-taint-sink", fq, call["line"], call["col"],
                            f"{_source_note(index, taint)} is handed to "
                            f"{callee}() parameter '{param}', which "
                            f"forwards it to evidence sink {hit[0]}",
                            taint,
                        )
            if in_zone and callee is not None:
                taint = _pick(
                    analysis.ret.get(callee, set()),
                    lambda t: t[0] in VALUE_KINDS,
                )
                if taint is not None:
                    emit(
                        "det-unseeded-flow", fq, call["line"], call["col"],
                        f"{fq}() consumes the return value of {callee}(), "
                        f"which carries {_source_note(index, taint)}; "
                        "deterministic-contract code must thread a seed "
                        "from config instead",
                        taint,
                    )
        for record in flow.get("returns", []):
            taint = _pick(
                analysis.concrete(fq, record["atoms"]),
                lambda t: t[0] in ORDER_KINDS and t[1] != fq,
            )
            if taint is not None:
                emit(
                    "det-order-leak", fq, record["line"], fn.col,
                    f"{fq}() returns data carrying "
                    f"{_source_note(index, taint)} across a function "
                    "boundary; wrap it in sorted(...) before returning",
                    taint, severity=Severity.WARNING,
                )
        for site in flow.get("iters", []):
            taint = _pick(
                analysis.concrete(fq, site["atoms"]),
                lambda t: (t[0] in ORDER_KINDS or t[0] == CARRIER_KIND)
                and t[1] != fq,
            )
            if taint is not None:
                emit(
                    "det-order-leak", fq, site["line"], site["col"],
                    f"{fq}() iterates data carrying "
                    f"{_source_note(index, taint)} built in another "
                    "function; wrap the iterable in sorted(...)",
                    taint, severity=Severity.WARNING,
                )
    return out
