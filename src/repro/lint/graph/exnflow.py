"""Interprocedural exception-flow analysis.

The per-file ``error-taxonomy`` rule bans raising bare builtins; this
pass follows what actually *escapes*.  For every function it computes
the set of exception types that may propagate out — raise sites minus
the handlers lexically protecting them, plus everything escaping from
resolved callees minus the handlers around those call sites — with the
subtraction aware of the :mod:`repro.errors` taxonomy hierarchy (an
``except BonsaiError`` catches ``ConfigurationError``; an ``except
ValueError`` catches it too, through its dual inheritance) and of the
builtin exception hierarchy.

Rules:

``exn-escape``
    a known non-``BonsaiError`` type escapes a public CLI entry point
    (a ``main()`` in any ``repro.*`` module, or a ``_cmd_*`` handler in
    ``repro.cli``).  ``bonsai``'s contract is that every failure
    surfaces as a taxonomy error with exit code 2; anything else is a
    traceback in the user's face.
``exn-swallow``
    a handler catches an exception and drops it — its body is nothing
    but ``pass``/``continue``/docstring — without re-raising, logging,
    or computing a fallback.
``exn-broad-fallback``
    ``except Exception`` (or broader) inside ``repro.parallel``, where
    the timeout/serial-recompute fallback paths depend on *precise*
    catches: a broad catch there turns a real worker bug into a silent
    serial recompute.
``exn-dead-handler``
    a handler for a taxonomy type that no raise or resolved call in its
    ``try`` body can produce.  Only fires when the body's call closure
    is fully analysable (every call resolves in-project or is clearly
    stdlib/builtin) — an opaque callback could raise anything, so those
    try blocks are skipped rather than guessed at.

Two subtraction subtleties are deliberate: a handler containing a bare
``raise`` does not subtract its types (it re-raises what it caught),
and a raise of an *unresolvable* name (``raise err`` through a
variable) escapes as the unknown marker, which only ``except`` /
``except Exception``-or-broader handlers subtract and which suppresses
``exn-escape``/``exn-dead-handler`` findings it reaches — unknowns are
never reported, only known types are.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.graph.symbols import ProjectIndex

#: the taxonomy root every public failure must derive from
BONSAI_ERROR = "repro.errors.BonsaiError"

#: escapes every entry point may pass through untranslated
ENTRY_ALLOWED = frozenset({"SystemExit", "KeyboardInterrupt", "GeneratorExit"})

#: modules whose broad catches are load-bearing-precise fallback paths
FALLBACK_PREFIX = "repro.parallel."

#: marker for a raise whose type the analysis cannot resolve
UNKNOWN = "?"

#: builtin exception -> its base, the slice of the stdlib hierarchy the
#: subtraction needs (anything absent is treated as a direct Exception)
BUILTIN_BASES: dict[str, str] = {
    "Exception": "BaseException",
    "SystemExit": "BaseException",
    "KeyboardInterrupt": "BaseException",
    "GeneratorExit": "BaseException",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "BufferError": "Exception",
    "EOFError": "Exception",
    "ImportError": "Exception",
    "ModuleNotFoundError": "ImportError",
    "LookupError": "Exception",
    "IndexError": "LookupError",
    "KeyError": "LookupError",
    "MemoryError": "Exception",
    "NameError": "Exception",
    "UnboundLocalError": "NameError",
    "OSError": "Exception",
    "FileNotFoundError": "OSError",
    "FileExistsError": "OSError",
    "PermissionError": "OSError",
    "IsADirectoryError": "OSError",
    "NotADirectoryError": "OSError",
    "InterruptedError": "OSError",
    "TimeoutError": "OSError",
    "ConnectionError": "OSError",
    "BrokenPipeError": "ConnectionError",
    "ReferenceError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "StopIteration": "Exception",
    "StopAsyncIteration": "Exception",
    "SyntaxError": "Exception",
    "IndentationError": "SyntaxError",
    "SystemError": "Exception",
    "TypeError": "Exception",
    "ValueError": "Exception",
    "UnicodeError": "ValueError",
    "UnicodeDecodeError": "UnicodeError",
    "UnicodeEncodeError": "UnicodeError",
    "Warning": "Exception",
}

#: builtin callables that cannot raise project taxonomy types, for the
#: dead-handler completeness judgement
_SAFE_BUILTIN_CALLS = frozenset({
    "int", "float", "str", "bytes", "bool", "len", "repr", "format",
    "sorted", "min", "max", "sum", "abs", "round", "list", "dict",
    "tuple", "set", "frozenset", "range", "enumerate", "zip", "map",
    "filter", "isinstance", "issubclass", "getattr", "setattr",
    "hasattr", "print", "open", "iter", "next", "divmod", "any", "all",
    "id", "hash", "vars", "type",
})


@dataclass
class ExceptionFlow:
    """Escaped-exception sets and their provenance over the call graph."""

    index: ProjectIndex
    #: function fq -> {type key -> origin}; origin is
    #: ``("raise", line, col)`` or ``("call", callee fq)``
    escapes: dict[str, dict[str, tuple]] = field(default_factory=dict)
    #: function fq -> whether its call closure is fully analysable
    complete: dict[str, bool] = field(default_factory=dict)

    def solve(self) -> None:
        seeds = {
            fq: self._seed(fq, fn)
            for fq, fn in self.index.functions.items()
        }
        for fq in self.index.functions:
            self.escapes[fq] = dict(seeds[fq])
        for component in self.index.sccs():
            for _ in range(2 if len(component) > 1 else 1):
                for fq in component:
                    self._propagate(fq)
        self._solve_complete()

    # -- type resolution ----------------------------------------------
    def canon(self, fq: str, name: str | None) -> str | None:
        """Canonical key of a syntactic exception name, ``UNKNOWN``
        for an unresolvable bare name, ``None`` for no name at all."""
        if name is None:
            return None
        summary = self.index.file_of.get(fq)
        module = summary.module if summary is not None else None
        fn = self.index.functions.get(fq)
        if fn is not None and name.split(".")[0] in fn.local_imports:
            parts = name.split(".")
            rebased = ".".join(
                [fn.local_imports[parts[0]]] + parts[1:]
            )
            resolved = self.index.resolve_class_name(module, rebased)
            if resolved is not None:
                return resolved
            name = rebased
        resolved = self.index.resolve_class_name(module, name)
        if resolved is not None:
            return resolved
        if name in BUILTIN_BASES or name == "BaseException":
            return name
        if "." in name:
            return name  # foreign but named (e.g. argparse.ArgumentTypeError)
        return UNKNOWN

    def bases(self, key: str) -> list[str]:
        if key in ("BaseException", UNKNOWN):
            return []
        klass = self.index.classes.get(key)
        if klass is not None:
            module = key.rsplit(".", 1)[0]
            out = []
            for base in klass.bases:
                resolved = self.index.resolve_class_name(module, base)
                out.append(resolved if resolved is not None else base)
            return out
        if key in BUILTIN_BASES:
            return [BUILTIN_BASES[key]]
        return ["Exception"]  # foreign dotted types

    def is_subtype(self, key: str, ancestor: str) -> bool:
        seen = set()
        frontier = [key]
        while frontier:
            current = frontier.pop()
            if current == ancestor:
                return True
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.bases(current))
        return False

    def _catches(self, fq: str, handler: dict, key: str) -> bool:
        if handler.get("bare_reraise"):
            return False  # re-raises what it caught; no subtraction
        if handler.get("bare"):
            return True
        for name in handler.get("types", []):
            caught = self.canon(fq, name)
            if caught is None or caught == UNKNOWN:
                continue
            if key == UNKNOWN:
                if caught in ("Exception", "BaseException"):
                    return True
            elif self.is_subtype(key, caught):
                return True
        return False

    def caught_by(self, fq: str, guards: list[int], key: str) -> bool:
        fn = self.index.functions.get(fq)
        tries = fn.flow.get("tries", []) if fn is not None else []
        for try_id in guards:
            if try_id >= len(tries):
                continue
            for handler in tries[try_id]["handlers"]:
                if self._catches(fq, handler, key):
                    return True
        return False

    # -- propagation ---------------------------------------------------
    def _seed(self, fq: str, fn) -> dict[str, tuple]:
        out: dict[str, tuple] = {}
        for record in fn.flow.get("raises", []):
            key = self.canon(fq, record["type"])
            if key is None:
                continue  # bare re-raise: covered by non-subtraction
            if self.caught_by(fq, record["guards"], key):
                continue
            out.setdefault(key, ("raise", record["line"], record["col"]))
        return out

    def _propagate(self, fq: str) -> None:
        fn = self.index.functions.get(fq)
        if fn is None:
            return
        mine = self.escapes[fq]
        for call in fn.flow.get("calls", []):
            callee = self.index.resolve_call(fq, call["target"])
            if callee is None:
                continue
            for key in self.escapes.get(callee, ()):
                if key in mine:
                    continue
                if self.caught_by(fq, call["guards"], key):
                    continue
                mine[key] = ("call", callee)

    def _solve_complete(self) -> None:
        for fq, fn in self.index.functions.items():
            self.complete[fq] = all(
                self._call_analysable(fq, fn, call)[0]
                for call in fn.flow.get("calls", [])
            )
        for _ in range(12):
            changed = False
            for fq, fn in self.index.functions.items():
                if not self.complete[fq]:
                    continue
                for call in fn.flow.get("calls", []):
                    callee = self.index.resolve_call(fq, call["target"])
                    if callee is not None and not self.complete.get(
                        callee, False
                    ):
                        self.complete[fq] = False
                        changed = True
                        break
            if not changed:
                break

    def _call_analysable(
        self, fq: str, fn, call: dict
    ) -> tuple[bool, str | None]:
        """``(analysable, resolved callee)`` for the dead-handler check."""
        callee = self.index.resolve_call(fq, call["target"])
        if callee is not None:
            return True, callee
        target = call["target"]
        if target[0] == "name":
            name = target[1]
            if name in fn.params:
                return False, None  # a callback could raise anything
            if name in _SAFE_BUILTIN_CALLS:
                return True, None
            binding = fn.local_imports.get(name)
            if binding is None:
                summary = self.index.file_of.get(fq)
                binding = (
                    summary.imports.get(name) if summary is not None else None
                )
            if binding is not None and not binding.startswith("repro"):
                return True, None  # resolved import outside the project
            return False, None
        if target[0] == "dotted":
            root = target[1].split(".")[0]
            summary = self.index.file_of.get(fq)
            binding = fn.local_imports.get(root) or (
                summary.imports.get(root) if summary is not None else None
            )
            if binding is not None and not binding.startswith("repro"):
                return True, None  # stdlib/third-party module call
            return False, None
        return False, None

    # -- provenance ----------------------------------------------------
    def trail(self, fq: str, key: str, limit: int = 8) -> list[tuple]:
        """``[(fq, origin), ...]`` hops from ``fq`` to the raise site."""
        steps: list[tuple] = []
        current = fq
        for _ in range(limit):
            origin = self.escapes.get(current, {}).get(key)
            if origin is None:
                break
            steps.append((current, origin))
            if origin[0] == "raise":
                break
            current = origin[1]
        return steps


def _is_entry(fq: str, module: str) -> bool:
    name = fq.rsplit(".", 1)[-1]
    if module == "repro.cli" and name.startswith("_cmd_"):
        return True
    return name == "main" and module.startswith("repro")


def _related_chain(
    index: ProjectIndex, flow: ExceptionFlow, fq: str, key: str
) -> tuple:
    related = []
    for hop_fq, origin in flow.trail(fq, key):
        path = index.paths.get(hop_fq)
        if path is None:
            continue
        if origin[0] == "raise":
            related.append({
                "path": path, "line": origin[1], "column": origin[2],
                "message": f"{key} raised here in {hop_fq}()",
            })
        else:
            fn = index.functions.get(hop_fq)
            if fn is not None:
                related.append({
                    "path": path, "line": fn.line, "column": fn.col,
                    "message": f"{key} passes through {hop_fq}()",
                })
    return tuple(related)


def check_exception_flow(index: ProjectIndex) -> list[Diagnostic]:
    """Emit ``exn-*`` diagnostics over the whole program."""
    flow = ExceptionFlow(index)
    flow.solve()
    out: list[Diagnostic] = []

    for fq, fn in index.functions.items():
        summary = index.file_of[fq]
        module = summary.module or ""
        if not module.startswith("repro"):
            continue
        path = index.paths[fq]
        facts = fn.flow

        if _is_entry(fq, module):
            for key in sorted(flow.escapes.get(fq, ())):
                if key == UNKNOWN or key in ENTRY_ALLOWED:
                    continue
                if flow.is_subtype(key, BONSAI_ERROR):
                    continue
                out.append(Diagnostic(
                    path=path, line=fn.line, column=fn.col,
                    rule="exn-escape",
                    message=(
                        f"non-taxonomy exception {key} can escape CLI "
                        f"entry point {fq}(); catch it or convert it to "
                        "a BonsaiError subclass so the CLI exits 2 with "
                        "a message instead of a traceback"
                    ),
                    severity=Severity.ERROR,
                    related=_related_chain(index, flow, fq, key),
                ))

        for record in facts.get("tries", []):
            for handler in record["handlers"]:
                what = (
                    "everything"
                    if handler["bare"] else ", ".join(handler["types"])
                )
                if handler["swallows"]:
                    out.append(Diagnostic(
                        path=path, line=handler["line"],
                        column=handler["col"], rule="exn-swallow",
                        message=(
                            f"handler catches {what} and drops it; "
                            "re-raise, log, or compute a fallback so "
                            "the failure leaves a trace"
                        ),
                        severity=Severity.WARNING,
                    ))
                if module.startswith(FALLBACK_PREFIX[:-1]) and (
                    handler["bare"] or any(
                        flow.canon(fq, name) in ("Exception", "BaseException")
                        for name in handler["types"]
                    )
                ):
                    out.append(Diagnostic(
                        path=path, line=handler["line"],
                        column=handler["col"], rule="exn-broad-fallback",
                        message=(
                            f"broad catch ({what}) in the parallel "
                            "fallback path masks real worker bugs as "
                            "timeouts; catch the precise failure types"
                        ),
                        severity=Severity.WARNING,
                    ))
            _check_dead_handlers(index, flow, fq, fn, record, out)

    return out


def _check_dead_handlers(
    index: ProjectIndex,
    flow: ExceptionFlow,
    fq: str,
    fn,
    record: dict,
    out: list[Diagnostic],
) -> None:
    taxonomy_handlers = []
    for handler in record["handlers"]:
        if handler["bare"] or len(handler["types"]) != 1:
            continue
        key = flow.canon(fq, handler["types"][0])
        if (
            key is not None
            and key in index.classes
            and flow.is_subtype(key, BONSAI_ERROR)
        ):
            taxonomy_handlers.append((handler, key))
    if not taxonomy_handlers:
        return

    try_id = record["id"]
    possible: set[str] = set()
    for raised in fn.flow.get("raises", []):
        if try_id not in raised["guards"]:
            continue
        key = flow.canon(fq, raised["type"])
        if key is None and "caught" in raised:
            return  # a bare re-raise inside the body: give up
        if key is not None:
            possible.add(key)
    for call in fn.flow.get("calls", []):
        if try_id not in call["guards"]:
            continue
        analysable, callee = flow._call_analysable(fq, fn, call)
        if not analysable:
            return
        if callee is None:
            continue
        if not flow.complete.get(callee, False):
            return
        possible.update(flow.escapes.get(callee, ()))
    if UNKNOWN in possible:
        return

    for handler, key in taxonomy_handlers:
        if any(flow.is_subtype(raised, key) for raised in possible):
            continue
        out.append(Diagnostic(
            path=index.paths[fq], line=handler["line"],
            column=handler["col"], rule="exn-dead-handler",
            message=(
                f"handler for {handler['types'][0]} is unreachable: no "
                "raise or resolved call in the try body can produce it; "
                "drop the handler or fix the type"
            ),
            severity=Severity.WARNING,
        ))
