"""Whole-program FIFO-discipline check.

The simulator's cycle accounting rests on one structural rule: a
``repro.hw`` component (a class with a per-cycle ``tick``) talks to its
peers **only** through the port protocol — ``Fifo`` push/pop/peek and
the bus/coupler elements in between (§V-A's stall handshake).  The
per-file ``clock-discipline`` rule inspects syntactic ``self.x.y``
writes inside ``tick()`` alone; this pass closes the two holes a
refactor opens:

* **any method** of a component reaching into a field whose *resolved
  type* is another component — helper methods called from ``tick`` are
  the classic laundering path;
* **mutation at a distance** — a ``tick`` whose transitive call closure
  (through free functions, across modules) mutates a *different*
  component class's state.  Construction-time wiring is untouched:
  builders are not reachable from any ``tick``.

Port types (``Fifo`` and the bus elements) are exempt targets for the
protocol surface; touching their private internals is still flagged.
"""

from __future__ import annotations

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.graph.purity import EffectAnalysis
from repro.lint.graph.symbols import ProjectIndex

#: the sanctioned surface of a port (Fifo/bus) field
PORT_PROTOCOL = {
    "push", "pop", "peek", "drain", "free_slots",
    "is_empty", "is_full", "has_space", "capacity", "name",
    "encode", "decode",  # bus packer/unpacker
}

#: the sanctioned surface of a *component* field (hierarchical
#: composition plus observability)
COMPONENT_SURFACE = {"tick", "done", "stats", "name"}

#: class names (unqualified) that act as ports between components
PORT_CLASS_NAMES = {"Fifo", "Bus", "Packer", "Unpacker", "Coupler"}


def _component_classes(index: ProjectIndex) -> dict[str, str]:
    """``class fq -> module`` for every ``repro.hw`` component class."""
    out: dict[str, str] = {}
    for class_fq, klass in index.classes.items():
        module = class_fq.rsplit(".", 1)[0]
        if module.startswith("repro.hw") and klass.has_tick:
            out[class_fq] = module
    return out


def _is_port_class(class_fq: str | None) -> bool:
    return class_fq is not None and class_fq.rsplit(".", 1)[-1] in PORT_CLASS_NAMES


def check_fifo_discipline(index: ProjectIndex) -> list[Diagnostic]:
    """Emit ``fifo-discipline`` diagnostics."""
    components = _component_classes(index)
    diagnostics: list[Diagnostic] = []
    diagnostics.extend(_check_peer_accesses(index, components))
    diagnostics.extend(_check_remote_mutation(index, components))
    return diagnostics


def _check_peer_accesses(
    index: ProjectIndex, components: dict[str, str]
) -> list[Diagnostic]:
    """Field accesses crossing into a peer component, in *any* method."""
    out: list[Diagnostic] = []
    for class_fq in components:
        klass = index.classes[class_fq]
        path = None
        for method in klass.methods.values():
            fq = f"{class_fq}.{method.name.split('.')[-1]}"
            path = index.paths.get(fq)
            if path is None:
                continue
            for access in method.peer_accesses:
                field_fq = index.field_class(class_fq, access["field"])
                if field_fq is None:
                    continue
                if _is_port_class(field_fq):
                    private = access["attr"].startswith("_")
                    if access["kind"] == "write" or private:
                        out.append(Diagnostic(
                            path=path, line=access["line"],
                            column=access["col"], rule="fifo-discipline",
                            message=(
                                f"{method.name}() {'writes' if access['kind'] == 'write' else 'touches'} "
                                f"port internal self.{access['field']}."
                                f"{access['tail']}; components drive ports "
                                "only through the handshake protocol "
                                f"({', '.join(sorted(PORT_PROTOCOL))})"
                            ),
                            severity=Severity.ERROR,
                        ))
                    continue
                if field_fq in components and field_fq != class_fq:
                    if (
                        access["kind"] != "write"
                        and access["attr"] in COMPONENT_SURFACE
                    ):
                        continue
                    out.append(Diagnostic(
                        path=path, line=access["line"], column=access["col"],
                        rule="fifo-discipline",
                        message=(
                            f"{method.name}() reaches into peer component "
                            f"self.{access['field']}.{access['tail']} "
                            f"({field_fq}); components communicate only "
                            "through FIFO/bus/coupler ports"
                        ),
                        severity=Severity.ERROR,
                    ))
    return out


def _check_remote_mutation(
    index: ProjectIndex, components: dict[str, str]
) -> list[Diagnostic]:
    """``tick`` closures that mutate a different component class."""
    analysis = EffectAnalysis(index, tick_delegation_ok=True)
    analysis.solve()
    out: list[Diagnostic] = []
    for class_fq in components:
        tick_fq = f"{class_fq}.tick"
        tick = index.functions.get(tick_fq)
        if tick is None:
            continue
        for tag in sorted(analysis.effects.get(tick_fq, ())):
            if not tag.startswith("mutate:"):
                continue
            target = tag.split(":", 1)[1]
            if target == class_fq or target not in components:
                continue
            out.append(Diagnostic(
                path=index.paths[tick_fq], line=tick.line, column=tick.col,
                rule="fifo-discipline",
                message=(
                    f"{tick.name}() transitively mutates peer component "
                    f"{target} via {analysis.trail(tick_fq, tag)}; "
                    "cross-component state changes must travel through "
                    "FIFO/bus/coupler ports"
                ),
                severity=Severity.ERROR,
            ))
    return out
