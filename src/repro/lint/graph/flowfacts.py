"""Per-function determinism-taint and exception-flow fact extraction.

A second, dedicated walk over one function body (the first walk in
:mod:`repro.lint.graph.summary` tracks unit families) producing the
facts the :mod:`detflow` and :mod:`exnflow` passes propagate over the
call graph.  Everything recorded here is *syntactic* — call targets,
exception names, taint atoms — so a cached summary stays valid when
other files change; resolution happens at pass time.

The ``flow`` dict attached to every :class:`FunctionSummary`:

``sources``
    direct nondeterminism introductions: ``{"kind", "detail", "line",
    "col"}`` with kind one of ``rng`` (unseeded RNG), ``clock`` (host
    wall-clock read), ``id`` (CPython object identity), ``fs-order``
    (directory-listing order), ``completion-order`` (parallel
    completion order), ``set-order`` (hash-order iteration of a set),
    or ``set-carrier`` (a set-valued expression — only hazardous once
    something iterates it, which is where ``set-order`` appears);
``calls``
    every call site with per-argument taint atoms and the enclosing
    ``try`` bodies (``guards``) for handler subtraction;
``returns`` / ``iters`` / ``self_sets``
    the places taint surfaces: ``return`` expressions, ``for``/
    comprehension iterables, and ``self.<attr> = ...`` writes;
``raises`` / ``tries``
    raise sites (syntactic exception name, ``None`` for a bare
    re-raise, plus the handler types it re-raises) and ``try``
    structure (handler types, swallow/re-raise shape).

Taint atoms are JSON-friendly lists::

    ["src", i]        # sources[i] of this function
    ["param", name]   # tainted iff the parameter is
    ["call", id]      # tainted iff calls[id]'s return value is
    ["self", attr]    # tainted iff the attribute is (class fixpoint)
    ["ordfree", atom] # atom with order-class taint laundered away

``sorted()`` (and the other order-insensitive reductions ``min``,
``max``, ``sum``, ``len``, ``any``, ``all``) wrap their argument atoms
in ``ordfree`` — the sanctioned way to consume a set — while value
taints (RNG, clock) survive the wrap: sorting random numbers fixes
their order, not their values.
"""

from __future__ import annotations

import ast

from repro.lint.rules.determinism import (
    _NOW_FNS,
    _NUMPY_LEGACY_FNS,
    _RANDOM_MODULE_FNS,
    _TIME_FNS,
)

#: builtins that reduce order-sensitivity away; their result carries the
#: argument's value taints but no order taint
LAUNDER_BUILTINS = frozenset({"sorted", "min", "max", "sum", "len", "any", "all"})

#: callables whose bare-name or dotted-tail call yields directory order
_FS_ORDER_CALLS = frozenset({"listdir", "scandir", "walk", "iglob", "glob"})

#: callables that yield results in task-completion order
_COMPLETION_ORDER_CALLS = frozenset({"as_completed", "imap_unordered"})

#: cap on atoms tracked per expression; beyond this the expression is
#: saturated and extra atoms add nothing a diagnostic would show
_MAX_ATOMS = 8


def _merge(*atom_lists: list) -> list:
    out: list = []
    for atoms in atom_lists:
        for atom in atoms:
            if atom not in out and len(out) < _MAX_ATOMS:
                out.append(atom)
    return out


def _attribute_chain(node: ast.AST) -> tuple[str, list[str]] | None:
    attrs: list[str] = []
    while isinstance(node, ast.Attribute):
        attrs.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and attrs:
        return node.id, attrs[::-1]
    return None


def _exception_name(node: ast.AST | None) -> str | None:
    """Syntactic dotted name of a raised/caught exception type."""
    if node is None:
        return None
    if isinstance(node, ast.Call):
        node = node.func
    chain = _attribute_chain(node)
    if chain is not None:
        return ".".join([chain[0]] + chain[1])
    if isinstance(node, ast.Name):
        return node.id
    return None


def _set_valued(node: ast.AST) -> bool:
    """Whether an expression is syntactically a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class _FlowExtractor:
    """One forward pass collecting taint and exception facts."""

    def __init__(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        params: list[str],
        is_method: bool,
    ) -> None:
        self.node = node
        self.params = params
        self.is_method = is_method
        self.env: dict[str, list] = {}
        self.sources: list[dict] = []
        self.calls: list[dict] = []
        self.returns: list[dict] = []
        self.iters: list[dict] = []
        self.self_sets: list[dict] = []
        self.raises: list[dict] = []
        self.tries: list[dict] = []
        #: try ids whose *body* lexically encloses the current statement
        self._try_stack: list[int] = []
        #: handler type-lists for the handlers we are lexically inside
        self._handler_stack: list[list[str]] = []

    def run(self) -> dict:
        for stmt in self.node.body:
            self._walk(stmt)
        out: dict = {}
        for key in ("sources", "calls", "returns", "iters", "self_sets",
                    "raises", "tries"):
            value = getattr(self, key)
            if value:
                out[key] = value
        return out

    # -- taint evaluation ----------------------------------------------
    def eval(self, node: ast.AST) -> list:
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            if node.id in self.params:
                return [["param", node.id]]
            return []
        if isinstance(node, ast.Attribute):
            if (
                self.is_method
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return [["self", node.attr]]
            return self.eval(node.value)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, (ast.Set, ast.SetComp)):
            carrier = [["src", self._source("set-carrier", "set value", node)]]
            if isinstance(node, ast.Set):
                return _merge(carrier, *[self.eval(e) for e in node.elts])
            return _merge(carrier, self._comprehension(node))
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            return self._comprehension(node)
        if isinstance(node, ast.NamedExpr):
            atoms = self.eval(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = atoms
            return atoms
        if isinstance(node, ast.Lambda):
            return []
        if isinstance(node, ast.Constant):
            return []
        # every other expression: the union of its child expressions
        return _merge(*[
            self.eval(child)
            for child in ast.iter_child_nodes(node)
            if isinstance(child, ast.expr)
        ])

    def _comprehension(self, node: ast.AST) -> list:
        atoms: list[list] = []
        for gen in getattr(node, "generators", []):
            atoms.append(self._iterate(gen.iter))
        for attr in ("elt", "key", "value"):
            child = getattr(node, attr, None)
            if child is not None:
                atoms.append(self.eval(child))
        return _merge(*atoms)

    def _iterate(self, iterable: ast.expr) -> list:
        """Atoms a loop variable picks up from iterating ``iterable``."""
        atoms = self.eval(iterable)
        if _set_valued(iterable) or self._has_local_carrier(atoms):
            src = self._source("set-order", "set iteration", iterable)
            atoms = _merge([["src", src]], atoms)
        elif atoms:
            # order taint from *another* function surfaces here; the
            # detflow pass resolves these at iteration sites
            self.iters.append({
                "line": iterable.lineno, "col": iterable.col_offset,
                "atoms": atoms,
            })
        return atoms

    def _has_local_carrier(self, atoms: list) -> bool:
        return any(
            atom[0] == "src"
            and self.sources[atom[1]]["kind"] == "set-carrier"
            for atom in atoms
        )

    def _source(self, kind: str, detail: str, node: ast.AST) -> int:
        self.sources.append({
            "kind": kind, "detail": detail,
            "line": node.lineno, "col": node.col_offset,
        })
        return len(self.sources) - 1

    # -- calls ---------------------------------------------------------
    def _call(self, node: ast.Call) -> list:
        target = self._target_ref(node.func)
        if (
            target[0] == "name"
            and target[1] in LAUNDER_BUILTINS
            and node.args
        ):
            inner = _merge(*[self.eval(a) for a in node.args])
            return [["ordfree", atom] for atom in inner]
        if target[0] == "name" and target[1] in ("set", "frozenset"):
            carrier = [["src", self._source("set-carrier", f"{target[1]}()", node)]]
            return _merge(carrier, *[self.eval(a) for a in node.args])
        source = self._source_kind(node, target)
        if source is not None:
            kind, detail = source
            for arg in node.args:
                self.eval(arg)
            return [["src", self._source(kind, detail, node)]]
        args = [
            self.eval(a) for a in node.args if not isinstance(a, ast.Starred)
        ]
        kwargs = {
            kw.arg: self.eval(kw.value)
            for kw in node.keywords
            if kw.arg is not None
        }
        call_id = len(self.calls)
        record = {
            "id": call_id, "line": node.lineno, "col": node.col_offset,
            "target": target, "args": args, "kwargs": kwargs,
            "guards": list(self._try_stack),
        }
        # method-call receiver atoms (``payload.encode()``): unresolved
        # calls pass them through to the result so taint survives
        # stdlib conversions
        if isinstance(node.func, ast.Attribute):
            recv = self.eval(node.func.value)
            if recv:
                record["recv"] = recv
        self.calls.append(record)
        return [["call", call_id]]

    def _target_ref(self, func: ast.AST) -> tuple:
        if isinstance(func, ast.Name):
            return ("name", func.id)
        chain = _attribute_chain(func)
        if chain is None:
            return ("opaque",)
        root, attrs = chain
        if root == "self" and self.is_method:
            if len(attrs) == 1:
                return ("self", attrs[0])
            if len(attrs) == 2:
                return ("selfattr", attrs[0], attrs[1])
            return ("opaque",)
        return ("dotted", ".".join([root] + attrs))

    def _source_kind(
        self, node: ast.Call, target: tuple
    ) -> tuple[str, str] | None:
        """``(kind, detail)`` when the call itself introduces taint."""
        seeded = bool(node.args or node.keywords)
        if target[0] == "name":
            name = target[1]
            if name == "id" and len(node.args) == 1:
                return ("id", "id()")
            if name in ("Random", "default_rng") and not seeded:
                return ("rng", f"{name}()")
            if name in _COMPLETION_ORDER_CALLS:
                return ("completion-order", f"{name}()")
            return None
        if target[0] != "dotted":
            return None
        dotted = target[1]
        parts = dotted.split(".")
        head, tail = parts[0], parts[-1]
        if head == "random" and len(parts) == 2 and tail in _RANDOM_MODULE_FNS:
            return ("rng", f"{dotted}()")
        if dotted == "random.Random" and not seeded:
            return ("rng", f"{dotted}()")
        if tail == "default_rng" and not seeded:
            return ("rng", f"{dotted}()")
        if "random" in parts[:-1] and tail in _NUMPY_LEGACY_FNS:
            return ("rng", f"{dotted}()")
        if head == "time" and len(parts) == 2 and tail in _TIME_FNS:
            return ("clock", f"{dotted}()")
        if tail in _NOW_FNS and len(parts) >= 2 and parts[-2] in (
            "datetime", "date",
        ):
            return ("clock", f"{dotted}()")
        if head in ("os", "glob") and tail in _FS_ORDER_CALLS:
            return ("fs-order", f"{dotted}()")
        if tail in _COMPLETION_ORDER_CALLS:
            return ("completion-order", f"{dotted}()")
        return None

    # -- statement walk ------------------------------------------------
    def _walk(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are summarised separately (or skipped)
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                self.env[local] = []
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                atoms = self.eval(stmt.value)
                if atoms:
                    self.returns.append({"line": stmt.lineno, "atoms": atoms})
            return
        if isinstance(stmt, ast.Assign):
            atoms = self.eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, atoms, stmt.lineno)
            return
        if isinstance(stmt, ast.AnnAssign):
            atoms = self.eval(stmt.value) if stmt.value is not None else []
            self._assign(stmt.target, atoms, stmt.lineno)
            return
        if isinstance(stmt, ast.AugAssign):
            atoms = self.eval(stmt.value)
            current = self.eval(stmt.target)
            self._assign(stmt.target, _merge(current, atoms), stmt.lineno)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            atoms = self._iterate(stmt.iter)
            self._bind(stmt.target, atoms)
            for inner in stmt.body + stmt.orelse:
                self._walk(inner)
            return
        if isinstance(stmt, (ast.While, ast.If)):
            self.eval(stmt.test)
            for inner in stmt.body + stmt.orelse:
                self._walk(inner)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                atoms = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, atoms)
            for inner in stmt.body:
                self._walk(inner)
            return
        if isinstance(stmt, ast.Try):
            self._walk_try(stmt)
            return
        if isinstance(stmt, ast.Raise):
            self._walk_raise(stmt)
            return
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
            return
        if isinstance(stmt, ast.Assert):
            self.eval(stmt.test)
            return
        # remaining statements (pass, del, global, ...) carry no facts

    def _walk_try(self, stmt: ast.Try) -> None:
        try_id = len(self.tries)
        handlers: list[dict] = []
        for handler in stmt.handlers:
            types: list[str] = []
            if isinstance(handler.type, ast.Tuple):
                types = [
                    name for name in map(_exception_name, handler.type.elts)
                    if name is not None
                ]
            else:
                name = _exception_name(handler.type)
                if name is not None:
                    types = [name]
            handlers.append({
                "types": types,
                "bare": handler.type is None,
                "line": handler.lineno, "col": handler.col_offset,
                "swallows": all(
                    isinstance(inner, (ast.Pass, ast.Continue))
                    or (
                        isinstance(inner, ast.Expr)
                        and isinstance(inner.value, ast.Constant)
                    )
                    for inner in handler.body
                ),
                "reraises": any(
                    isinstance(node, ast.Raise)
                    for inner in handler.body
                    for node in ast.walk(inner)
                ),
                # a bare ``raise`` re-raises what was caught, so the
                # handler must not subtract its types from the escapes
                "bare_reraise": any(
                    isinstance(node, ast.Raise) and node.exc is None
                    for inner in handler.body
                    for node in ast.walk(inner)
                ),
            })
        self.tries.append({
            "id": try_id, "line": stmt.lineno, "col": stmt.col_offset,
            "handlers": handlers,
        })
        self._try_stack.append(try_id)
        try:
            for inner in stmt.body:
                self._walk(inner)
        finally:
            self._try_stack.pop()
        # else/finally run outside the handlers' protection
        for inner in stmt.orelse + stmt.finalbody:
            self._walk(inner)
        for handler, record in zip(stmt.handlers, handlers):
            if handler.name is not None:
                self.env[handler.name] = []
            self._handler_stack.append(
                record["types"] if not record["bare"] else ["BaseException"]
            )
            try:
                for inner in handler.body:
                    self._walk(inner)
            finally:
                self._handler_stack.pop()

    def _walk_raise(self, stmt: ast.Raise) -> None:
        if stmt.exc is not None:
            self.eval(stmt.exc)
        name = _exception_name(stmt.exc)
        record = {
            "type": name,
            "line": stmt.lineno, "col": stmt.col_offset,
            "guards": list(self._try_stack),
        }
        if stmt.exc is None and self._handler_stack:
            # bare re-raise: escapes exactly what the handler caught
            record["caught"] = list(self._handler_stack[-1])
        self.raises.append(record)

    # -- bindings ------------------------------------------------------
    def _assign(self, target: ast.AST, atoms: list, line: int) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = atoms
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, atoms, line)
            return
        if (
            self.is_method
            and isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            if atoms:
                self.self_sets.append({
                    "attr": target.attr, "atoms": atoms, "line": line,
                })

    def _bind(self, target: ast.AST, atoms: list) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                self.env[node.id] = atoms


def extract_flow_facts(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    params: list[str],
    is_method: bool,
) -> dict:
    """The ``flow`` fact dict of one function body."""
    return _FlowExtractor(node, params, is_method).run()
