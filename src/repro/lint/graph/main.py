"""Argument wiring shared by ``bonsai check`` and ``python -m repro.lint.graph``."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import BonsaiError
from repro.lint.diagnostics import Severity
from repro.lint.graph.analyzer import CheckResult, analyze
from repro.lint.graph.baseline import DEFAULT_BASELINE, Baseline

#: directories analysed when no paths are given and they exist
DEFAULT_PATHS = ("src",)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the check options to a (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="FILE",
        help=f"baseline file (default: {DEFAULT_BASELINE}; missing = empty)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file and report every finding",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="accept the current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="summary cache directory (warm runs re-extract only changed files)",
    )
    parser.add_argument(
        "--sarif-file", default=None, metavar="FILE",
        help="additionally write a SARIF 2.1.0 log to FILE",
    )
    parser.add_argument(
        "--select", action="append", default=None, metavar="RULES",
        help="comma-separated rules to run (default: all); repeatable",
    )
    parser.add_argument(
        "--ignore", action="append", default=None, metavar="RULES",
        help="comma-separated rules to skip; repeatable",
    )
    parser.add_argument(
        "--profile", default=None, metavar="TRACE",
        help="bonsai report trace; self-time-heavy phases widen the "
        "hot-path root set",
    )
    parser.add_argument(
        "--require-justification", action="store_true",
        help="warn on suppressions without a '-- reason' justification",
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help="report only findings in files changed vs git HEAD "
        "(the full tree is still analysed for call-graph soundness)",
    )
    parser.add_argument(
        "--statistics", action="store_true",
        help="print per-rule finding counts, cache counters and wall "
        "time after the findings",
    )
    parser.add_argument(
        "--list-analyses", action="store_true",
        help="print the whole-program analyses and exit",
    )


def _split_rules(values: list[str] | None) -> list[str] | None:
    if values is None:
        return None
    return [
        part.strip()
        for text in values
        for part in text.split(",")
        if part.strip()
    ]


def render_text(result: CheckResult) -> str:
    """Compiler-style findings plus a one-line run summary."""
    lines = [diagnostic.render() for diagnostic in result.diagnostics]
    if result.diagnostics:
        lines.append("")
    lines.append(
        f"{len(result.diagnostics)} new finding(s) "
        f"({result.count(Severity.ERROR)} error(s), "
        f"{result.count(Severity.WARNING)} warning(s)), "
        f"{len(result.baselined)} baselined, "
        f"{result.suppressed} suppressed, "
        f"{result.files_scanned} file(s) scanned "
        f"({result.reanalyzed} analyzed, {result.from_cache} from cache) "
        f"in {result.elapsed_seconds:.2f}s"
    )
    return "\n".join(lines)


def rule_counts(result: CheckResult) -> dict[str, int]:
    """New-finding count per rule, sorted by rule name."""
    counts: dict[str, int] = {}
    for diagnostic in result.diagnostics:
        counts[diagnostic.rule] = counts.get(diagnostic.rule, 0) + 1
    return dict(sorted(counts.items()))


def render_statistics(result: CheckResult) -> str:
    """The ``--statistics`` block printed after the findings."""
    lines = ["statistics:"]
    counts = rule_counts(result)
    for rule, count in counts.items():
        lines.append(f"  {rule:<24} {count}")
    if not counts:
        lines.append("  (no new findings)")
    lines.append(f"  files scanned            {result.files_scanned}")
    lines.append(f"  re-analyzed              {result.reanalyzed}")
    lines.append(f"  from cache               {result.from_cache}")
    lines.append(f"  wall time                {result.elapsed_seconds:.2f}s")
    return "\n".join(lines)


def statistics_properties(result: CheckResult) -> dict:
    """The same counters as a SARIF run-level ``properties`` bag."""
    return {
        "filesScanned": result.files_scanned,
        "reanalyzed": result.reanalyzed,
        "fromCache": result.from_cache,
        "elapsedSeconds": round(result.elapsed_seconds, 3),
        "ruleCounts": rule_counts(result),
    }


def render_json(result: CheckResult) -> str:
    """Stable machine-readable report (schema version 1)."""
    payload = {
        "version": 1,
        "files_scanned": result.files_scanned,
        "reanalyzed": result.reanalyzed,
        "from_cache": result.from_cache,
        "rules": list(result.rules),
        "diagnostics": [d.to_json() for d in result.diagnostics],
        "baselined": [d.to_json() for d in result.baselined],
        "summary": {
            "error": result.count(Severity.ERROR),
            "warning": result.count(Severity.WARNING),
            "baselined": len(result.baselined),
            "suppressed": result.suppressed,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif_report(
    result: CheckResult, *, statistics: bool = False
) -> str:
    """SARIF log via the reporter shared with ``bonsai lint``."""
    from repro.lint.graph.rules import CHECK_RULES
    from repro.lint.runner import PARSE_ERROR_RULE
    from repro.lint.sarif import render_sarif

    descriptions = {
        name: (text, "error") for name, text in CHECK_RULES.items()
    }
    descriptions[PARSE_ERROR_RULE] = (
        "file could not be read or parsed; the whole-program call graph "
        "would be incomplete", "error",
    )
    # parse-error can always fire, so it is always "enabled"
    enabled = tuple(result.rules) + (PARSE_ERROR_RULE,)
    return render_sarif(
        result.diagnostics,
        tool_name="bonsai-check",
        rule_descriptions=descriptions,
        suppressed=result.baselined,
        enabled_rules=enabled,
        properties=statistics_properties(result) if statistics else None,
    )


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a check run described by parsed arguments."""
    if args.list_analyses:
        from repro.lint.graph.rules import CHECK_RULES

        for name, description in sorted(CHECK_RULES.items()):
            print(f"{name:18} {description}")
        return 0
    paths = args.paths or [p for p in DEFAULT_PATHS if Path(p).is_dir()]
    options = {
        "cache_dir": args.cache_dir,
        "select": _split_rules(args.select),
        "ignore": _split_rules(args.ignore),
        "profile": args.profile,
        "require_justification": args.require_justification,
    }
    if getattr(args, "changed_only", False):
        from repro.lint.gitchanges import changed_files

        options["restrict"] = changed_files()

    if args.update_baseline:
        result = analyze(paths, baseline=None, **options)
        full = list(result.diagnostics) + list(result.baselined)
        Baseline.from_diagnostics(sorted(full)).save(args.baseline)
        print(
            f"wrote {args.baseline} with {len(full)} accepted finding(s)"
        )
        return 0

    baseline = None if args.no_baseline else Baseline.load(args.baseline)
    result = analyze(paths, baseline=baseline, **options)
    statistics = getattr(args, "statistics", False)
    if args.sarif_file:
        Path(args.sarif_file).write_text(
            render_sarif_report(result, statistics=statistics) + "\n",
            encoding="utf-8",
        )
    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif_report(result, statistics=statistics))
    else:
        print(render_text(result))
        if statistics:
            print()
            print(render_statistics(result))
    return result.exit_code


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point for ``python -m repro.lint.graph``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.graph",
        description="bonsai-check: whole-program unit-flow, purity and "
        "FIFO-discipline analysis",
    )
    add_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_from_args(args)
    except BonsaiError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
