"""Hot-path performance analysis.

The simulator's inner loop runs once per cycle and the merge kernels
once per record, so a constant-factor regression there multiplies by
``n log n``.  This pass computes the set of *hot* functions — everything
call-graph-reachable from a committed root set (the simulator tick
loop, the fastpath quiescence kernel, the merge kernels, FIFO ops, and
the gensort record codec) — and flags per-record anti-patterns inside
them:

``hot-loop-alloc``
    container allocation (literal or comprehension) inside a loop;
``hot-loop-attr``
    the same attribute chain loaded :data:`ATTR_THRESHOLD`+ times in
    one loop scope (bind it to a local once);
``hot-fifo-op``
    single-element ``push``/``pop``/``peek`` inside a loop where the
    bulk ``*_many`` counterparts exist;
``hot-format``
    f-strings, ``.format()``, ``print`` or logging on the hot path;
``hot-try``
    a ``try``/``except`` entered once per loop iteration.

Functions whose whole body *is* the per-cycle loop (``tick`` methods
and their private helpers on components) are treated as loop scope even
at nesting depth 0 — the simulator supplies the loop around them.  The
fastpath scheduler is *not* in that set: it carries its own cycle loop,
so plain loop scoping already separates its wiring prologue from the
per-cycle work.

Two false-positive guards are deliberate and documented: facts inside
``raise``/``assert`` are never collected (error paths leave the hot
loop), and a straight-line container *literal* in a per-cycle body is
tolerated (one small allocation per cycle, not per record) — only
comprehensions and generator expressions fire there.

A ``bonsai report`` trace can widen the root set (``--profile``): any
phase whose self-time share reaches :data:`PROFILE_SHARE_THRESHOLD`
maps through :data:`PROFILE_SPAN_ROOTS` to the modules implementing it,
so profile-proven cost centres are analysed even when they sit outside
the committed roots.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.graph.symbols import ProjectIndex

#: individually named hot entry points; the codec roots name the
#: per-record pack/unpack/key functions and deliberately leave out the
#: workload *generator* (runs once per dataset, not per record)
HOT_ROOT_FUNCTIONS: tuple[str, ...] = (
    "repro.hw.clock.Simulation.step",
    "repro.hw.clock.Simulation.run",
    "repro.hw.clock.Simulation.run_until",
    "repro.hw.fastpath.run_event_driven",
    "repro.records.gensort.packed_sort_key",
    "repro.records.gensort.pack_records",
    "repro.records.gensort.unpack_sorted",
)

#: fully-qualified prefixes whose every function is a hot root
HOT_ROOT_PREFIXES: tuple[str, ...] = (
    "repro.hw.fifo.Fifo.",         # per-record FIFO ops
    "repro.engine.stage.",         # merge kernels
    "repro.network.flims.",        # backend-dispatched merge kernels
    "repro.records.keyhash.",      # per-record key hashing
)

#: component methods seeded as roots (the simulator dispatches to them
#: dynamically, which a static call graph cannot follow)
COMPONENT_ROOT_METHODS: tuple[str, ...] = (
    "tick", "next_event_cycle", "stall_tag", "apply_stall",
)

#: minimum loads of one attribute chain in one loop scope to fire
ATTR_THRESHOLD = 3

#: a profiled phase at or above this self-time share widens the roots
PROFILE_SHARE_THRESHOLD = 0.10

#: span-name prefix (as emitted by ``repro.obs``) -> module prefixes
#: that implement the phase
PROFILE_SPAN_ROOTS: dict[str, tuple[str, ...]] = {
    "hw.": ("repro.hw.tree.", "repro.hw.clock."),
    "sorter.": ("repro.engine.sorter.",),
    "unrolled.": ("repro.engine.unrolled.",),
    "sort.": ("repro.records.",),
    "optimizer.": ("repro.core.optimizer.",),
    "parallel.": ("repro.parallel.",),
    "ssd.": ("repro.engine.ssd_sorter.",),
    "bench.": ("repro.bench.",),
}


def _component_roots(index: ProjectIndex) -> set[str]:
    """Per-cycle methods of every ``repro.hw`` component class."""
    roots: set[str] = set()
    for class_fq, klass in index.classes.items():
        module = class_fq.rsplit(".", 1)[0]
        if not module.startswith("repro.hw"):
            continue
        if not klass.has_tick:
            continue
        for method in COMPONENT_ROOT_METHODS:
            if method in klass.methods:
                roots.add(f"{class_fq}.{method}")
    return roots


def profile_root_prefixes(rows: Iterable[Mapping]) -> list[str]:
    """Module prefixes a trace profile adds to the hot root set."""
    prefixes: list[str] = []
    for row in rows:
        if row.get("share", 0.0) < PROFILE_SHARE_THRESHOLD:
            continue
        name = str(row.get("name", ""))
        for span_prefix, modules in PROFILE_SPAN_ROOTS.items():
            if name.startswith(span_prefix):
                for module in modules:
                    if module not in prefixes:
                        prefixes.append(module)
    return prefixes


_CONSTRUCTORS = (".__init__", ".__post_init__")


def _construction_only(index: ProjectIndex) -> set[str]:
    """Functions whose every in-index caller is a constructor.

    Prefix seeding (committed or profile-widened) sweeps in whole
    modules, including build helpers that only ever run while a
    component is constructed; those are setup cost, the same class of
    edge :func:`_reachable` already refuses to follow.  A function with
    no in-index callers stays eligible — it may be an entry point the
    call graph cannot see.
    """
    callers: dict[str, set[str]] = {}
    for fq, edges in index.call_edges().items():
        for callee, _call in edges:
            callers.setdefault(callee, set()).add(fq)
    return {
        fq
        for fq, sites in callers.items()
        if sites and all(site.endswith(_CONSTRUCTORS) for site in sites)
    }


def _seed_roots(
    index: ProjectIndex, extra_prefixes: Sequence[str]
) -> set[str]:
    roots = {fq for fq in HOT_ROOT_FUNCTIONS if fq in index.functions}
    prefixes = tuple(HOT_ROOT_PREFIXES) + tuple(extra_prefixes)
    setup_only = _construction_only(index)
    for fq in index.functions:
        if not fq.startswith(prefixes):
            continue
        if fq.endswith(_CONSTRUCTORS) or fq in setup_only:
            continue
        roots.add(fq)
    roots |= _component_roots(index)
    return roots


def _reachable(index: ProjectIndex, roots: set[str]) -> set[str]:
    """Hot closure: call-graph descendants of the roots.

    Two edge classes are excluded as *not hot*: calls made while
    constructing a raised exception (error paths leave the hot loop —
    the stall-report formatter is reachable only this way), and calls
    into constructors (``__init__``/``__post_init__`` run per simulation
    arm, not per cycle, so the component-building helpers behind them
    are setup cost, not per-record cost).
    """
    edges = index.call_edges()
    seen = set(roots)
    frontier = list(roots)
    while frontier:
        fq = frontier.pop()
        for callee, call in edges.get(fq, ()):
            if call.get("in_raise") or callee.endswith(_CONSTRUCTORS):
                continue
            if callee not in seen:
                seen.add(callee)
                frontier.append(callee)
    return seen


def _per_cycle(index: ProjectIndex, fq: str) -> bool:
    """Whether the simulator supplies the loop around this function."""
    fn = index.functions[fq]
    module = index.file_of[fq].module or ""
    name = fq.rsplit(".", 1)[-1]
    if fn.class_name is None or not module.startswith("repro.hw"):
        return False
    owner = index.classes.get(f"{module}.{fn.class_name}")
    if owner is None or not owner.has_tick:
        return False
    if name == "tick":
        return True
    return name.startswith("_") and not name.startswith("__")


def _attr_findings(
    fn_perf: list[dict], per_cycle: bool, imports: Mapping[str, str]
) -> list[dict]:
    """Qualifying attr facts, shortest chain per scope reported first.

    A chain is dropped when a strict prefix of it also qualifies — the
    prefix binding hoists both — and when its root is an imported name
    (module attribute loads are cheap relative to the per-record work
    this rule targets, and rebinding them obscures more than it saves).
    """
    qualifying: dict[int, list[dict]] = {}
    for fact in fn_perf:
        if fact["kind"] != "attr" or fact["count"] < ATTR_THRESHOLD:
            continue
        if fact["scope"] == 0 and not per_cycle:
            continue
        if fact["chain"].split(".")[0] in imports:
            continue
        qualifying.setdefault(fact["scope"], []).append(fact)
    out: list[dict] = []
    for scope_facts in qualifying.values():
        chains = {fact["chain"] for fact in scope_facts}
        for fact in scope_facts:
            prefix_parts = fact["chain"].split(".")
            has_shorter = any(
                ".".join(prefix_parts[:depth]) in chains
                for depth in range(2, len(prefix_parts))
            )
            if not has_shorter:
                out.append(fact)
    return out


def check_hot_paths(
    index: ProjectIndex, profile_rows: Iterable[Mapping] | None = None
) -> list[Diagnostic]:
    """Emit ``hot-*`` diagnostics over the hot-function closure."""
    extra = profile_root_prefixes(profile_rows) if profile_rows else []
    hot = _reachable(index, _seed_roots(index, extra))
    out: list[Diagnostic] = []
    for fq in sorted(hot):
        fn = index.functions.get(fq)
        summary = index.file_of.get(fq)
        if fn is None or summary is None:
            continue
        module = summary.module or ""
        if not module.startswith("repro."):
            continue
        per_cycle = _per_cycle(index, fq)
        path = index.paths[fq]
        short = fq[len("repro."):] if fq.startswith("repro.") else fq

        def emit(rule: str, fact: dict, message: str) -> None:
            out.append(Diagnostic(
                path=path, line=fact["line"], column=fact["col"],
                rule=rule, message=message, severity=Severity.WARNING,
            ))

        for fact in fn.perf:
            in_loop = fact["scope"] > 0
            effective = in_loop or per_cycle
            kind = fact["kind"]
            if kind == "alloc" and effective:
                # a straight-line literal once per cycle is tolerated;
                # only per-record (in-loop) work or comprehensions fire
                if not in_loop and "literal" in fact["what"]:
                    continue
                where = "a loop" if in_loop else "the per-cycle body"
                emit("hot-loop-alloc", fact, (
                    f"{fact['what']} allocated in {where} of hot "
                    f"function {short}(); hoist it out of the loop or "
                    "reuse a buffer"
                ))
            elif kind == "fifo" and in_loop:
                emit("hot-fifo-op", fact, (
                    f"single-element {fact['op']}() on "
                    f"{fact['recv']} inside a loop of hot function "
                    f"{short}(); use {fact['op']}_many() to amortise "
                    "the per-call overhead"
                ))
            elif kind == "format" and effective:
                where = "a loop" if in_loop else "the per-cycle body"
                emit("hot-format", fact, (
                    f"{fact['what']} formatting in {where} of hot "
                    f"function {short}(); error paths may format "
                    "freely (raise/assert are exempt) but the success "
                    "path must not"
                ))
            elif kind == "try" and in_loop:
                emit("hot-try", fact, (
                    f"try/except entered once per iteration in hot "
                    f"function {short}(); hoist the handler around "
                    "the loop or test the condition instead"
                ))
        for fact in _attr_findings(fn.perf, per_cycle, summary.imports):
            where = (
                "one loop" if fact["scope"] > 0 else "the per-cycle body"
            )
            emit("hot-loop-attr", fact, (
                f"attribute chain {fact['chain']} loaded "
                f"{fact['count']}x in {where} of hot function "
                f"{short}(); bind it to a local once"
            ))
    return out
