"""Process-safety analysis for the parallel execution layer.

``repro.parallel`` ships tasks to pool processes; anything a worker
writes outside its task result silently diverges between serial and
pooled runs, and anything unpicklable in a task blows up only at
dispatch time.  From the worker-entry roots established by the
worker-entry pass, this pass walks the call graph (conservatively
including every ``repro.hw`` component's per-cycle methods once a
simulator driver is reachable — the simulator dispatches to components
dynamically) and reports:

``proc-global-write``
    worker-reachable code rebinds a module global (``global`` statement)
    or writes through a module-level name / class attribute.  The
    sanctioned escape hatch for cross-process state is the
    ``repro.obs`` ``worker_observation``/``absorb`` payload path, so
    that package is exempt.
``proc-unpicklable``
    a worker-reachable function's parameter annotation resolves to a
    class holding known-unpicklable members (thread locks, open file
    handles, shared-memory blocks, tracers).
``proc-shm-lifetime``
    shared-memory lifetime bugs, on either side of the fork: an owning
    allocation (``SharedMemory(create=...)`` or the project allocators
    ``pack_arrays``/``alloc_arrays``) that is neither released,
    unlinked, nor returned to the caller; an owning allocation whose
    result is not even bound; and any call through a block name after
    that block's ``close()``.

Known approximations, kept deliberately: ownership tracking is
name-based within one function (returning the block transfers
ownership to the caller, which is the documented false-positive
guard), and use-after-``close`` compares source line order, so a
re-open inside a loop below the ``close`` would be missed rather than
misreported.
"""

from __future__ import annotations

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.graph.perfcheck import _component_roots
from repro.lint.graph.symbols import ProjectIndex

#: the modules holding pool entry points (see workercheck): the
#: execution layer's and the serve daemon's batch worker
WORKERS_MODULES = ("repro.parallel.workers", "repro.serve.workers")
ENTRY_PREFIX = "worker_"

#: packages allowed to manage cross-process state: the observability
#: runtime implements the sanctioned worker_observation/absorb path
SANCTIONED_PREFIXES: tuple[str, ...] = ("repro.obs.",)

#: reaching any of these pulls every hw component's per-cycle methods
#: into the worker-reachable set (dynamic dispatch via Simulation)
SIMULATOR_DRIVERS: tuple[str, ...] = (
    "repro.hw.clock.Simulation.run",
    "repro.hw.clock.Simulation.step",
    "repro.hw.clock.Simulation.run_until",
    "repro.hw.fastpath.run_event_driven",
)

#: class-member annotations (matched on the last dotted component) that
#: do not survive pickling into a pool process
UNPICKLABLE_MEMBERS: frozenset[str] = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Event", "Barrier", "Thread", "SharedMemory", "open",
    "TextIOWrapper", "BufferedReader", "BufferedWriter", "FileIO",
    "Popen", "socket", "Tracer", "JsonlSink",
})

#: project-level owning allocators: the caller receives an unlinked
#: shared-memory block and must release() it or pass it on
OWNING_ALLOCATORS: frozenset[str] = frozenset({
    "repro.parallel.shm.pack_arrays",
    "repro.parallel.shm.alloc_arrays",
})

RELEASE_FUNCTION = "repro.parallel.shm.release"


def _worker_reachable(index: ProjectIndex) -> set[str]:
    """Closure of the call graph from the ``worker_*`` entry points."""
    roots = {
        fq for fq, fn in index.functions.items()
        if index.file_of[fq].module in WORKERS_MODULES
        and fq.rsplit(".", 1)[-1].startswith(ENTRY_PREFIX)
        and fn.class_name is None
    }
    edges = index.call_edges()
    seen = set(roots)
    frontier = list(roots)
    while frontier:
        fq = frontier.pop()
        for callee, _ in edges.get(fq, ()):
            if callee not in seen:
                seen.add(callee)
                frontier.append(callee)
    if any(driver in seen for driver in SIMULATOR_DRIVERS):
        for root in sorted(_component_roots(index)):
            if root not in seen:
                seen.add(root)
                frontier.append(root)
        while frontier:
            fq = frontier.pop()
            for callee, _ in edges.get(fq, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
    return seen


def _sanctioned(module: str | None) -> bool:
    return module is not None and module.startswith(SANCTIONED_PREFIXES)


def _is_shared_memory_call(call: dict) -> bool:
    target = call["target"]
    if target[0] == "name":
        return target[1] == "SharedMemory"
    if target[0] == "dotted":
        return target[1].split(".")[-1] == "SharedMemory"
    return False


def _global_write_findings(
    index: ProjectIndex, reachable: set[str]
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for fq in sorted(reachable):
        fn = index.functions.get(fq)
        summary = index.file_of.get(fq)
        if fn is None or summary is None or _sanctioned(summary.module):
            continue
        known = (
            set(summary.module_globals)
            | set(summary.classes)
            | set(summary.imports)
        )
        short = fq[len("repro."):] if fq.startswith("repro.") else fq
        for effect in fn.effects:
            if effect["kind"] == "global":
                message = (
                    f"worker-reachable {short}() rebinds module "
                    f"global(s) {effect['detail']} via a global "
                    "statement; pool processes never ship that state "
                    "back — route it through the worker_observation/"
                    "absorb payload instead"
                )
            elif effect["kind"] == "mutate-global":
                root = effect["detail"].split(".")[0].split("[")[0]
                if root not in known:
                    continue
                message = (
                    f"worker-reachable {short}() writes module-level "
                    f"state {effect['detail']}; each pool process "
                    "mutates its own copy, so serial and pooled runs "
                    "diverge — route cross-process state through the "
                    "worker_observation/absorb payload"
                )
            else:
                continue
            out.append(Diagnostic(
                path=index.paths[fq], line=effect["line"], column=0,
                rule="proc-global-write", message=message,
                severity=Severity.ERROR,
            ))
    return out


def _unpicklable_findings(
    index: ProjectIndex, reachable: set[str]
) -> list[Diagnostic]:
    tainted: dict[str, tuple[str, str]] = {}
    for class_fq, klass in index.classes.items():
        for field_name, annotation in sorted(klass.fields.items()):
            if annotation is None:
                continue
            if annotation.split(".")[-1] in UNPICKLABLE_MEMBERS:
                tainted.setdefault(class_fq, (field_name, annotation))
    if not tainted:
        return []
    out: list[Diagnostic] = []
    for fq in sorted(reachable):
        fn = index.functions.get(fq)
        summary = index.file_of.get(fq)
        if fn is None or summary is None:
            continue
        short = fq[len("repro."):] if fq.startswith("repro.") else fq
        for param, annotation in sorted(fn.param_annotations.items()):
            resolved = index.resolve_class_name(summary.module, annotation)
            if resolved is None or resolved not in tainted:
                continue
            field_name, member = tainted[resolved]
            out.append(Diagnostic(
                path=index.paths[fq], line=fn.line, column=fn.col,
                rule="proc-unpicklable",
                message=(
                    f"worker-reachable {short}() takes {param}: "
                    f"{annotation}, whose member '{field_name}' "
                    f"({member}) cannot be pickled into a pool "
                    "process; pass a picklable descriptor and "
                    "rebuild the object inside the worker"
                ),
                severity=Severity.ERROR,
            ))
    return out


def _shm_lifetime_findings(index: ProjectIndex) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for fq in sorted(index.functions):
        fn = index.functions[fq]
        summary = index.file_of.get(fq)
        if summary is None or not (summary.module or "").startswith("repro."):
            continue
        short = fq[len("repro."):] if fq.startswith("repro.") else fq
        returned_ids = {
            value[1] for value in fn.returns if value[0] == "ret"
        }
        block_names: set[str] = set()
        for call in fn.calls:
            resolved = index.resolve_call(fq, call["target"])
            owning = False
            if _is_shared_memory_call(call):
                if isinstance(call["binds"], str):
                    block_names.add(call["binds"])
                owning = "create" in call["kwargs"]
            elif resolved in OWNING_ALLOCATORS:
                owning = True
            if not owning:
                continue
            binds = call["binds"]
            block = binds[0] if isinstance(binds, list) and binds else binds
            if block is None:
                if call["id"] in returned_ids:
                    continue  # ownership escapes with the return value
                out.append(Diagnostic(
                    path=index.paths[fq], line=call["line"],
                    column=call["col"], rule="proc-shm-lifetime",
                    message=(
                        f"{short}() creates an owning shared-memory "
                        "block without binding it; nothing can ever "
                        "close or unlink it"
                    ),
                    severity=Severity.ERROR,
                ))
                continue
            if isinstance(block, str) and block in fn.returned_names:
                continue  # ownership transferred to the caller
            released = False
            for other in fn.calls:
                other_target = other["target"]
                if (
                    other_target[0] == "dotted"
                    and other_target[1] == f"{block}.unlink"
                ):
                    released = True
                    break
                if (
                    block in other.get("arg_names", [])
                    and index.resolve_call(fq, other_target)
                    == RELEASE_FUNCTION
                ):
                    released = True
                    break
            if not released:
                out.append(Diagnostic(
                    path=index.paths[fq], line=call["line"],
                    column=call["col"], rule="proc-shm-lifetime",
                    message=(
                        f"{short}() owns shared-memory block "
                        f"'{block}' but never unlinks or releases it "
                        "and does not return it; the segment leaks "
                        "past process exit"
                    ),
                    severity=Severity.ERROR,
                ))
        for block in sorted(block_names):
            close_lines = [
                call["line"] for call in fn.calls
                if call["target"][0] == "dotted"
                and call["target"][1] == f"{block}.close"
            ]
            if not close_lines:
                continue
            closed_at = min(close_lines)
            for call in fn.calls:
                if call["line"] <= closed_at:
                    continue
                target = call["target"]
                if (
                    target[0] == "dotted"
                    and target[1].startswith(f"{block}.")
                    and target[1] not in (f"{block}.close", f"{block}.unlink")
                ) or block in call.get("arg_names", []):
                    out.append(Diagnostic(
                        path=index.paths[fq], line=call["line"],
                        column=call["col"], rule="proc-shm-lifetime",
                        message=(
                            f"{short}() uses shared-memory block "
                            f"'{block}' after its close() on line "
                            f"{closed_at}; the mapping is gone"
                        ),
                        severity=Severity.ERROR,
                    ))
    return out


def check_process_safety(index: ProjectIndex) -> list[Diagnostic]:
    """Emit ``proc-*`` diagnostics over the worker-reachable closure."""
    reachable = _worker_reachable(index)
    out: list[Diagnostic] = []
    out.extend(_global_write_findings(index, reachable))
    out.extend(_unpicklable_findings(index, reachable))
    out.extend(_shm_lifetime_findings(index))
    return out
