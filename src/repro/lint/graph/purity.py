"""Transitive model-purity analysis.

The optimizer exhaustively evaluates the Eq. 1-10 model functions
(:data:`repro.lint.rules.model_purity.PURE_MODULES`); the per-file rule
bans *direct* I/O and ``repro.hw`` imports there, but a model function
calling an innocent-looking helper in a third module that mutates
simulator state is invisible per file.  This pass computes the
transitive side-effect set of every function and flags:

* a pure-module function whose closure reaches I/O, RNG, wall-clock, or
  ``global`` mutation (``transitive-purity``);
* any ``repro.core`` function — except the sanctioned
  ``repro.core.validation`` bridge — whose closure reaches mutation of
  ``repro.hw`` simulator state (``transitive-purity``).

Effect elements are strings: ``"io"``, ``"rng"``, ``"clock"``,
``"global"``, and ``"mutate:<class fq>"``.  Mutation of a function's
*own* class (``self.x = ...`` seen from that same class's methods) is
not an effect for the FIFO/purity contracts by itself — it becomes one
when a *different* layer reaches it, which is exactly what the closure
computes.  Propagation runs over Tarjan SCCs in callees-first order, so
recursion converges in one sweep plus one round per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.graph.symbols import ProjectIndex
from repro.lint.rules.model_purity import PURE_MODULES

#: effect kinds that break Eq. 1-10 purity regardless of what they touch
_IMPURE_KINDS = {"io", "rng", "clock", "global"}

#: the single sanctioned model-to-simulator bridge (see model-purity)
BRIDGE_MODULE = "repro.core.validation"


@dataclass
class EffectAnalysis:
    """Direct and transitive side-effect sets over the call graph.

    Effect elements: the impure kinds plus ``mutate:<class fq>`` for
    post-construction state writes and ``construct:<class fq>`` for
    writes inside ``__init__``/``__post_init__`` — building an object is
    not communicating with it, so the FIFO check ignores construction.

    With ``tick_delegation_ok`` the propagation does not follow edges
    into another class's ``tick`` method: hierarchical composition (a
    wrapper ticking its child) is the sanctioned composition idiom and
    must not smear the child's self-mutation onto the parent.
    """

    index: ProjectIndex
    tick_delegation_ok: bool = False
    #: function fq -> set of effect strings (transitive after solve())
    effects: dict[str, set[str]] = field(default_factory=dict)
    #: (fq, effect) -> where it came from: ("direct", line) | ("call", callee)
    origin: dict[tuple[str, str], tuple] = field(default_factory=dict)

    def solve(self) -> None:
        """Seed direct effects, then propagate callees-first."""
        for fq, fn in self.index.functions.items():
            direct: set[str] = set()
            for effect in fn.effects:
                tag = self._tag(fq, effect)
                if tag is None:
                    continue
                direct.add(tag)
                self.origin.setdefault((fq, tag), ("direct", effect["line"]))
            self.effects[fq] = direct
        edges = self.index.call_edges()
        for component in self.index.sccs():
            # within an SCC every member shares the union; two rounds
            # reach it because sccs() already ordered callees first
            for _ in range(2 if len(component) > 1 else 1):
                for fq in component:
                    for callee, _call in edges.get(fq, []):
                        if (
                            self.tick_delegation_ok
                            and callee.endswith(".tick")
                            and callee != fq
                        ):
                            continue
                        for tag in self.effects.get(callee, ()):
                            if tag not in self.effects[fq]:
                                self.effects[fq].add(tag)
                                self.origin.setdefault(
                                    (fq, tag), ("call", callee)
                                )

    def _tag(self, fq: str, effect: dict) -> str | None:
        """Normalise one recorded effect into an effect-set element."""
        kind = effect["kind"]
        if kind in _IMPURE_KINDS:
            return kind
        summary = self.index.file_of.get(fq)
        module = summary.module if summary is not None else None
        if kind == "mutate-self":
            fn = self.index.functions.get(fq)
            if fn is None or fn.class_name is None or module is None:
                return None
            method = fn.name.rsplit(".", 1)[-1]
            verb = (
                "construct" if method in ("__init__", "__post_init__", "__new__")
                else "mutate"
            )
            return f"{verb}:{module}.{fn.class_name}"
        if kind == "mutate-param":
            param, _, _attr = effect["detail"].partition(":")
            owner = self.index.functions.get(fq)
            if owner is None:
                return None
            # the parameter's annotated class, when the project knows it
            class_fq = self._param_class(fq, param)
            return f"mutate:{class_fq}" if class_fq is not None else None
        if kind == "mutate-field":
            field_name, _, _attr = effect["detail"].partition(":")
            fn = self.index.functions.get(fq)
            if fn is None or fn.class_name is None or module is None:
                return None
            class_fq = self.index.field_class(
                f"{module}.{fn.class_name}", field_name
            )
            return f"mutate:{class_fq}" if class_fq is not None else None
        return None

    def _param_class(self, fq: str, param: str) -> str | None:
        """Class fq a parameter is annotated with, if resolvable."""
        fn = self.index.functions.get(fq)
        if fn is None:
            return None
        annotation = fn.param_annotations.get(param)
        if annotation is None:
            return None
        summary = self.index.file_of.get(fq)
        module = summary.module if summary is not None else None
        return self.index.resolve_class_name(module, annotation)

    # ------------------------------------------------------------------
    def trail(self, fq: str, tag: str, limit: int = 6) -> str:
        """Human-readable call path from ``fq`` to the effect's source."""
        steps = [fq]
        current = fq
        for _ in range(limit):
            source = self.origin.get((current, tag))
            if source is None or source[0] == "direct":
                break
            current = source[1]
            steps.append(current)
        return " -> ".join(steps)


def check_purity(index: ProjectIndex) -> list[Diagnostic]:
    """Emit ``transitive-purity`` diagnostics over the whole program."""
    analysis = EffectAnalysis(index)
    analysis.solve()
    diagnostics: list[Diagnostic] = []
    for fq, fn in index.functions.items():
        summary = index.file_of[fq]
        module = summary.module or ""
        if not module.startswith("repro.core") or module == BRIDGE_MODULE:
            continue
        effects = analysis.effects.get(fq, set())
        flagged: list[str] = []
        if module in PURE_MODULES:
            flagged.extend(sorted(effects & _IMPURE_KINDS))
        flagged.extend(sorted(
            tag for tag in effects
            if tag.startswith("mutate:repro.hw")
        ))
        for tag in flagged:
            what = (
                f"mutation of simulator state ({tag.split(':', 1)[1]})"
                if tag.startswith("mutate:") else
                {"io": "I/O", "rng": "randomness", "clock": "wall-clock access",
                 "global": "global mutation"}[tag]
            )
            diagnostics.append(Diagnostic(
                path=index.paths[fq], line=fn.line, column=fn.col,
                rule="transitive-purity",
                message=(
                    f"{fn.name}() transitively reaches {what} via "
                    f"{analysis.trail(fq, tag)}; Eq. 1-10 model code must "
                    "stay a pure map (repro.core.validation is the "
                    "sanctioned bridge)"
                ),
                severity=Severity.ERROR,
            ))
    return diagnostics
