"""The ``bonsai check`` rule registry.

Kept in a leaf module (no analyzer imports) so both the package
``__init__`` and the summary cache can read it: the cache keys every
entry on a hash of this table, which is what makes *adding a pass*
invalidate warm summaries instead of silently reusing extractions that
predate the facts the new pass needs.
"""

from __future__ import annotations

import hashlib
import json

#: every diagnostic rule this analyzer can emit, with the one-line
#: description used by ``--list-analyses`` and the SARIF rule table
CHECK_RULES: dict[str, str] = {
    "unit-flow-mix": (
        "arithmetic combines two different unit families reached "
        "through the interprocedural unit-flow analysis"
    ),
    "unit-flow-call": (
        "call argument's unit family contradicts the callee "
        "parameter's family"
    ),
    "transitive-purity": (
        "pure model function transitively reaches I/O, RNG, clock, or "
        "repro.hw state mutation"
    ),
    "fifo-discipline": (
        "repro.hw component reaches into a peer component's state "
        "outside the FIFO/bus/coupler port protocol"
    ),
    "worker-entry": (
        "repro.parallel pool entry is not a module-level single-task "
        "function, or its workers module does import-time work or "
        "eager heavy imports"
    ),
    "hot-loop-alloc": (
        "container allocation (literal or comprehension) inside a "
        "per-record loop of a hot function; hoist or reuse the buffer"
    ),
    "hot-loop-attr": (
        "the same attribute chain is loaded repeatedly inside a hot "
        "loop; bind it to a local once"
    ),
    "hot-fifo-op": (
        "single-element FIFO push/pop/peek inside a loop of a hot "
        "function; use the bulk push_many/pop_many/peek_many ops"
    ),
    "hot-format": (
        "string formatting, print, or logging executed on the hot "
        "path; move it behind a flag or out of the loop"
    ),
    "hot-try": (
        "try/except entered once per iteration of a hot loop; hoist "
        "the handler around the loop or test the condition instead"
    ),
    "proc-global-write": (
        "worker-reachable code writes module-global or class-level "
        "state outside the sanctioned worker_observation/absorb path"
    ),
    "proc-unpicklable": (
        "worker-reachable function receives an object whose class "
        "holds known-unpicklable members (locks, open files, shared "
        "memory handles, tracers)"
    ),
    "proc-shm-lifetime": (
        "shared-memory buffer lifetime bug: an owning block is never "
        "unlinked/released, or a block is used after close()"
    ),
    "det-taint-sink": (
        "a nondeterministic value (unseeded RNG, wall clock, id(), "
        "directory order) flows interprocedurally into a record "
        "payload, digest, baseline, or bench-result sink"
    ),
    "det-unseeded-flow": (
        "a deterministic-zone function (engine, hw, core, records, "
        "parallel) consumes the return value of a transitively "
        "nondeterministic helper"
    ),
    "det-order-leak": (
        "set/dict/directory iteration order from another function "
        "surfaces unlaundered (no sorted()) in a return or iteration"
    ),
    "exn-escape": (
        "a non-BonsaiError exception type can escape a public CLI "
        "entry point instead of surfacing as a taxonomy error"
    ),
    "exn-swallow": (
        "a handler catches an exception and drops it without "
        "re-raising, logging, or computing a fallback"
    ),
    "exn-broad-fallback": (
        "except Exception (or broader) in the repro.parallel "
        "timeout/serial-recompute fallback paths where precise "
        "catches are load-bearing"
    ),
    "exn-dead-handler": (
        "handler for a taxonomy exception type that no raise or "
        "resolved call in the try body can produce"
    ),
}


def ruleset_hash() -> str:
    """Short stable hash of the rule table (part of the cache key)."""
    canonical = json.dumps(sorted(CHECK_RULES.items()))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:8]
