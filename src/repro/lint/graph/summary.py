"""Per-file extraction into serialisable summaries.

One pass over a file's AST produces a :class:`FileSummary`: imports,
classes, functions, and — per function — the facts the whole-program
analyses need (call sites, unit-flow abstract values, direct side
effects, peer-component accesses).  Summaries are plain JSON-friendly
data, which is what makes the content-hash cache possible: a warm run
loads summaries instead of re-parsing, and only the cheap propagation
passes re-run.

Abstract values (``AbsVal``) describe where a quantity's unit family
comes from without resolving it yet:

* ``("fam", family)`` — a known family (seeded from a ``repro.units``
  constant or a naming convention);
* ``("param", name)`` — the family of the enclosing function's
  parameter, whatever propagation decides it is;
* ``("ret", call_id)`` — the return family of call site ``call_id``;
* ``("unknown",)`` — dimensionless or untracked.

Call targets stay *syntactic* here (``("name", f)``, ``("dotted",
"a.b.c")``, ``("self", m)``, ``("selfattr", field, m)``); the symbol
table resolves them once all summaries are assembled, so a cached
summary stays valid when other files change.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.lint.context import module_name
from repro.lint.suppressions import Suppressions

#: bump on any change to the summary shape or extraction logic; a bumped
#: version invalidates every cache entry
SUMMARY_VERSION = 4

# --- unit families ---------------------------------------------------------

BYTES_DEC = "bytes-decimal"
BYTES_BIN = "bytes-binary"
BYTES_ANY = "bytes"  # compatible with both byte families
RECORDS = "records"
CYCLES = "cycles"
SECONDS = "seconds"
HERTZ = "hertz"

#: ``repro.units`` constants seed these families wherever they appear
UNIT_CONSTANT_FAMILIES: dict[str, str] = {
    "KB": BYTES_DEC, "MB": BYTES_DEC, "GB": BYTES_DEC,
    "TB": BYTES_DEC, "PB": BYTES_DEC,
    "KiB": BYTES_BIN, "MiB": BYTES_BIN, "GiB": BYTES_BIN, "TiB": BYTES_BIN,
    "MS": SECONDS, "US": SECONDS, "NS": SECONDS,
    "KHZ": HERTZ, "MHZ": HERTZ, "GHZ": HERTZ,
    "DEFAULT_FREQUENCY_HZ": HERTZ,
}


def family_from_name(name: str) -> str | None:
    """Unit family implied by a parameter/attribute naming convention.

    Rate names (``read_bytes_per_cycle``, ``ms_per_gb``) deliberately
    match nothing: a rate is its own dimension, not either operand's.
    """
    n = name.lower()
    if "per_" in n:
        return None
    if n.endswith(("_kib", "_mib", "_gib")) or "bram" in n:
        return BYTES_BIN
    if n in ("n_bytes", "bytes") or n.endswith("_bytes") or n.startswith("bytes_"):
        return BYTES_ANY
    if n in ("n_records", "records") or n.endswith("_records"):
        return RECORDS
    if n in ("cycle", "cycles") or n.endswith("_cycles") or n.startswith("cycles_"):
        return CYCLES
    if n == "seconds" or n.endswith("_seconds"):
        return SECONDS
    if n in ("hz", "hertz") or n.endswith(("_hz", "_hertz")):
        return HERTZ
    return None


# --- abstract values -------------------------------------------------------

AbsVal = tuple  # ("fam", f) | ("param", name) | ("ret", call_id) | ("unknown",)

UNKNOWN: AbsVal = ("unknown",)


def _is_unknown(value: AbsVal) -> bool:
    return value[0] == "unknown"


#: builtins whose single argument's family passes straight through
_PASSTHROUGH_CALLS = {"int", "float", "round", "abs"}
#: builtins whose arguments must share a family, like ``+``
_ADDITIVE_CALLS = {"min", "max"}

_IO_BUILTINS = {"open", "print", "input", "exec", "eval", "breakpoint", "__import__"}
_IO_MODULES = {
    "os", "sys", "subprocess", "shutil", "socket", "io",
    "tempfile", "logging", "pathlib",
}
_CLOCK_MODULES = {"time", "datetime"}


@dataclass
class FunctionSummary:
    """Everything the interprocedural passes need about one function."""

    name: str                 # qualname inside the module, e.g. "KMerger.tick"
    line: int
    col: int
    params: list[str] = field(default_factory=list)
    #: seeded unit families: parameter name -> family
    param_seeds: dict[str, str] = field(default_factory=dict)
    #: syntactic annotations: parameter name -> dotted type name
    param_annotations: dict[str, str] = field(default_factory=dict)
    #: abstract values of every ``return`` expression
    returns: list[AbsVal] = field(default_factory=list)
    #: call sites: {"id", "line", "col", "target", "args", "kwargs"}
    calls: list[dict] = field(default_factory=list)
    #: additive/comparison sites: {"line", "col", "op", "left", "right"}
    mixes: list[dict] = field(default_factory=list)
    #: direct side effects: {"kind", "detail", "line"}
    effects: list[dict] = field(default_factory=list)
    #: ``self.<field>.<attr>`` accesses: {"field","attr","tail","line","col","kind"}
    peer_accesses: list[dict] = field(default_factory=list)
    #: hot-path facts (loop-scoped allocations, attribute-chain loads,
    #: FIFO ops, formatting, try blocks): {"kind", "scope", "line", ...}
    #: where ``scope`` is 0 for the function body or the line number of
    #: the innermost enclosing loop
    perf: list[dict] = field(default_factory=list)
    #: names bound by a function-body ``import``/``from import``
    local_imports: dict[str, str] = field(default_factory=dict)
    #: names that appear inside ``return`` expressions (ownership of a
    #: resource bound to one of these escapes to the caller)
    returned_names: list[str] = field(default_factory=list)
    #: determinism-taint and exception-flow facts (see
    #: :mod:`repro.lint.graph.flowfacts` for the shape)
    flow: dict = field(default_factory=dict)
    class_name: str | None = None

    def to_json(self) -> dict:
        return {
            "name": self.name, "line": self.line, "col": self.col,
            "params": self.params, "param_seeds": self.param_seeds,
            "param_annotations": self.param_annotations,
            "returns": [list(v) for v in self.returns],
            "calls": self.calls, "mixes": self.mixes,
            "effects": self.effects, "peer_accesses": self.peer_accesses,
            "perf": self.perf,
            "local_imports": self.local_imports,
            "returned_names": self.returned_names,
            "flow": self.flow,
            "class_name": self.class_name,
        }

    @classmethod
    def from_json(cls, data: dict) -> "FunctionSummary":
        fn = cls(
            name=data["name"], line=data["line"], col=data["col"],
            params=list(data["params"]),
            param_seeds=dict(data["param_seeds"]),
            param_annotations=dict(data.get("param_annotations", {})),
            returns=[tuple(v) for v in data["returns"]],
            calls=[_retuple_call(c) for c in data["calls"]],
            mixes=[_retuple_mix(m) for m in data["mixes"]],
            effects=list(data["effects"]),
            peer_accesses=list(data["peer_accesses"]),
            perf=list(data.get("perf", [])),
            local_imports=dict(data.get("local_imports", {})),
            returned_names=list(data.get("returned_names", [])),
            flow=_retuple_flow(data.get("flow", {})),
            class_name=data["class_name"],
        )
        return fn


def _retuple_call(call: dict) -> dict:
    call = dict(call)
    call["target"] = tuple(call["target"])
    call["args"] = [tuple(v) for v in call["args"]]
    call["kwargs"] = {k: tuple(v) for k, v in call["kwargs"].items()}
    call.setdefault("arg_names", [])
    call.setdefault("binds", None)
    call.setdefault("in_raise", False)
    return call


def _retuple_flow(flow: dict) -> dict:
    flow = dict(flow)
    if "calls" in flow:
        flow["calls"] = [dict(c) for c in flow["calls"]]
        for call in flow["calls"]:
            call["target"] = tuple(call["target"])
    return flow


def _retuple_mix(mix: dict) -> dict:
    mix = dict(mix)
    mix["left"] = tuple(mix["left"])
    mix["right"] = tuple(mix["right"])
    return mix


@dataclass
class ClassSummary:
    """One class: fields (with syntactic annotations), bases, methods."""

    name: str
    line: int
    bases: list[str] = field(default_factory=list)
    #: field name -> syntactic annotation (dotted string) or None
    fields: dict[str, str | None] = field(default_factory=dict)
    methods: dict[str, FunctionSummary] = field(default_factory=dict)

    @property
    def has_tick(self) -> bool:
        """Components are classes with a per-cycle ``tick`` method."""
        return "tick" in self.methods

    def to_json(self) -> dict:
        return {
            "name": self.name, "line": self.line, "bases": self.bases,
            "fields": self.fields,
            "methods": {k: m.to_json() for k, m in self.methods.items()},
        }

    @classmethod
    def from_json(cls, data: dict) -> "ClassSummary":
        return cls(
            name=data["name"], line=data["line"], bases=list(data["bases"]),
            fields=dict(data["fields"]),
            methods={
                k: FunctionSummary.from_json(m)
                for k, m in data["methods"].items()
            },
        )


@dataclass
class FileSummary:
    """The serialisable whole-file fact base."""

    path: str
    module: str | None
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    classes: dict[str, ClassSummary] = field(default_factory=dict)
    #: module-level names seeded with a unit family (``CAP = 8 * GB``)
    constant_families: dict[str, str] = field(default_factory=dict)
    #: calls executed at import time: {"name", "line", "col"} per call
    #: found in module-level expression/assignment statements (decorators
    #: and class bodies excluded) — the worker-entry import-purity check
    module_calls: list[dict] = field(default_factory=list)
    #: inline suppression directives, for filtering check diagnostics
    file_suppressions: list[str] = field(default_factory=list)
    line_suppressions: dict[int, list[str]] = field(default_factory=dict)
    #: full directive records for justification auditing:
    #: {"line", "kind", "rules", "justified", "target"}
    directives: list[dict] = field(default_factory=list)
    #: module-level simple-name assignment targets (module globals a
    #: function could rebind or mutate through a class attribute)
    module_globals: list[str] = field(default_factory=list)

    def all_functions(self) -> Iterator[FunctionSummary]:
        """Module-level functions, then methods, in definition order."""
        yield from self.functions.values()
        for klass in self.classes.values():
            yield from klass.methods.values()

    def suppressed(self, rule: str, line: int) -> bool:
        """True when an inline directive silences ``rule`` at ``line``."""
        for active in (self.file_suppressions, self.line_suppressions.get(line, [])):
            if "all" in active or rule in active:
                return True
        return False

    def to_json(self) -> dict:
        return {
            "version": SUMMARY_VERSION,
            "module": self.module,
            "imports": self.imports,
            "functions": {k: f.to_json() for k, f in self.functions.items()},
            "classes": {k: c.to_json() for k, c in self.classes.items()},
            "constant_families": self.constant_families,
            "module_calls": self.module_calls,
            "file_suppressions": self.file_suppressions,
            "line_suppressions": {
                str(k): v for k, v in self.line_suppressions.items()
            },
            "directives": self.directives,
            "module_globals": self.module_globals,
        }

    @classmethod
    def from_json(cls, path: str, data: dict) -> "FileSummary":
        return cls(
            path=path,
            module=data["module"],
            imports=dict(data["imports"]),
            functions={
                k: FunctionSummary.from_json(f)
                for k, f in data["functions"].items()
            },
            classes={
                k: ClassSummary.from_json(c) for k, c in data["classes"].items()
            },
            constant_families=dict(data["constant_families"]),
            module_calls=list(data.get("module_calls", [])),
            file_suppressions=list(data["file_suppressions"]),
            line_suppressions={
                int(k): list(v) for k, v in data["line_suppressions"].items()
            },
            directives=list(data.get("directives", [])),
            module_globals=list(data.get("module_globals", [])),
        )


# --- extraction ------------------------------------------------------------

def _annotation_name(node: ast.AST | None) -> str | None:
    """Syntactic dotted name of an annotation, unwrapping ``X | None``.

    Container annotations (``list[Fifo]``) return ``None``: their
    element accesses go through subscripts the analyses do not track.
    """
    if node is None:
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_name(node.left)
        return left if left is not None else _annotation_name(node.right)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return _annotation_name(ast.parse(node.value, mode="eval").body)
        except SyntaxError:
            return None
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(parts[::-1])
    return None


def _attribute_chain(node: ast.AST) -> tuple[str, list[str]] | None:
    """``(root_name, [attr, ...])`` for a plain-name attribute chain."""
    attrs: list[str] = []
    while isinstance(node, ast.Attribute):
        attrs.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and attrs:
        return node.id, attrs[::-1]
    return None


class _FunctionExtractor:
    """Single forward pass over one function body."""

    def __init__(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        class_name: str | None,
    ) -> None:
        self.node = node
        self.out = FunctionSummary(
            name=qualname, line=node.lineno, col=node.col_offset,
            class_name=class_name,
        )
        self.is_method = class_name is not None
        self.env: dict[str, AbsVal] = {}
        self._in_raise = False
        args = node.args
        every = (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
        names = [a.arg for a in every]
        if self.is_method and names and names[0] in ("self", "cls"):
            names = names[1:]
            every = every[1:]
        self.out.params = names
        for arg in every:
            seeded = family_from_name(arg.arg)
            ann = _annotation_name(arg.annotation)
            if ann is not None:
                self.out.param_annotations[arg.arg] = ann
                if ann.split(".")[-1] in UNIT_CONSTANT_FAMILIES:
                    seeded = UNIT_CONSTANT_FAMILIES[ann.split(".")[-1]]
            if seeded is not None:
                self.out.param_seeds[arg.arg] = seeded

    # -- abstract evaluation ------------------------------------------
    def eval(self, node: ast.AST) -> AbsVal:
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            if node.id in self.out.params:
                return ("param", node.id)
            if node.id in UNIT_CONSTANT_FAMILIES:
                return ("fam", UNIT_CONSTANT_FAMILIES[node.id])
            return UNKNOWN
        if isinstance(node, ast.Attribute):
            chain = _attribute_chain(node)
            if (
                chain is not None
                and chain[0] == "self"
                and self.is_method
                and len(chain[1]) >= 2
            ):
                self._record_peer(node, chain[1], kind="read")
            if node.attr in UNIT_CONSTANT_FAMILIES:
                return ("fam", UNIT_CONSTANT_FAMILIES[node.attr])
            implied = family_from_name(node.attr)
            if implied is not None:
                return ("fam", implied)
            return UNKNOWN
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.IfExp):
            body = self.eval(node.body)
            return body if not _is_unknown(body) else self.eval(node.orelse)
        if isinstance(node, ast.Compare):
            values = [self.eval(node.left)] + [self.eval(c) for c in node.comparators]
            self._record_mixes(node, "comparison", values)
            return UNKNOWN
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = value
            return value
        return UNKNOWN

    def _eval_binop(self, node: ast.BinOp) -> AbsVal:
        left = self.eval(node.left)
        right = self.eval(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mod)):
            self._record_mixes(node, node.op.__class__.__name__.lower(),
                               [left, right])
            return left if not _is_unknown(left) else right
        if isinstance(node.op, ast.Mult):
            if _is_unknown(left):
                return right
            if _is_unknown(right):
                return left
            return UNKNOWN  # family * family changes dimension
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            # dividing by a dimensionless quantity keeps the family;
            # dividing two dimensioned quantities makes a rate
            return left if _is_unknown(right) else UNKNOWN
        return UNKNOWN

    def _eval_call(self, node: ast.Call) -> AbsVal:
        target = self._target_ref(node.func)
        args = [self.eval(a) for a in node.args if not isinstance(a, ast.Starred)]
        kwargs = {
            kw.arg: self.eval(kw.value)
            for kw in node.keywords
            if kw.arg is not None
        }
        self._record_effects(node, target)
        if target[0] == "name" and target[1] in _PASSTHROUGH_CALLS and len(args) == 1:
            return args[0]
        if target[0] == "name" and target[1] in _ADDITIVE_CALLS:
            self._record_mixes(node, target[1], args)
            for value in args:
                if not _is_unknown(value):
                    return value
            return UNKNOWN
        call_id = len(self.out.calls)
        self.out.calls.append({
            "id": call_id, "line": node.lineno, "col": node.col_offset,
            "target": target,
            "args": [list(v) for v in args],
            "kwargs": {k: list(v) for k, v in kwargs.items()},
            "arg_names": [
                a.id if isinstance(a, ast.Name) else None
                for a in node.args
                if not isinstance(a, ast.Starred)
            ],
            "binds": None,
            "in_raise": self._in_raise,
        })
        return ("ret", call_id)

    def _record_mixes(self, node: ast.AST, op: str, values: list[AbsVal]) -> None:
        known = [v for v in values if not _is_unknown(v)]
        for left, right in zip(known, known[1:]):
            self.out.mixes.append({
                "line": getattr(node, "lineno", self.node.lineno),
                "col": getattr(node, "col_offset", 0),
                "op": op, "left": list(left), "right": list(right),
            })

    # -- call targets and effects -------------------------------------
    def _target_ref(self, func: ast.AST) -> tuple:
        if isinstance(func, ast.Name):
            return ("name", func.id)
        chain = _attribute_chain(func)
        if chain is None:
            return ("opaque",)
        root, attrs = chain
        if root == "self" and self.is_method:
            if len(attrs) == 1:
                return ("self", attrs[0])
            self._record_peer(func, attrs, kind="call")
            if len(attrs) == 2:
                return ("selfattr", attrs[0], attrs[1])
            return ("opaque",)
        return ("dotted", ".".join([root] + attrs))

    def _record_peer(self, node: ast.AST, attrs: list[str], kind: str) -> None:
        if attrs[0] == "stats":
            return
        self.out.peer_accesses.append({
            "field": attrs[0], "attr": attrs[1], "tail": ".".join(attrs[1:]),
            "line": getattr(node, "lineno", self.node.lineno),
            "col": getattr(node, "col_offset", 0),
            "kind": kind,
        })

    def _record_effects(self, node: ast.Call, target: tuple) -> None:
        if target[0] == "name" and target[1] in _IO_BUILTINS:
            self._effect("io", f"{target[1]}()", node.lineno)
        elif target[0] == "dotted":
            root = target[1].split(".")[0]
            dotted = target[1]
            if root in _IO_MODULES:
                self._effect("io", f"{dotted}()", node.lineno)
            elif root in _CLOCK_MODULES:
                self._effect("clock", f"{dotted}()", node.lineno)
            elif root == "random" or ".random." in f".{dotted}":
                self._effect("rng", f"{dotted}()", node.lineno)

    def _effect(self, kind: str, detail: str, line: int) -> None:
        self.out.effects.append({"kind": kind, "detail": detail, "line": line})

    # -- statement walk -----------------------------------------------
    def run(self) -> FunctionSummary:
        from repro.lint.graph.flowfacts import extract_flow_facts

        for stmt in self.node.body:
            self._walk(stmt)
        collector = _PerfFacts()
        for stmt in self.node.body:
            collector.visit(stmt)
        self.out.perf = collector.facts_out()
        self.out.flow = extract_flow_facts(
            self.node, self.out.params, self.is_method
        )
        return self.out

    def _walk(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are summarised separately (or skipped)
        if isinstance(stmt, ast.Global):
            self._effect("global", ", ".join(stmt.names), stmt.lineno)
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                dotted = alias.name if alias.asname else alias.name.split(".")[0]
                self.out.local_imports[local] = dotted
                self.env[local] = UNKNOWN
            return
        if isinstance(stmt, ast.ImportFrom):
            if stmt.level == 0 and stmt.module:
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.out.local_imports[local] = f"{stmt.module}.{alias.name}"
                    self.env[local] = UNKNOWN
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.out.returns.append(self.eval(stmt.value))
                for node in ast.walk(stmt.value):
                    if (
                        isinstance(node, ast.Name)
                        and node.id not in self.out.returned_names
                    ):
                        self.out.returned_names.append(node.id)
            return
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            if value[0] == "ret" and len(stmt.targets) == 1:
                self._record_binding(stmt.targets[0], value[1])
            for target in stmt.targets:
                self._assign(target, value, stmt.lineno)
            return
        if isinstance(stmt, ast.AnnAssign):
            value = self.eval(stmt.value) if stmt.value is not None else UNKNOWN
            ann = _annotation_name(stmt.annotation)
            if (
                _is_unknown(value)
                and ann is not None
                and ann.split(".")[-1] in UNIT_CONSTANT_FAMILIES
            ):
                value = ("fam", UNIT_CONSTANT_FAMILIES[ann.split(".")[-1]])
            self._assign(stmt.target, value, stmt.lineno)
            return
        if isinstance(stmt, ast.AugAssign):
            value = self.eval(stmt.value)
            current = self.eval(stmt.target) if isinstance(
                stmt.target, (ast.Name, ast.Attribute)
            ) else UNKNOWN
            if isinstance(stmt.op, (ast.Add, ast.Sub)):
                self._record_mixes(stmt, "augmented " +
                                   stmt.op.__class__.__name__.lower(),
                                   [current, value])
            self._assign(stmt.target, value, stmt.lineno, augmented=True)
            return
        if isinstance(stmt, ast.For):
            self.eval(stmt.iter)
            self._bind_names(stmt.target)
            for inner in stmt.body + stmt.orelse:
                self._walk(inner)
            return
        if isinstance(stmt, (ast.While, ast.If)):
            self.eval(stmt.test)
            for inner in stmt.body + stmt.orelse:
                self._walk(inner)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_names(item.optional_vars)
            for inner in stmt.body:
                self._walk(inner)
            return
        if isinstance(stmt, ast.Try):
            for inner in stmt.body + stmt.orelse + stmt.finalbody:
                self._walk(inner)
            for handler in stmt.handlers:
                if handler.name is not None:
                    self.env[handler.name] = UNKNOWN
                for inner in handler.body:
                    self._walk(inner)
            return
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
            return
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            # calls made while constructing the exception (message
            # formatting, stall reports) are error-path only; mark them
            # so hot-path reachability can exclude those edges
            self._in_raise = True
            try:
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        self.eval(child)
            finally:
                self._in_raise = False
            return
        # remaining statements (pass, import, del, ...) carry no facts

    def _bind_names(self, target: ast.AST) -> None:
        """Mark every plain name a binding construct introduces as local."""
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                self.env[node.id] = UNKNOWN

    def _record_binding(self, target: ast.AST, call_id: int) -> None:
        """Note which local name(s) a call's return value lands in."""
        call = self.out.calls[call_id]
        if isinstance(target, ast.Name):
            call["binds"] = target.id
        elif isinstance(target, (ast.Tuple, ast.List)) and all(
            isinstance(e, ast.Name) for e in target.elts
        ):
            call["binds"] = [e.id for e in target.elts]

    def _assign(
        self, target: ast.AST, value: AbsVal, line: int, augmented: bool = False
    ) -> None:
        if isinstance(target, ast.Name):
            if augmented and target.id in self.env:
                return  # keep the original binding's family
            self.env[target.id] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, UNKNOWN, line)
            return
        if isinstance(target, ast.Subscript):
            node = target.value
            if (
                isinstance(node, ast.Name)
                and not self._is_local(node.id)
            ):
                self._effect("mutate-global", f"{node.id}[...]", line)
            return
        chain = _attribute_chain(target)
        if chain is None:
            return
        root, attrs = chain
        if root == "self" and self.is_method:
            if len(attrs) == 1:
                self._effect("mutate-self", attrs[0], line)
            else:
                self._record_peer(target, attrs, kind="write")
                self._effect("mutate-field", f"{attrs[0]}:{attrs[1]}", line)
        elif root in self.out.params:
            self._effect("mutate-param", f"{root}:{attrs[0]}", line)
        elif not self._is_local(root):
            self._effect("mutate-global", f"{root}.{attrs[0]}", line)

    def _is_local(self, name: str) -> bool:
        """Whether ``name`` is bound inside this function (or is self)."""
        return (
            name in self.env
            or name in self.out.params
            or name in ("self", "cls")
        )


class _PerfFacts(ast.NodeVisitor):
    """Loop-scope-aware hot-path fact collection over one function body.

    Each fact carries a ``scope``: 0 in the straight-line function body,
    or the header line of the innermost enclosing ``for``/``while``.
    The hot-path pass treats scope > 0 as per-iteration work and, for
    per-cycle functions (simulator ``tick`` bodies), scope 0 as well.

    Facts inside ``raise``/``assert`` statements are skipped by design:
    error paths exit the hot loop, so their f-strings, allocations and
    lookups are free — this is the documented false-positive guard for
    the formatting and allocation rules.
    """

    _FIFO_OPS = frozenset({"push", "pop", "peek"})
    _LOG_ROOTS = frozenset({"logging", "log", "logger", "_log", "_logger"})
    _LOG_METHODS = frozenset(
        {"debug", "info", "warning", "error", "exception", "critical", "log"}
    )

    def __init__(self) -> None:
        self.facts: list[dict] = []
        self._loops: list[int] = []
        self._guard = 0
        self._in_fstring = 0
        #: (scope, dotted chain) -> {"count", "line", "col"}
        self._attr_counts: dict[tuple[int, str], dict] = {}

    def facts_out(self) -> list[dict]:
        """All facts, attribute chains aggregated per (scope, chain).

        Chains loaded once can never fire a repetition rule, so they are
        dropped here to keep cached summaries lean.
        """
        out = list(self.facts)
        for (scope, chain), record in self._attr_counts.items():
            if record["count"] >= 2:
                out.append({
                    "kind": "attr", "chain": chain, "scope": scope,
                    "count": record["count"],
                    "line": record["line"], "col": record["col"],
                })
        out.sort(key=lambda fact: (fact["line"], fact["col"], fact["kind"]))
        return out

    @property
    def _scope(self) -> int:
        return self._loops[-1] if self._loops else 0

    def _add(self, kind: str, node: ast.AST, **extra) -> None:
        if self._guard:
            return
        self.facts.append({
            "kind": kind, "scope": self._scope,
            "line": node.lineno, "col": node.col_offset, **extra,
        })

    # -- scopes --------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)  # evaluated once, in the enclosing scope
        self._loops.append(node.lineno)
        for stmt in node.body + node.orelse:
            self.visit(stmt)
        self._loops.pop()

    visit_AsyncFor = visit_For

    def visit_While(self, node: ast.While) -> None:
        self._loops.append(node.lineno)  # the test re-runs per iteration
        self.visit(node.test)
        for stmt in node.body + node.orelse:
            self.visit(stmt)
        self._loops.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return  # nested scopes are summarised separately

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_ClassDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return  # runs in its own scope, when (if ever) called

    def visit_Raise(self, node: ast.Raise) -> None:
        self._guard += 1
        self.generic_visit(node)
        self._guard -= 1

    visit_Assert = visit_Raise

    # -- facts ---------------------------------------------------------
    def visit_Try(self, node: ast.Try) -> None:
        if node.handlers:
            self._add("try", node)
        self.generic_visit(node)

    def _alloc(self, what: str, node: ast.AST) -> None:
        self._add("alloc", node, what=what)
        self.generic_visit(node)

    def visit_List(self, node: ast.List) -> None:
        self._alloc("list literal", node)

    def visit_Dict(self, node: ast.Dict) -> None:
        self._alloc("dict literal", node)

    def visit_Set(self, node: ast.Set) -> None:
        self._alloc("set literal", node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._alloc("comprehension", node)

    visit_SetComp = visit_ListComp
    visit_DictComp = visit_ListComp

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._alloc("generator expression", node)

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        # a format spec (``f"{x:>{width}}"``) is itself a JoinedStr
        # child; count the outermost f-string once, not per spec
        if not self._in_fstring:
            self._add("format", node, what="f-string")
        self._in_fstring += 1
        try:
            self.generic_visit(node)
        finally:
            self._in_fstring -= 1

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        chain = _attribute_chain(func) if isinstance(func, ast.Attribute) else None
        if isinstance(func, ast.Name) and func.id == "print":
            self._add("format", node, what="print()")
        elif chain is not None:
            root, attrs = chain
            if (
                attrs[-1] in self._FIFO_OPS
                and len(node.args) <= 1
                and not node.keywords
            ):
                self._add(
                    "fifo", node, op=attrs[-1],
                    recv=".".join([root] + attrs[:-1]),
                )
            if attrs[-1] == "format":
                self._add("format", node, what=".format()")
            elif (
                root in self._LOG_ROOTS and attrs[0] in self._LOG_METHODS
            ):
                self._add("format", node, what=f"{root}.{attrs[0]}()")
        # the callee chain itself is not a counted attribute load, but
        # its receiver is: binding `out = self.output` hoists the lookup
        if isinstance(func, ast.Attribute):
            self.visit(func.value)
        else:
            self.visit(func)
        for arg in node.args:
            self.visit(arg)
        for keyword in node.keywords:
            self.visit(keyword.value)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if not isinstance(node.ctx, ast.Load):
            return
        chain = _attribute_chain(node)
        if chain is None:
            self.visit(node.value)  # rooted at a call/subscript: descend
            return
        if self._guard:
            return
        root, attrs = chain
        # every prefix of the chain is one lookup a local binding of
        # that prefix would hoist: self.a.b counts self.a and self.a.b
        parts = [root] + attrs
        for depth in range(2, len(parts) + 1):
            dotted = ".".join(parts[:depth])
            record = self._attr_counts.setdefault(
                (self._scope, dotted),
                {"count": 0, "line": node.lineno, "col": node.col_offset},
            )
            record["count"] += 1
        # no descent: one chain is one load


def _module_prefix(module: str | None, level: int) -> str:
    """Base package for a relative import of the given level."""
    if not module:
        return ""
    parts = module.split(".")
    # ``module`` already names the *module*; level 1 means its package
    if len(parts) < level:
        return ""
    return ".".join(parts[:-level])


def extract_summary(path: str, source: str, tree: ast.Module) -> FileSummary:
    """Build the :class:`FileSummary` of one parsed file."""
    from pathlib import Path

    module = module_name(Path(path))
    out = FileSummary(path=path, module=module)

    sup = Suppressions.scan(source)
    out.file_suppressions = sorted(sup.file_rules)
    out.line_suppressions = {
        line: sorted(rules) for line, rules in sup.line_rules.items()
    }
    out.directives = [
        {
            "line": d.line, "kind": d.kind, "rules": sorted(d.rules),
            "justified": d.justified, "target": d.target,
        }
        for d in sup.directives
    ]

    for node in tree.body:
        _extract_top_level(out, node, module)
    return out


def _module_call_name(node: ast.Call) -> str:
    """Syntactic callee label of a module-level call, for diagnostics."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    chain = _attribute_chain(node.func)
    if chain is not None:
        return ".".join([chain[0]] + chain[1])
    return "<expression>"


def _record_module_calls(out: FileSummary, value: ast.AST) -> None:
    """Record every call a module-level statement executes at import."""
    for node in ast.walk(value):
        if isinstance(node, ast.Call):
            out.module_calls.append({
                "name": _module_call_name(node),
                "line": node.lineno,
                "col": node.col_offset,
            })


def _extract_top_level(out: FileSummary, node: ast.stmt, module: str | None) -> None:
    if isinstance(node, ast.Import):
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            out.imports[local] = alias.name if alias.asname else alias.name.split(".")[0]
    elif isinstance(node, ast.ImportFrom):
        base = node.module or ""
        if node.level:
            prefix = _module_prefix(module, node.level)
            base = f"{prefix}.{base}".strip(".") if base else prefix
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            out.imports[local] = f"{base}.{alias.name}" if base else alias.name
    elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        out.functions[node.name] = _FunctionExtractor(node, node.name, None).run()
    elif isinstance(node, ast.ClassDef):
        out.classes[node.name] = _extract_class(node)
    elif isinstance(node, (ast.Assign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id not in out.module_globals:
                out.module_globals.append(target.id)
        _extract_constant(out, node)
        if node.value is not None:
            _record_module_calls(out, node.value)
    elif isinstance(node, ast.Expr):
        _record_module_calls(out, node.value)
    elif isinstance(node, (ast.If, ast.Try)):
        # TYPE_CHECKING guards and import fallbacks
        bodies: list[list[ast.stmt]] = []
        if isinstance(node, ast.If):
            bodies = [node.body, node.orelse]
        else:
            bodies = [node.body, node.orelse, node.finalbody] + [
                handler.body for handler in node.handlers
            ]
        for body in bodies:
            for inner in body:
                _extract_top_level(out, inner, module)


def _extract_class(node: ast.ClassDef) -> ClassSummary:
    out = ClassSummary(name=node.name, line=node.lineno)
    for base in node.bases:
        name = _annotation_name(base)
        if name is not None:
            out.bases.append(name)
    for item in node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            out.fields[item.target.id] = _annotation_name(item.annotation)
        elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary = _FunctionExtractor(
                item, f"{node.name}.{item.name}", node.name
            ).run()
            out.methods[item.name] = summary
            if item.name == "__init__":
                _harvest_init_fields(out, item)
    return out


def _harvest_init_fields(out: ClassSummary, init: ast.FunctionDef) -> None:
    """Record ``self.x = Class(...)`` / annotated ``self.x`` as fields."""
    for node in ast.walk(init):
        targets: list[tuple[ast.AST, ast.AST | None]] = []
        if isinstance(node, ast.Assign):
            targets = [(t, node.value) for t in node.targets]
        elif isinstance(node, ast.AnnAssign):
            targets = [(node.target, None)]
        for target, value in targets:
            chain = _attribute_chain(target)
            if chain is None or chain[0] != "self" or len(chain[1]) != 1:
                continue
            name = chain[1][0]
            annotation: str | None = None
            if isinstance(node, ast.AnnAssign):
                annotation = _annotation_name(node.annotation)
            elif isinstance(value, ast.Call):
                annotation = _annotation_name(value.func)
            out.fields.setdefault(name, annotation)


def _extract_constant(out: FileSummary, node: ast.Assign | ast.AnnAssign) -> None:
    """Seed module-level constants whose value has an obvious family."""
    if isinstance(node, ast.Assign):
        targets = node.targets
        value: ast.AST | None = node.value
    else:
        targets = [node.target]
        value = node.value
    if value is None:
        return
    probe = _FunctionExtractor(
        ast.FunctionDef(
            name="<module>", args=ast.arguments(
                posonlyargs=[], args=[], kwonlyargs=[], kw_defaults=[],
                defaults=[],
            ),
            body=[], decorator_list=[], lineno=node.lineno,
            col_offset=node.col_offset,
        ),
        "<module>", None,
    )
    abstract: Any = probe.eval(value)
    if abstract[0] != "fam":
        return
    for target in targets:
        if isinstance(target, ast.Name):
            out.constant_families[target.id] = abstract[1]
