"""Project symbol table and call graph.

Assembled fresh on every run from the (possibly cached) per-file
summaries — assembly is cheap; extraction is what the cache avoids.
Responsibilities:

* map dotted module names to summaries, and fully-qualified names to
  functions and classes;
* resolve the *syntactic* call targets recorded in summaries into
  fully-qualified function names, following imports and re-exports
  (``repro.hw.Fifo`` -> ``repro.hw.fifo.Fifo``), class constructors
  (``Fifo(...)`` -> ``Fifo.__init__``), ``self`` methods through base
  classes, and ``self.<field>.<method>()`` through field annotations;
* compute strongly-connected components of the call graph (Tarjan) so
  the propagation passes can run callees-before-callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.lint.graph.summary import ClassSummary, FileSummary, FunctionSummary


@dataclass
class ProjectIndex:
    """Whole-program lookup structure over file summaries."""

    files: list[FileSummary] = field(default_factory=list)
    modules: dict[str, FileSummary] = field(default_factory=dict)
    #: fully-qualified function name -> summary (methods included)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    #: fully-qualified class name -> summary
    classes: dict[str, ClassSummary] = field(default_factory=dict)
    #: function fq -> path of its file (diagnostics need positions)
    paths: dict[str, str] = field(default_factory=dict)
    #: function fq -> summary of its file (suppression lookups)
    file_of: dict[str, FileSummary] = field(default_factory=dict)

    @classmethod
    def build(cls, summaries: Iterable[FileSummary]) -> "ProjectIndex":
        index = cls()
        for summary in summaries:
            index.files.append(summary)
            if summary.module:
                index.modules[summary.module] = summary
            prefix = f"{summary.module}." if summary.module else f"{summary.path}::"
            for fn in summary.all_functions():
                fq = prefix + fn.name
                index.functions[fq] = fn
                index.paths[fq] = summary.path
                index.file_of[fq] = summary
            for klass in summary.classes.values():
                index.classes[prefix + klass.name] = klass
        return index

    # -- name resolution ----------------------------------------------
    def function_fq(self, fn: FunctionSummary) -> str | None:
        """Inverse lookup (only used by tests and error paths)."""
        for fq, candidate in self.functions.items():
            if candidate is fn:
                return fq
        return None

    def resolve_dotted(self, dotted: str, _depth: int = 0) -> str | None:
        """Resolve a dotted name to a function fq, following re-exports.

        ``repro.hw.Fifo`` lands on the ``Fifo`` import binding inside
        ``repro/hw/__init__.py`` and follows it to
        ``repro.hw.fifo.Fifo.__init__``.  Returns ``None`` for names
        outside the analysed project (stdlib, third-party).
        """
        if _depth > 8:
            return None
        if dotted in self.functions:
            return dotted
        if dotted in self.classes:
            return self._constructor(dotted)
        # split into the longest known module prefix plus a remainder
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            summary = self.modules.get(module)
            if summary is None:
                continue
            remainder = parts[cut:]
            head = remainder[0]
            if head in summary.imports:
                # a re-export: follow the import binding
                target = ".".join([summary.imports[head]] + remainder[1:])
                return self.resolve_dotted(target, _depth + 1)
            # the longest module prefix owns the name but does not define
            # it (the direct function/class cases were checked above)
            return None
        return None

    def _constructor(self, class_fq: str) -> str | None:
        """``__init__`` (or ``__post_init__``) of a class, if summarised."""
        klass = self.classes.get(class_fq)
        if klass is None:
            return None
        for name in ("__init__", "__post_init__"):
            if name in klass.methods:
                return f"{class_fq}.{name}"
        return None

    def resolve_class_name(self, module: str | None, name: str) -> str | None:
        """Resolve a syntactic class/annotation name used inside ``module``."""
        if not name:
            return None
        summary = self.modules.get(module or "")
        root = name.split(".")[0]
        rest = name.split(".")[1:]
        candidates: list[str] = []
        if summary is not None:
            if root in summary.imports:
                candidates.append(".".join([summary.imports[root]] + rest))
            if not rest and module and f"{module}.{name}" not in candidates:
                candidates.append(f"{module}.{name}")
        candidates.append(name)
        for candidate in candidates:
            resolved = self._follow_reexport(candidate)
            if resolved in self.classes:
                return resolved
        return None

    def _follow_reexport(self, dotted: str, _depth: int = 0) -> str:
        """Chase import bindings (``repro.hw.Fifo`` -> concrete class fq)."""
        if _depth > 8 or dotted in self.classes:
            return dotted
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            summary = self.modules.get(module)
            if summary is None:
                continue
            head = parts[cut]
            if head in summary.imports:
                target = ".".join([summary.imports[head]] + parts[cut + 1:])
                return self._follow_reexport(target, _depth + 1)
            break
        return dotted

    def method_fq(self, class_fq: str, method: str, _depth: int = 0) -> str | None:
        """Method lookup walking project-local base classes."""
        if _depth > 8:
            return None
        klass = self.classes.get(class_fq)
        if klass is None:
            return None
        if method in klass.methods:
            return f"{class_fq}.{method}"
        module = class_fq.rsplit(".", 1)[0] if "." in class_fq else None
        for base in klass.bases:
            base_fq = self.resolve_class_name(module, base)
            if base_fq is not None:
                found = self.method_fq(base_fq, method, _depth + 1)
                if found is not None:
                    return found
        return None

    def field_class(self, class_fq: str, field_name: str) -> str | None:
        """Resolved class fq of a field's annotation, if any."""
        klass = self.classes.get(class_fq)
        if klass is None:
            return None
        annotation = klass.fields.get(field_name)
        if annotation is None:
            return None
        module = class_fq.rsplit(".", 1)[0] if "." in class_fq else None
        return self.resolve_class_name(module, annotation)

    def resolve_call(self, caller_fq: str, target: tuple) -> str | None:
        """Fully-qualified callee of one recorded call site, or ``None``."""
        summary = self.file_of.get(caller_fq)
        module = summary.module if summary is not None else None
        caller = self.functions.get(caller_fq)
        local_imports = caller.local_imports if caller is not None else {}
        kind = target[0]
        if kind == "name":
            name = target[1]
            if name in local_imports:
                return self.resolve_dotted(local_imports[name])
            if summary is not None and name in summary.imports:
                return self.resolve_dotted(summary.imports[name])
            if module:
                local = f"{module}.{name}"
                if local in self.functions:
                    return local
                if local in self.classes:
                    return self._constructor(local)
            return None
        if kind == "dotted":
            dotted = target[1]
            parts = dotted.split(".")
            root = parts[0]
            if root in local_imports:
                rebased = ".".join([local_imports[root]] + parts[1:])
                return self.resolve_dotted(rebased)
            if summary is not None and root in summary.imports:
                rebased = ".".join([summary.imports[root]] + parts[1:])
                return self.resolve_dotted(rebased)
            resolved = self.resolve_dotted(dotted)
            if resolved is None and len(parts) == 2:
                # ``sim = Simulation(...); sim.run_until(...)`` — follow
                # the constructor binding recorded on the call site
                class_fq = self._bound_class(caller_fq, root)
                if class_fq is not None:
                    return self.method_fq(class_fq, parts[1])
            return resolved
        if kind == "self":
            class_fq = self._owner_class(caller_fq)
            if class_fq is None:
                return None
            return self.method_fq(class_fq, target[1])
        if kind == "selfattr":
            class_fq = self._owner_class(caller_fq)
            if class_fq is None:
                return None
            field_fq = self.field_class(class_fq, target[1])
            if field_fq is None:
                return None
            return self.method_fq(field_fq, target[2])
        return None

    def _bound_class(self, caller_fq: str, name: str) -> str | None:
        """Class whose constructor's result ``name`` is bound to, if any.

        Scans the caller's recorded call sites for ``name = Klass(...)``
        and resolves ``Klass`` to a summarised class — the one form of
        local dataflow the call graph follows, because simulator drivers
        are invoked exactly this way from the worker entry points.
        """
        caller = self.functions.get(caller_fq)
        summary = self.file_of.get(caller_fq)
        if caller is None:
            return None
        module = summary.module if summary is not None else None
        for call in caller.calls:
            if call.get("binds") != name:
                continue
            target = call["target"]
            if target[0] != "name":
                continue
            resolved = self.resolve_class_name(module, target[1])
            if resolved is None and target[1] in caller.local_imports:
                candidate = self._follow_reexport(
                    caller.local_imports[target[1]]
                )
                resolved = candidate if candidate in self.classes else None
            if resolved is not None:
                return resolved
        return None

    def _owner_class(self, method_fq: str) -> str | None:
        fn = self.functions.get(method_fq)
        if fn is None or fn.class_name is None:
            return None
        # strip ".<Class>.<method>" and re-append the class
        head = method_fq.rsplit(".", 2)[0]
        return f"{head}.{fn.class_name}"

    # -- call graph ----------------------------------------------------
    def call_edges(self) -> dict[str, list[tuple[str, dict]]]:
        """``caller fq -> [(callee fq, call-site record), ...]``."""
        edges: dict[str, list[tuple[str, dict]]] = {}
        for fq, fn in self.functions.items():
            resolved: list[tuple[str, dict]] = []
            for call in fn.calls:
                callee = self.resolve_call(fq, call["target"])
                if callee is not None:
                    resolved.append((callee, call))
            edges[fq] = resolved
        return edges

    def sccs(self) -> list[list[str]]:
        """Strongly-connected components in reverse topological order.

        Tarjan's algorithm emits each component only after all the
        components it calls into, which is exactly the order the effect
        and unit-flow propagations want (callees first).  Iterative, so
        deep call chains cannot hit the recursion limit.
        """
        edges = {
            caller: [callee for callee, _ in callees]
            for caller, callees in self.call_edges().items()
        }
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[list[str]] = []
        counter = 0

        for root in sorted(edges):
            if root in index:
                continue
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, child_index = work.pop()
                if child_index == 0:
                    index[node] = lowlink[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                children = edges.get(node, [])
                advanced = False
                for position in range(child_index, len(children)):
                    child = children[position]
                    if child not in edges:
                        continue
                    if child not in index:
                        work.append((node, position + 1))
                        work.append((child, 0))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if advanced:
                    continue
                if lowlink[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return components
