"""Interprocedural unit-flow inference.

Every quantity in this codebase belongs to a small set of dimension
families (decimal bytes, binary bytes, records, cycles, seconds,
hertz).  The per-file ``unit-mix`` rule catches literal mixing inside
one expression; this pass catches the cross-module version: a function
returns decimal gigabytes, two call hops later the value is added to a
binary-KiB BRAM figure, and no single file ever shows both families.

The analysis is summary-based and context-insensitive:

1. **seeds** — parameter and return families from ``repro.units``
   constants, annotations, and naming conventions (``*_bytes``,
   ``*_cycles``, ``bram*``, ...), recorded during extraction;
2. **propagation** — a fixed point over the call graph: return families
   flow into call expressions, argument families flow into parameters;
   joins through the small lattice (generic ``bytes`` refines to either
   byte family; disagreeing families collapse to unknown rather than
   guessing);
3. **checks** — additive/comparison sites whose two operands resolve to
   *incompatible* families (``unit-flow-mix``), and call arguments whose
   resolved family contradicts the callee parameter's *seeded* family
   (``unit-flow-call``).  Only seeded parameter families are enforced at
   call sites: inferred-only families are propagation fuel, not
   contracts, which keeps the pass quiet on dimensionless helper code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.graph.summary import (
    BYTES_ANY,
    BYTES_BIN,
    BYTES_DEC,
    FunctionSummary,
)
from repro.lint.graph.symbols import ProjectIndex

#: propagation rounds before declaring the fixed point unreachable (the
#: lattice has height 2, so real projects converge in a handful)
MAX_ROUNDS = 12


def compatible(a: str, b: str) -> bool:
    """Whether two families may meet in additive arithmetic."""
    if a == b:
        return True
    return {a, b} in ({BYTES_ANY, BYTES_DEC}, {BYTES_ANY, BYTES_BIN})


def join(a: str | None, b: str | None) -> str | None:
    """Least upper bound; disagreements collapse to ``None`` (unknown)."""
    if a is None:
        return b
    if b is None or a == b:
        return a
    if {a, b} == {BYTES_ANY, BYTES_DEC}:
        return BYTES_DEC
    if {a, b} == {BYTES_ANY, BYTES_BIN}:
        return BYTES_BIN
    return None


@dataclass
class UnitFlow:
    """Fixed-point state of the whole-program unit inference."""

    index: ProjectIndex
    #: function fq -> inferred return family
    returns: dict[str, str] = field(default_factory=dict)
    #: (function fq, param) -> inferred family
    params: dict[tuple[str, str], str] = field(default_factory=dict)
    #: (function fq, param) -> True when the family came from a seed
    seeded: set[tuple[str, str]] = field(default_factory=set)

    def solve(self) -> None:
        """Run the propagation to a fixed point."""
        for fq, fn in self.index.functions.items():
            for param, family in fn.param_seeds.items():
                self.params[(fq, param)] = family
                self.seeded.add((fq, param))
        edges = self.index.call_edges()
        for _ in range(MAX_ROUNDS):
            if not self._propagate_once(edges):
                return

    def _propagate_once(self, edges: dict[str, list[tuple[str, dict]]]) -> bool:
        changed = False
        for fq, fn in self.index.functions.items():
            # returns: join of every return expression's resolved family
            family: str | None = None
            for value in fn.returns:
                family = join(family, self.resolve(fq, value))
            if family is not None and self.returns.get(fq) != family:
                self.returns[fq] = family
                changed = True
            # arguments flow into (unseeded) callee parameters
            for callee, call in edges.get(fq, []):
                target = self.index.functions.get(callee)
                if target is None:
                    continue
                pairs = list(zip(target.params, call["args"]))
                pairs += [
                    (name, value)
                    for name, value in call["kwargs"].items()
                    if name in target.params
                ]
                for param, value in pairs:
                    key = (callee, param)
                    if key in self.seeded:
                        continue  # seeds are authoritative
                    resolved = self.resolve(fq, value)
                    merged = join(self.params.get(key), resolved)
                    if merged is not None and self.params.get(key) != merged:
                        self.params[key] = merged
                        changed = True
        return changed

    # ------------------------------------------------------------------
    def resolve(self, fq: str, value: tuple) -> str | None:
        """Concrete family of an abstract value inside function ``fq``."""
        kind = value[0]
        if kind == "fam":
            return value[1]
        if kind == "param":
            return self.params.get((fq, value[1]))
        if kind == "ret":
            fn = self.index.functions.get(fq)
            if fn is None or value[1] >= len(fn.calls):
                return None
            call = fn.calls[value[1]]
            callee = self.index.resolve_call(fq, call["target"])
            if callee is None:
                return None
            return self.returns.get(callee)
        return None

    def describe(self, fq: str, value: tuple) -> str:
        """Human-readable provenance of an abstract value."""
        kind = value[0]
        if kind == "fam":
            return "this expression"
        if kind == "param":
            return f"parameter {value[1]!r}"
        if kind == "ret":
            fn = self.index.functions.get(fq)
            if fn is not None and value[1] < len(fn.calls):
                call = fn.calls[value[1]]
                callee = self.index.resolve_call(fq, call["target"])
                if callee is not None:
                    return f"the return value of {callee}()"
            return "a call result"
        return "this value"


def check_unit_flow(index: ProjectIndex) -> list[Diagnostic]:
    """Run the inference and emit ``unit-flow-*`` diagnostics."""
    flow = UnitFlow(index)
    flow.solve()
    diagnostics: list[Diagnostic] = []
    for fq, fn in index.functions.items():
        path = index.paths[fq]
        diagnostics.extend(_check_mixes(flow, fq, fn, path))
        diagnostics.extend(_check_calls(flow, fq, fn, path))
    return diagnostics


def _check_mixes(
    flow: UnitFlow, fq: str, fn: FunctionSummary, path: str
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for mix in fn.mixes:
        left = flow.resolve(fq, mix["left"])
        right = flow.resolve(fq, mix["right"])
        if left is None or right is None or compatible(left, right):
            continue
        out.append(Diagnostic(
            path=path, line=mix["line"], column=mix["col"],
            rule="unit-flow-mix",
            message=(
                f"{fn.name}() combines {left} "
                f"(from {flow.describe(fq, mix['left'])}) with {right} "
                f"(from {flow.describe(fq, mix['right'])}) in a "
                f"{mix['op']}; convert one side explicitly "
                "(repro.units documents which family applies where)"
            ),
            severity=Severity.ERROR,
        ))
    return out


def _check_calls(
    flow: UnitFlow, fq: str, fn: FunctionSummary, path: str
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for call in fn.calls:
        callee = flow.index.resolve_call(fq, call["target"])
        if callee is None:
            continue
        target = flow.index.functions.get(callee)
        if target is None:
            continue
        pairs = list(zip(target.params, call["args"]))
        pairs += [
            (name, value)
            for name, value in call["kwargs"].items()
            if name in target.params
        ]
        for param, value in pairs:
            declared = target.param_seeds.get(param)
            if declared is None:
                continue
            actual = flow.resolve(fq, value)
            if actual is None or compatible(actual, declared):
                continue
            out.append(Diagnostic(
                path=path, line=call["line"], column=call["col"],
                rule="unit-flow-call",
                message=(
                    f"{fn.name}() passes {actual} "
                    f"(from {flow.describe(fq, value)}) to parameter "
                    f"{param!r} of {callee}(), which expects {declared}"
                ),
                severity=Severity.ERROR,
            ))
    return out
