"""Worker-entry hygiene for the process-pool execution layer.

``repro.parallel`` ships work to forked/spawned processes that import
worker entry functions by qualified name.  That only stays deterministic
and safe under three structural facts, which this pass enforces over the
package (see ``docs/performance.md``, "Parallel execution"):

* **entries are module-level** — a ``worker_*`` method (or nested
  function) cannot be pickled by reference, and would silently capture
  parent instance state a child process does not have;
* **the workers module is import-pure** — importing
  ``repro.parallel.workers`` must run no code beyond ``def``/``import``,
  so every pool process observes exactly the module the parent did and
  results cannot depend on import order or import-time side effects;
* **heavy subsystems are imported lazily** — binding ``repro.engine`` /
  ``repro.core`` / ``repro.hw`` at module scope would both slow every
  worker start-up and close an import cycle (the engine itself imports
  ``repro.parallel.plan``); entries import them inside the body instead.

Entries also take exactly one task argument: ``ParallelPlan.map`` ships
one picklable tuple per task, so a second parameter can only ever be
dead or defaulted — either way a latent divergence between the serial
and the pooled call.
"""

from __future__ import annotations

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.graph.symbols import ProjectIndex

#: the packages whose files this pass inspects (everything that ships
#: work to pool processes: the execution layer and the serve daemon)
PACKAGES = ("repro.parallel", "repro.serve")
#: the modules holding pool entry points
WORKERS_MODULES = ("repro.parallel.workers", "repro.serve.workers")
#: naming convention marking a function as a pool entry
ENTRY_PREFIX = "worker_"

#: definition-time machinery allowed at module scope in the workers
#: module (pure, deterministic, no observable import-order effects)
DEF_TIME_CALLS = {"TypeVar", "dataclass", "field", "namedtuple", "frozenset"}

#: ``repro`` subtrees a worker module may import eagerly; everything
#: else in ``repro`` must be imported inside the entry body
EAGER_IMPORT_OK = ("repro.parallel", "repro.errors", "repro.units")


def _in_package(module: str | None) -> bool:
    return module is not None and any(
        module == package or module.startswith(package + ".")
        for package in PACKAGES
    )


def _eager_import_allowed(dotted: str) -> bool:
    if not dotted.startswith("repro"):
        return True  # stdlib and numpy are cheap and fork-safe
    return any(
        dotted == prefix or dotted.startswith(prefix + ".")
        for prefix in EAGER_IMPORT_OK
    )


def check_worker_entries(index: ProjectIndex) -> list[Diagnostic]:
    """Emit ``worker-entry`` diagnostics over ``repro.parallel``."""
    out: list[Diagnostic] = []
    for summary in index.files:
        if not _in_package(summary.module):
            continue
        # Entries must be module-level wherever they appear in the
        # package: a method cannot be imported by qualified name from a
        # pool process.
        for klass in summary.classes.values():
            for method in klass.methods.values():
                name = method.name.split(".")[-1]
                if name.startswith(ENTRY_PREFIX):
                    out.append(Diagnostic(
                        path=summary.path, line=method.line,
                        column=method.col, rule="worker-entry",
                        message=(
                            f"worker entry {name}() is a method of "
                            f"{klass.name}; pool processes import entries "
                            "by module-level qualified name, so entries "
                            "must be top-level functions"
                        ),
                        severity=Severity.ERROR,
                    ))
        if summary.module not in WORKERS_MODULES:
            continue
        for fn in summary.functions.values():
            if fn.name.startswith(ENTRY_PREFIX) and len(fn.params) != 1:
                out.append(Diagnostic(
                    path=summary.path, line=fn.line, column=fn.col,
                    rule="worker-entry",
                    message=(
                        f"worker entry {fn.name}() takes "
                        f"{len(fn.params)} parameters; "
                        "ParallelPlan.map ships exactly one task "
                        "tuple per call"
                    ),
                    severity=Severity.ERROR,
                ))
        for call in summary.module_calls:
            if call["name"] in DEF_TIME_CALLS:
                continue
            out.append(Diagnostic(
                path=summary.path, line=call["line"], column=call["col"],
                rule="worker-entry",
                message=(
                    f"module-level call {call['name']}() runs at import "
                    "time; the workers module must stay import-pure so "
                    "every pool process observes identical module state"
                ),
                severity=Severity.ERROR,
            ))
        for local, dotted in sorted(summary.imports.items()):
            if _eager_import_allowed(dotted):
                continue
            out.append(Diagnostic(
                path=summary.path, line=1, column=0, rule="worker-entry",
                message=(
                    f"module-scope import of {dotted} (as {local}); "
                    "worker entries import heavy subsystems lazily "
                    "inside the function body (cheap worker start-up, "
                    "no engine<->parallel import cycle)"
                ),
                severity=Severity.ERROR,
            ))
    return out
