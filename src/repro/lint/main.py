"""Argument wiring shared by ``bonsai lint`` and ``python -m repro.lint``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import BonsaiError
from repro.lint.registry import all_rules
from repro.lint.reporters import render_json, render_sarif, render_text
from repro.lint.runner import run

#: directories linted when no paths are given and they exist
DEFAULT_PATHS = ("src", "benchmarks")


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src benchmarks)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rules to run (default: all)",
    )
    parser.add_argument(
        "--disable", default=None, metavar="RULES",
        help="comma-separated rules to skip",
    )
    parser.add_argument(
        "--require-justification", action="store_true",
        help="warn on suppression directives without a '-- reason' "
        "justification (on in CI)",
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help="lint only files changed vs git HEAD (fast pre-commit "
        "iteration; full-repo semantics are unchanged without it)",
    )
    parser.add_argument(
        "--sarif-file", default=None, metavar="FILE",
        help="additionally write a SARIF 2.1.0 log to FILE",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )


def _split(option: str | None) -> list[str] | None:
    if option is None:
        return None
    return [part.strip() for part in option.split(",") if part.strip()]


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments."""
    if args.list_rules:
        for name, rule in sorted(all_rules().items()):
            print(f"{name:18} [{rule.severity.value:7}] {rule.description}")
        return 0
    paths = args.paths or [p for p in DEFAULT_PATHS if Path(p).is_dir()]
    if getattr(args, "changed_only", False):
        from repro.lint.gitchanges import changed_files
        from repro.lint.runner import collect_files

        changed = changed_files()
        paths = [
            path for path in collect_files(paths)
            if path.resolve() in changed
        ]
        if not paths:
            print("0 changed file(s) to lint")
            return 0
    result = run(
        paths,
        select=_split(args.select),
        disable=_split(args.disable),
        require_justification=args.require_justification,
    )
    if args.sarif_file:
        Path(args.sarif_file).write_text(
            render_sarif(result) + "\n", encoding="utf-8"
        )
    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result))
    return result.exit_code


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point for ``python -m repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="bonsai-lint: enforce the repo's simulator, unit and "
        "model-purity invariants",
    )
    add_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_from_args(args)
    except BonsaiError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
