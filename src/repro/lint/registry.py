"""Rule base class and registry.

Rules self-register at import time via the :func:`register` decorator;
:func:`all_rules` imports the rule package on first use so the registry
is complete regardless of which entry point (CLI, ``python -m``, test)
reached it first.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from typing import Iterable, Iterator, Type

from repro.errors import LintError
from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic, Severity

_REGISTRY: dict[str, "Rule"] = {}


class Rule(ABC):
    """One named invariant checked against a file's AST.

    Subclasses set ``name`` (the registry/suppression key),
    ``description`` (one line, shown by ``bonsai lint --list-rules``)
    and ``severity``, and implement :meth:`check`.
    """

    name: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule inspects the given file at all."""
        return True

    @abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Yield diagnostics for every violation found in ``ctx``."""

    # ------------------------------------------------------------------
    def flag(self, ctx: FileContext, node: ast.AST, message: str) -> Diagnostic:
        """Build a diagnostic anchored at ``node``."""
        return Diagnostic(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule=self.name,
            message=message,
            severity=self.severity,
        )


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule (as a singleton) to the registry."""
    rule = cls()
    if not rule.name:
        raise LintError(f"rule {cls.__name__} has no name")
    if rule.name in _REGISTRY:
        raise LintError(f"duplicate rule name {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return cls


def all_rules() -> dict[str, Rule]:
    """Name-to-rule mapping of every registered rule."""
    import repro.lint.rules  # noqa: F401  (import populates the registry)

    return dict(_REGISTRY)


def resolve_rules(
    select: Iterable[str] | None = None, disable: Iterable[str] | None = None
) -> list[Rule]:
    """The active rule set after ``--select`` / ``--disable`` filtering.

    Raises
    ------
    LintError
        When a requested rule name does not exist (catching typos beats
        silently linting with nothing).
    """
    rules = all_rules()
    chosen = set(select) if select else set(rules)
    dropped = set(disable) if disable else set()
    unknown = (chosen | dropped) - set(rules)
    if unknown:
        raise LintError(
            f"unknown rule(s): {', '.join(sorted(unknown))}; "
            f"known rules: {', '.join(sorted(rules))}"
        )
    return [rules[name] for name in sorted(chosen - dropped)]
