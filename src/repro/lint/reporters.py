"""Text and JSON renderings of a :class:`~repro.lint.runner.LintResult`.

The JSON schema is versioned and covered by
``tests/lint/test_reporters.py``; bump ``JSON_SCHEMA_VERSION`` on any
shape change so CI consumers can pin against it.
"""

from __future__ import annotations

import json

from repro.lint.diagnostics import Severity
from repro.lint.runner import LintResult

JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    """One line per finding plus a summary, matching compiler style."""
    lines = [diagnostic.render() for diagnostic in result.diagnostics]
    errors = result.count(Severity.ERROR)
    warnings = result.count(Severity.WARNING)
    if result.diagnostics:
        lines.append("")
    lines.append(
        f"{len(result.diagnostics)} finding(s) "
        f"({errors} error(s), {warnings} warning(s)), "
        f"{result.suppressed} suppressed, "
        f"{result.files_scanned} file(s) scanned"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Stable machine-readable report."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": result.files_scanned,
        "rules": list(result.rules),
        "diagnostics": [d.to_json() for d in result.diagnostics],
        "summary": {
            "error": result.count(Severity.ERROR),
            "warning": result.count(Severity.WARNING),
            "suppressed": result.suppressed,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 log via the reporter shared with ``bonsai check``."""
    from repro.lint.registry import all_rules
    from repro.lint.runner import (
        PARSE_ERROR_RULE,
        UNJUSTIFIED_SUPPRESSION_RULE,
        USELESS_SUPPRESSION_RULE,
    )
    from repro.lint.sarif import render_sarif as _render_sarif

    descriptions = {
        name: (rule.description, rule.severity.value)
        for name, rule in all_rules().items()
    }
    descriptions[PARSE_ERROR_RULE] = (
        "file could not be read or parsed", "error",
    )
    descriptions[USELESS_SUPPRESSION_RULE] = (
        "suppression directive that silenced nothing this run", "warning",
    )
    descriptions[UNJUSTIFIED_SUPPRESSION_RULE] = (
        "suppression directive without a '-- reason' justification",
        "warning",
    )
    # the scan-level rules can always fire, so they are always enabled
    enabled = tuple(result.rules) + (
        PARSE_ERROR_RULE,
        USELESS_SUPPRESSION_RULE,
        UNJUSTIFIED_SUPPRESSION_RULE,
    )
    return _render_sarif(
        result.diagnostics,
        tool_name="bonsai-lint",
        rule_descriptions=descriptions,
        enabled_rules=enabled,
    )
