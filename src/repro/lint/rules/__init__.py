"""Built-in rule set; importing this package populates the registry."""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401  (imports register the rules)
    clock_discipline,
    determinism,
    error_taxonomy,
    model_purity,
    unit_mix,
)
