"""``clock-discipline`` — the simulator's one-register-per-stage contract.

:mod:`repro.hw.clock` components may communicate *only* through FIFOs:
a ``tick()`` that reaches into a sibling component's state couples two
pipeline stages inside one cycle, which is exactly the cycle-accounting
drift the paper's one-tuple-per-cycle claims depend on avoiding.  Two
checks run inside every ``tick`` method of a ``repro.hw`` class:

* **sibling state access** — writes to ``self.<sub>.<attr>``, and calls
  of ``self.<sub>.<method>()`` outside the FIFO protocol (push/pop/peek/
  drain/free_slots), the hierarchical ``tick`` delegation, and plain
  container bookkeeping (append/extend/...).  The component's own
  ``stats`` object is exempt — statistics are observability, not
  datapath.
* **float arithmetic on cycle counters** — true division or float
  operands touching a ``cycle``/``*_cycles`` quantity.  Cycle counts
  must stay integral; a fractional cycle is a modelling bug, not a
  quantity to round.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import assignment_targets, self_attribute_chain
from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import Rule, register

#: sub-objects of a component that tick() may freely mutate
OWN_STATE = {"stats"}

#: the FIFO handshake protocol plus hierarchical composition and
#: bookkeeping on a component's own containers
ALLOWED_CALLS = {
    "push", "pop", "peek", "drain", "free_slots",  # FIFO protocol
    "tick",                                        # child components
    "append", "extend", "clear", "items", "values", "keys", "get",
}


def _cycleish(name: str) -> bool:
    """Names that denote a cycle count (not a per-cycle rate)."""
    if "per_cycle" in name:
        return False
    return (
        name in ("cycle", "cycles")
        or name.endswith("_cycles")
        or name.startswith("cycles_")
    )


def _refers_to_cycles(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return _cycleish(node.id)
    if isinstance(node, ast.Attribute):
        return _cycleish(node.attr)
    return False


@register
class ClockDisciplineRule(Rule):
    name = "clock-discipline"
    description = (
        "tick() must talk to siblings only through FIFOs and keep cycle "
        "arithmetic integral"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return (ctx.module or "").startswith("repro.hw")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "tick"
                ):
                    yield from self._check_tick(ctx, node.name, item)

    # ------------------------------------------------------------------
    def _check_tick(
        self, ctx: FileContext, class_name: str, tick: ast.AST
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(tick):
            yield from self._check_sibling_write(ctx, class_name, node)
            yield from self._check_sibling_call(ctx, class_name, node)
            yield from self._check_cycle_arithmetic(ctx, class_name, node)

    def _check_sibling_write(
        self, ctx: FileContext, class_name: str, node: ast.AST
    ) -> Iterator[Diagnostic]:
        for target in assignment_targets(node):
            chain = self_attribute_chain(target)
            if chain is None or len(chain) < 2 or chain[0] in OWN_STATE:
                continue
            yield self.flag(
                ctx,
                target,
                f"{class_name}.tick() writes self.{'.'.join(chain)} "
                "directly; components communicate only through FIFO "
                "push/pop (one-register-per-stage discipline)",
            )

    def _check_sibling_call(
        self, ctx: FileContext, class_name: str, node: ast.AST
    ) -> Iterator[Diagnostic]:
        if not isinstance(node, ast.Call):
            return
        chain = self_attribute_chain(node.func)
        if chain is None or len(chain) < 2:
            return
        if chain[0] in OWN_STATE or chain[-1] in ALLOWED_CALLS:
            return
        yield self.flag(
            ctx,
            node,
            f"{class_name}.tick() calls self.{'.'.join(chain)}() which "
            "bypasses the FIFO protocol (allowed: "
            f"{', '.join(sorted(ALLOWED_CALLS))})",
        )

    def _check_cycle_arithmetic(
        self, ctx: FileContext, class_name: str, node: ast.AST
    ) -> Iterator[Diagnostic]:
        message = (
            f"{class_name}.tick() performs float arithmetic on a cycle "
            "counter; cycle accounting must stay integral"
        )
        if isinstance(node, ast.BinOp):
            operands = (node.left, node.right)
            touches_cycles = any(_refers_to_cycles(op) for op in operands)
            if touches_cycles and isinstance(node.op, ast.Div):
                yield self.flag(ctx, node, message)
            elif touches_cycles and any(
                isinstance(op, ast.Constant) and isinstance(op.value, float)
                for op in operands
            ):
                yield self.flag(ctx, node, message)
        elif isinstance(node, ast.AugAssign) and _refers_to_cycles(node.target):
            if isinstance(node.op, ast.Div) or (
                isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, float)
            ):
                yield self.flag(ctx, node, message)
