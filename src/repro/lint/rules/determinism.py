"""``determinism`` — simulator and model code must replay identically.

Every experiment in this repo is an assertion about a *deterministic*
computation: the same workload seed must produce the same cycle count on
every machine, or the benchmark suite stops being evidence.  Flags, in
any ``repro.*`` module:

* unseeded randomness — module-level ``random.*`` calls,
  ``random.Random()`` / ``default_rng()`` without a seed, and the
  legacy global-state ``numpy.random.*`` API;
* wall-clock reads — ``time.time()``/``perf_counter()``/
  ``datetime.now()`` and friends (simulated time comes from cycle
  counts, never the host clock);
* iteration over sets — ``for x in {...}`` / ``for x in set(...)``
  feeds hash order into what is usually ordered output; sort first.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import dotted_call_name
from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import Rule, register

_RANDOM_MODULE_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "randbytes", "getrandbits", "triangular", "expovariate",
}
_NUMPY_LEGACY_FNS = {
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "seed", "uniform", "standard_normal",
    "bytes",
}
_TIME_FNS = {
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns",
}
_NOW_FNS = {"now", "utcnow", "today"}


@register
class DeterminismRule(Rule):
    name = "determinism"
    description = (
        "unseeded RNGs, wall-clock reads, and set iteration in repro.* "
        "modules"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return (ctx.module or "").startswith("repro")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, (ast.For, ast.comprehension)):
                yield from self._check_set_iteration(ctx, node)

    # ------------------------------------------------------------------
    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Diagnostic]:
        dotted = dotted_call_name(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        head, tail = parts[0], parts[-1]

        if head == "random" and len(parts) == 2 and tail in _RANDOM_MODULE_FNS:
            yield self.flag(
                ctx, node,
                f"module-level {dotted}() uses the shared unseeded RNG; "
                "construct random.Random(seed) instead",
            )
        elif dotted in ("random.Random", "Random") and not (node.args or node.keywords):
            yield self.flag(
                ctx, node,
                "random.Random() without a seed is nondeterministic; "
                "pass an explicit seed",
            )
        elif "random" in parts[:-1] and tail in _NUMPY_LEGACY_FNS:
            yield self.flag(
                ctx, node,
                f"legacy global-state numpy API {dotted}(); use "
                "numpy.random.default_rng(seed)",
            )
        elif tail == "default_rng" and not (node.args or node.keywords):
            yield self.flag(
                ctx, node,
                "default_rng() without a seed draws OS entropy; pass an "
                "explicit seed",
            )
        elif head == "time" and len(parts) == 2 and tail in _TIME_FNS:
            yield self.flag(
                ctx, node,
                f"{dotted}() reads the host clock; simulated time comes "
                "from cycle counts",
            )
        elif tail in _NOW_FNS and len(parts) >= 2 and parts[-2] in (
            "datetime", "date",
        ):
            yield self.flag(
                ctx, node,
                f"{dotted}() reads the host clock; model code must not "
                "depend on when it runs",
            )

    def _check_set_iteration(
        self, ctx: FileContext, node: ast.For | ast.comprehension
    ) -> Iterator[Diagnostic]:
        iterable = node.iter
        is_set = isinstance(iterable, (ast.Set, ast.SetComp)) or (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in ("set", "frozenset")
        )
        if is_set:
            anchor = iterable if isinstance(node, ast.comprehension) else node
            yield self.flag(
                ctx, anchor,
                "iterating a set feeds hash order into the output; wrap "
                "it in sorted(...) to fix the order",
            )
