"""``error-taxonomy`` — every raised error derives from ``BonsaiError``.

The public-API contract (and ``tests/test_public_api.py``) promises that
callers can catch :class:`repro.errors.BonsaiError` and get everything.
Raising a bare builtin (``ValueError``, ``RuntimeError``) in ``repro.*``
silently punches a hole in that promise.  Use the taxonomy:
``ConfigurationError`` (also a ``ValueError``) for parameter validation,
``SimulationError`` for protocol violations, ``LintError`` for linter
misuse, and so on.

``NotImplementedError`` is exempt — it marks abstract methods, not
error conditions callers should handle.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import Rule, register

_BARE_BUILTINS = {
    "ValueError", "TypeError", "RuntimeError", "Exception", "KeyError",
    "IndexError", "ArithmeticError", "ZeroDivisionError", "OSError",
    "AssertionError", "LookupError", "BaseException",
}


@register
class ErrorTaxonomyRule(Rule):
    name = "error-taxonomy"
    description = (
        "raise repro.errors subclasses, not bare builtin exceptions, "
        "inside repro.*"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return (ctx.module or "").startswith("repro")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in _BARE_BUILTINS:
                yield self.flag(
                    ctx, node,
                    f"raises bare {name}; use the repro.errors hierarchy "
                    "(ConfigurationError for bad parameters, "
                    "SimulationError for protocol violations, ...) so "
                    "callers can catch BonsaiError",
                )
