"""``model-purity`` — the Eq. 1-10 analytical models stay pure functions.

The optimizer exhaustively evaluates :mod:`repro.core.performance` and
:mod:`repro.core.resources` over the whole configuration space; those
modules must therefore be pure arithmetic: no I/O, no global mutation,
and **no imports of** ``repro.hw`` (the cycle-level simulator) — the
layering rule that keeps the model-vs-simulator validation meaningful
(``repro.core.validation`` is the single sanctioned bridge).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import dotted_call_name
from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import Rule, register

#: modules whose every function the optimizer treats as a pure map
PURE_MODULES = {"repro.core.performance", "repro.core.resources"}

_IO_BUILTINS = {"open", "print", "input", "exec", "eval", "breakpoint", "__import__"}
_SIDE_EFFECT_MODULES = {
    "os", "sys", "subprocess", "shutil", "socket", "pathlib", "io",
    "tempfile", "logging",
}


@register
class ModelPurityRule(Rule):
    name = "model-purity"
    description = (
        "repro.core.performance/resources must stay pure: no I/O, no "
        "globals, no repro.hw imports"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module in PURE_MODULES

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield from self._check_import(ctx, node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import(ctx, node, node.module or "")
            elif isinstance(node, ast.Global):
                yield self.flag(
                    ctx, node,
                    f"global statement mutates module state "
                    f"({', '.join(node.names)}); model functions must be "
                    "pure maps from parameters to numbers",
                )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    # ------------------------------------------------------------------
    def _check_import(
        self, ctx: FileContext, node: ast.AST, module: str
    ) -> Iterator[Diagnostic]:
        if module == "repro.hw" or module.startswith("repro.hw."):
            yield self.flag(
                ctx, node,
                f"pure model module imports {module}; the analytical "
                "model must never depend on the simulator "
                "(repro.core.validation is the sanctioned bridge)",
            )
        elif module in _SIDE_EFFECT_MODULES:
            yield self.flag(
                ctx, node,
                f"pure model module imports {module}; Eq. 1-10 code "
                "performs no I/O or process interaction",
            )

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Diagnostic]:
        dotted = dotted_call_name(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        if len(parts) == 1 and parts[0] in _IO_BUILTINS:
            yield self.flag(
                ctx, node,
                f"{dotted}() in a pure model module; the optimizer calls "
                "these functions millions of times — no I/O",
            )
        elif len(parts) > 1 and parts[0] in _SIDE_EFFECT_MODULES:
            yield self.flag(
                ctx, node,
                f"{dotted}() touches the host environment from a pure "
                "model module",
            )
