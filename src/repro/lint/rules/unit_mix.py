"""``unit-mix`` — keep decimal and binary byte units apart, and named.

The repo's unit contract (:mod:`repro.units`) is decimal GB for
bandwidths and array sizes, binary KiB/MiB for on-chip quantities.  Two
failure modes rot that contract:

* an arithmetic expression that *mixes* the two families (``2**30 *
  10**7`` — is that bytes-decimal or bytes-binary?), and
* magic power-of-ten / power-of-two literals where a ``repro.units``
  name exists (``8 * 10**9`` instead of ``8 * GB``).

The mixing check runs everywhere; the magic-literal check only inside
the ``repro`` package, because benchmarks legitimately use numeric
literals as key ranges (``randrange(1, 10**9)`` is a key bound, not a
byte count).
"""

# bonsai-lint: disable-file=unit-mix -- this module defines the literal
# tables the rule matches against; they cannot be written as unit names.

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import parent_map
from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import Rule, register

DECIMAL_NAMES = {"KB", "MB", "GB", "TB", "PB"}
BINARY_NAMES = {"KiB", "MiB", "GiB", "TiB"}

#: exponents of 10**k / 2**k that have a repro.units name
DECIMAL_POWERS = {3: "KB", 6: "MB", 9: "GB", 12: "TB", 15: "PB"}
BINARY_POWERS = {10: "KiB", 20: "MiB", 30: "GiB", 40: "TiB"}

#: literal values that have a repro.units name (1000/1024 are excluded:
#: they are overwhelmingly counts, not byte quantities)
INT_LITERALS = {
    10**6: "MB", 10**9: "GB", 10**12: "TB", 10**15: "PB",
    2**20: "MiB", 2**30: "GiB", 2**40: "TiB",
}
FLOAT_LITERALS = {1e3: "KB", 1e6: "MB", 1e9: "GB", 1e12: "TB"}

_ARITHMETIC = (ast.BinOp, ast.UnaryOp)


def _power_exponent(node: ast.AST) -> tuple[int, int] | None:
    """``(base, exponent)`` for literal ``10**k`` / ``2**k`` nodes."""
    if (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Pow)
        and isinstance(node.left, ast.Constant)
        and isinstance(node.right, ast.Constant)
        and node.left.value in (2, 10)
        and isinstance(node.right.value, int)
    ):
        return node.left.value, node.right.value
    return None


def _flavor(node: ast.AST) -> str | None:
    """Classify a leaf node as decimal- or binary-unit flavoured."""
    if isinstance(node, ast.Name) and node.id in DECIMAL_NAMES:
        return "decimal"
    if isinstance(node, ast.Name) and node.id in BINARY_NAMES:
        return "binary"
    if isinstance(node, ast.Attribute):
        if node.attr in DECIMAL_NAMES:
            return "decimal"
        if node.attr in BINARY_NAMES:
            return "binary"
    power = _power_exponent(node)
    if power is not None:
        base, exponent = power
        if base == 10 and exponent >= 3:
            return "decimal"
        # Only the *named* binary exponents count: other 2**k literals
        # (2**16, 2**64, ...) are counts and masks, not byte units.
        if base == 2 and exponent in BINARY_POWERS:
            return "binary"
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool):
            return None
        if isinstance(node.value, int) and node.value in INT_LITERALS:
            return "decimal" if node.value % 10 == 0 else "binary"
        if isinstance(node.value, float) and node.value in FLOAT_LITERALS:
            return "decimal"
    return None


def _arithmetic_flavors(node: ast.AST) -> set[str]:
    """Unit flavours reachable through one arithmetic expression.

    Recursion stops at non-arithmetic boundaries (calls, subscripts):
    ``f(GB) + g(MiB)`` passes units *through* functions, which is not
    the in-expression mixing this rule polices.
    """
    flavor = _flavor(node)
    if flavor is not None:
        return {flavor}
    if isinstance(node, ast.BinOp):
        return _arithmetic_flavors(node.left) | _arithmetic_flavors(node.right)
    if isinstance(node, ast.UnaryOp):
        return _arithmetic_flavors(node.operand)
    return set()


@register
class UnitMixRule(Rule):
    name = "unit-mix"
    description = (
        "decimal and binary byte units mixed in one expression, or magic "
        "byte literals where a repro.units name exists"
    )
    severity = Severity.WARNING

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        parents = parent_map(ctx.tree)
        mixed_roots: list[ast.AST] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if isinstance(parents.get(node), _ARITHMETIC):
                continue  # report at the arithmetic expression root only
            flavors = _arithmetic_flavors(node)
            if "decimal" in flavors and "binary" in flavors:
                mixed_roots.append(node)
                yield self.flag(
                    ctx,
                    node,
                    "expression mixes decimal (KB/MB/GB/...) and binary "
                    "(KiB/MiB/GiB/...) byte units; pick one family "
                    "(repro.units documents which applies where)",
                )
        if not (ctx.module or "").startswith("repro"):
            return
        mixed_nodes = {
            child for root in mixed_roots for child in ast.walk(root)
        }
        for node in ast.walk(ctx.tree):
            if node in mixed_nodes:
                continue  # already reported as part of a mixed expression
            suggestion = self._literal_suggestion(node)
            if suggestion is not None:
                yield self.flag(
                    ctx,
                    node,
                    f"magic byte-unit literal; use repro.units.{suggestion} "
                    "(or the matching frequency constant if this is Hz)",
                )

    @staticmethod
    def _literal_suggestion(node: ast.AST) -> str | None:
        power = _power_exponent(node)
        if power is not None:
            base, exponent = power
            if base == 10:
                return DECIMAL_POWERS.get(exponent)
            return BINARY_POWERS.get(exponent)
        if isinstance(node, ast.Constant) and not isinstance(node.value, bool):
            if isinstance(node.value, int):
                return INT_LITERALS.get(node.value)
            if isinstance(node.value, float):
                return FLOAT_LITERALS.get(node.value)
        return None
