"""File collection and rule execution.

The runner walks the given paths, parses each ``.py`` file once, runs
every applicable rule over the shared AST, filters findings through the
file's inline suppressions, and returns one :class:`LintResult`.  Files
that fail to parse become ``parse-error`` diagnostics instead of
aborting the run, so one broken file cannot mask findings elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import LintError
from repro.lint.context import build_context
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import Rule, all_rules, resolve_rules
from repro.lint.suppressions import Directive, Suppressions

#: rule name attached to unreadable/unparseable files (not a registered
#: rule; it cannot be disabled, because a broken file can hide anything)
PARSE_ERROR_RULE = "parse-error"

#: warning for directives that silenced nothing this run
USELESS_SUPPRESSION_RULE = "useless-suppression"

#: warning for directives without a ``-- reason`` justification
UNJUSTIFIED_SUPPRESSION_RULE = "unjustified-suppression"

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist", "results"}


@dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run."""

    diagnostics: tuple[Diagnostic, ...]
    files_scanned: int
    suppressed: int
    rules: tuple[str, ...] = field(default=())

    @property
    def exit_code(self) -> int:
        """0 when clean; 1 when any finding survived suppression."""
        return 1 if self.diagnostics else 0

    def count(self, severity: Severity) -> int:
        """Number of findings at one severity."""
        return sum(1 for d in self.diagnostics if d.severity is severity)


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    if not paths:
        raise LintError("no paths given to lint")
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.update(
                candidate
                for candidate in path.rglob("*.py")
                if not _SKIP_DIRS.intersection(candidate.parts)
            )
        elif path.is_file():
            if path.suffix != ".py":
                raise LintError(f"not a Python file: {path}")
            found.add(path)
        else:
            raise LintError(f"no such file or directory: {path}")
    return sorted(found)


def _parse_error(path: Path, line: int, column: int, message: str) -> Diagnostic:
    return Diagnostic(
        path=str(path), line=line, column=column,
        rule=PARSE_ERROR_RULE, message=message, severity=Severity.ERROR,
    )


def _directive_findings(
    path: Path,
    directives: Iterable[Directive],
    active: frozenset[str],
    require_justification: bool,
) -> list[Diagnostic]:
    """Meta-findings about the suppression directives themselves.

    Staleness is judged only against rules that actually ran:
    ``--select`` runs do not flag directives for the rules they skipped,
    and directives naming whole-program ``bonsai check`` rules are left
    to that tool.  ``disable=all`` is stale only when every rule ran and
    the directive still silenced nothing.
    """
    out: list[Diagnostic] = []
    full_set = active >= frozenset(all_rules())
    for directive in directives:
        scope = "file" if directive.kind == "disable-file" else "line"
        for rule in sorted(directive.rules - {"all"}):
            if rule in active and rule not in directive.used:
                out.append(Diagnostic(
                    path=str(path), line=directive.line, column=0,
                    rule=USELESS_SUPPRESSION_RULE,
                    message=(
                        f"suppression of '{rule}' ({scope} scope) matched "
                        "no finding; remove the stale directive"
                    ),
                    severity=Severity.WARNING,
                ))
        if "all" in directive.rules and full_set and not directive.used:
            out.append(Diagnostic(
                path=str(path), line=directive.line, column=0,
                rule=USELESS_SUPPRESSION_RULE,
                message=(
                    f"suppression of 'all' ({scope} scope) matched no "
                    "finding; remove the stale directive"
                ),
                severity=Severity.WARNING,
            ))
        if require_justification and not directive.justified:
            out.append(Diagnostic(
                path=str(path), line=directive.line, column=0,
                rule=UNJUSTIFIED_SUPPRESSION_RULE,
                message=(
                    "suppression directive has no '-- reason' "
                    "justification; say why the finding is acceptable"
                ),
                severity=Severity.WARNING,
            ))
    return out


def lint_file(
    path: Path,
    rules: Iterable[Rule],
    *,
    require_justification: bool = False,
) -> tuple[list[Diagnostic], int]:
    """Run ``rules`` over one file.

    Returns ``(surviving diagnostics, suppressed count)``.  Files that
    cannot be read, decoded, or parsed yield a single ``parse-error``
    diagnostic instead of raising, so the run reports them and exits 1.
    """
    try:
        ctx = build_context(path)
    except SyntaxError as error:
        return (
            [_parse_error(
                path, error.lineno or 1, (error.offset or 1) - 1,
                f"file does not parse: {error.msg}",
            )],
            0,
        )
    except LintError as error:
        return [_parse_error(path, 1, 0, str(error))], 0
    rules = list(rules)
    suppressions = Suppressions.scan(ctx.source)
    kept: list[Diagnostic] = []
    suppressed = 0
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for diagnostic in rule.check(ctx):
            if suppressions.covers(diagnostic):
                suppressed += 1
            else:
                kept.append(diagnostic)
    kept.extend(_directive_findings(
        path, suppressions.directives,
        frozenset(rule.name for rule in rules), require_justification,
    ))
    return kept, suppressed


def run(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    disable: Iterable[str] | None = None,
    require_justification: bool = False,
) -> LintResult:
    """Lint ``paths`` with the (optionally filtered) rule set."""
    rules = resolve_rules(select=select, disable=disable)
    files = collect_files(paths)
    diagnostics: list[Diagnostic] = []
    suppressed = 0
    for path in files:
        found, hidden = lint_file(
            path, rules, require_justification=require_justification
        )
        diagnostics.extend(found)
        suppressed += hidden
    return LintResult(
        diagnostics=tuple(sorted(diagnostics)),
        files_scanned=len(files),
        suppressed=suppressed,
        rules=tuple(rule.name for rule in rules),
    )
