"""File collection and rule execution.

The runner walks the given paths, parses each ``.py`` file once, runs
every applicable rule over the shared AST, filters findings through the
file's inline suppressions, and returns one :class:`LintResult`.  Files
that fail to parse become ``parse-error`` diagnostics instead of
aborting the run, so one broken file cannot mask findings elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import LintError
from repro.lint.context import build_context
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import Rule, resolve_rules
from repro.lint.suppressions import Suppressions

#: rule name attached to syntax errors (not a registered rule; it cannot
#: be disabled, because an unparseable file can hide anything)
PARSE_ERROR_RULE = "parse-error"

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist", "results"}


@dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run."""

    diagnostics: tuple[Diagnostic, ...]
    files_scanned: int
    suppressed: int
    rules: tuple[str, ...] = field(default=())

    @property
    def exit_code(self) -> int:
        """0 when clean; 1 when any finding survived suppression."""
        return 1 if self.diagnostics else 0

    def count(self, severity: Severity) -> int:
        """Number of findings at one severity."""
        return sum(1 for d in self.diagnostics if d.severity is severity)


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    if not paths:
        raise LintError("no paths given to lint")
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.update(
                candidate
                for candidate in path.rglob("*.py")
                if not _SKIP_DIRS.intersection(candidate.parts)
            )
        elif path.is_file():
            if path.suffix != ".py":
                raise LintError(f"not a Python file: {path}")
            found.add(path)
        else:
            raise LintError(f"no such file or directory: {path}")
    return sorted(found)


def lint_file(path: Path, rules: Iterable[Rule]) -> tuple[list[Diagnostic], int]:
    """Run ``rules`` over one file.

    Returns ``(surviving diagnostics, suppressed count)``.
    """
    try:
        ctx = build_context(path)
    except SyntaxError as error:
        return (
            [
                Diagnostic(
                    path=str(path),
                    line=error.lineno or 1,
                    column=(error.offset or 1) - 1,
                    rule=PARSE_ERROR_RULE,
                    message=f"file does not parse: {error.msg}",
                    severity=Severity.ERROR,
                )
            ],
            0,
        )
    suppressions = Suppressions.scan(ctx.source)
    kept: list[Diagnostic] = []
    suppressed = 0
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for diagnostic in rule.check(ctx):
            if suppressions.covers(diagnostic):
                suppressed += 1
            else:
                kept.append(diagnostic)
    return kept, suppressed


def run(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    disable: Iterable[str] | None = None,
) -> LintResult:
    """Lint ``paths`` with the (optionally filtered) rule set."""
    rules = resolve_rules(select=select, disable=disable)
    files = collect_files(paths)
    diagnostics: list[Diagnostic] = []
    suppressed = 0
    for path in files:
        found, hidden = lint_file(path, rules)
        diagnostics.extend(found)
        suppressed += hidden
    return LintResult(
        diagnostics=tuple(sorted(diagnostics)),
        files_scanned=len(files),
        suppressed=suppressed,
        rules=tuple(rule.name for rule in rules),
    )
