"""SARIF 2.1.0 reporter shared by ``bonsai lint`` and ``bonsai check``.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what CI systems ingest to annotate pull-request diffs.  One ``run`` is
emitted per invocation, with the full rule table in the tool driver and
one ``result`` per diagnostic.  Baseline-accepted findings are included
with an ``external`` suppression — SARIF consumers show them greyed out
instead of failing the check, mirroring the analyzer's exit-code
behaviour.

The emitted subset is pinned by ``tests/lint/test_sarif.py`` against a
vendored 2.1.0 schema extract; widen the schema when widening the
output.
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping, Sequence

from repro._version import __version__
from repro.lint.diagnostics import Diagnostic, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_entry(name: str, description: str, severity: str) -> dict:
    return {
        "id": name,
        "shortDescription": {"text": description},
        "defaultConfiguration": {"level": severity},
    }


#: partialFingerprints key; bump the suffix when the hashed inputs change
FINGERPRINT_KEY = "bonsaiFingerprint/v1"


def _fingerprint(diagnostic: Diagnostic, occurrence: int) -> str:
    """Stable identity of one finding across pushes.

    Content-addressed (path, rule, message, occurrence index) — the same
    scheme the check baseline uses — so GitHub code scanning dedupes a
    finding even when unrelated edits shift its line number.
    """
    payload = "\x00".join((
        diagnostic.path.replace("\\", "/"),
        diagnostic.rule,
        diagnostic.message,
        str(occurrence),
    ))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def _location(path: str, line: int, column: int) -> dict:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path.replace("\\", "/")},
            "region": {
                "startLine": max(1, line),
                "startColumn": column + 1,
            },
        }
    }


def _result(diagnostic: Diagnostic, suppressed: bool, occurrence: int) -> dict:
    entry: dict = {
        "ruleId": diagnostic.rule,
        "level": _LEVELS[diagnostic.severity],
        "message": {"text": diagnostic.message},
        "locations": [
            _location(diagnostic.path, diagnostic.line, diagnostic.column)
        ],
        "partialFingerprints": {
            FINGERPRINT_KEY: _fingerprint(diagnostic, occurrence),
        },
    }
    if diagnostic.related:
        entry["relatedLocations"] = [
            {
                **_location(hop["path"], hop["line"], hop["column"]),
                "message": {"text": hop["message"]},
            }
            for hop in diagnostic.related
        ]
    if suppressed:
        entry["suppressions"] = [{"kind": "external"}]
    return entry


def render_sarif(
    diagnostics: Sequence[Diagnostic],
    *,
    tool_name: str,
    rule_descriptions: Mapping[str, tuple[str, str]],
    suppressed: Sequence[Diagnostic] = (),
    enabled_rules: Sequence[str] | None = None,
    properties: Mapping | None = None,
) -> str:
    """Serialise findings as a SARIF 2.1.0 log.

    Parameters
    ----------
    diagnostics:
        Findings that fail the run.
    tool_name:
        ``bonsai-lint`` or ``bonsai-check`` (the driver name).
    rule_descriptions:
        ``rule name -> (one-line description, default level)`` for the
        driver's rule table; rules that fired but are not listed (e.g.
        ``parse-error``) get a generated entry.
    suppressed:
        Baseline-accepted findings, emitted with a suppression marker.
    enabled_rules:
        Rules active in this run.  When given, the driver rule table
        lists only rules that are enabled or actually fired — a SARIF
        consumer then sees the run's real rule surface instead of the
        whole registry.  ``None`` keeps the full table.
    properties:
        Optional run-level ``properties`` bag (the ``--statistics``
        counters).
    """
    rules = {
        name: _rule_entry(name, description, level)
        for name, (description, level) in sorted(rule_descriptions.items())
        if enabled_rules is None or name in set(enabled_rules)
    }
    for diagnostic in list(diagnostics) + list(suppressed):
        if diagnostic.rule not in rules:
            description, level = rule_descriptions.get(
                diagnostic.rule,
                (
                    "diagnostic outside the registered rule set",
                    _LEVELS[diagnostic.severity],
                ),
            )
            rules[diagnostic.rule] = _rule_entry(
                diagnostic.rule, description, level
            )
    occurrences: dict[tuple, int] = {}
    results = []
    for group, is_suppressed in ((diagnostics, False), (suppressed, True)):
        for diagnostic in group:
            key = (diagnostic.path, diagnostic.rule, diagnostic.message)
            occurrence = occurrences.get(key, 0)
            occurrences[key] = occurrence + 1
            results.append(_result(diagnostic, is_suppressed, occurrence))
    run: dict = {
        "tool": {
            "driver": {
                "name": tool_name,
                "version": __version__,
                "informationUri": (
                    "https://github.com/bonsai-repro/bonsai"
                ),
                "rules": [rules[name] for name in sorted(rules)],
            }
        },
        "columnKind": "utf16CodeUnits",
        "results": results,
    }
    if properties:
        run["properties"] = dict(properties)
    payload = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [run],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def merge_sarif_logs(documents: Sequence[str]) -> str:
    """Combine SARIF logs into one multi-run document.

    CI runs ``bonsai lint`` and ``bonsai check`` separately but uploads
    a single artifact; SARIF's ``runs`` array is made for exactly this
    — one log, one run per tool.  Inputs must all be version 2.1.0.
    """
    from repro.errors import LintError

    runs: list[dict] = []
    for document in documents:
        payload = json.loads(document)
        version = payload.get("version")
        if version != SARIF_VERSION:
            raise LintError(
                f"cannot merge SARIF version {version!r}; "
                f"expected {SARIF_VERSION}"
            )
        runs.extend(payload.get("runs", []))
    merged = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": runs,
    }
    return json.dumps(merged, indent=2, sort_keys=True)


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.lint.sarif OUT IN [IN ...]`` — merge logs."""
    import sys
    from pathlib import Path

    from repro.errors import LintError

    arguments = list(sys.argv[1:] if argv is None else argv)
    if len(arguments) < 2:
        print(
            "usage: python -m repro.lint.sarif OUT.sarif IN.sarif "
            "[IN.sarif ...]",
            file=sys.stderr,
        )
        return 2
    out, *inputs = arguments
    try:
        documents = [
            Path(name).read_text(encoding="utf-8") for name in inputs
        ]
        merged = merge_sarif_logs(documents)
    except (OSError, LintError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    Path(out).write_text(merged + "\n", encoding="utf-8")
    print(f"wrote {out} ({len(inputs)} run(s) merged)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
