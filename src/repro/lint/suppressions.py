"""Inline suppression directives.

Two forms are recognised, mirroring the pylint/ruff convention but
namespaced so foreign tools ignore them:

* ``# bonsai-lint: disable=rule-a,rule-b`` — on a code line, suppresses
  those rules for that line; on a comment-only line, suppresses them for
  the next *code* line (comments, blank lines and decorators in between
  are skipped, so a directive can sit above a decorated ``def``).
* ``# bonsai-lint: disable-file=rule-a`` — anywhere in the file,
  suppresses the rule for the whole file (used by ``repro/units.py``,
  which *defines* the unit constants the unit-mix rule points at).

``disable=all`` suppresses every rule.  Anything after `` -- `` in the
directive is a free-form justification; the repo convention is that
every suppression carries one, and ``--require-justification`` (on in
CI) turns the convention into a ``unjustified-suppression`` warning.

Every :class:`Directive` records which rules it actually silenced
during a run; directives that silenced nothing come back as
``useless-suppression`` warnings so suppressions cannot outlive the
finding they were written for.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.lint.diagnostics import Diagnostic

_DIRECTIVE = re.compile(
    r"#\s*bonsai-lint:\s*(?P<kind>disable-file|disable)\s*="
    r"\s*(?P<rules>[A-Za-z0-9_,\- ]+?)\s*"
    r"(?:--\s*(?P<reason>.*\S)?\s*)?$"
)


def _parse_rules(text: str) -> frozenset[str]:
    return frozenset(part.strip() for part in text.split(",") if part.strip())


def _paren_depth(line: str) -> int:
    return line.count("(") - line.count(")") + line.count("[") - line.count("]")


def _shield_target(lines: list[str], number: int) -> int:
    """Line a comment-only directive at ``number`` shields.

    Skips trailing comments, blank lines and decorators (including
    multi-line decorator calls) so the directive lands on the code line
    a rule would anchor its diagnostic to.
    """
    index = number  # 0-based index of the line after the directive
    while index < len(lines):
        stripped = lines[index].strip()
        if not stripped or stripped.startswith("#"):
            index += 1
            continue
        if stripped.startswith("@"):
            depth = _paren_depth(stripped)
            index += 1
            while depth > 0 and index < len(lines):
                depth += _paren_depth(lines[index])
                index += 1
            continue
        return index + 1
    return number + 1


@dataclass
class Directive:
    """One parsed suppression directive and its runtime usage."""

    line: int
    kind: str  # "disable" | "disable-file"
    rules: frozenset[str]
    justified: bool
    #: shielded line for ``disable`` directives; None for file-level
    target: int | None
    #: rule names this directive actually silenced during the run
    used: set[str] = field(default_factory=set)

    def matches(self, diagnostic: Diagnostic) -> bool:
        """True when this directive silences the diagnostic."""
        if self.kind == "disable" and diagnostic.line != self.target:
            return False
        return "all" in self.rules or diagnostic.rule in self.rules


@dataclass
class Suppressions:
    """Parsed suppression directives of one file."""

    directives: list[Directive] = field(default_factory=list)

    @property
    def file_rules(self) -> frozenset[str]:
        """Union of rules disabled for the whole file."""
        rules: set[str] = set()
        for directive in self.directives:
            if directive.kind == "disable-file":
                rules |= directive.rules
        return frozenset(rules)

    @property
    def line_rules(self) -> dict[int, frozenset[str]]:
        """Shielded line -> rules disabled on it."""
        out: dict[int, set[str]] = {}
        for directive in self.directives:
            if directive.kind == "disable" and directive.target is not None:
                out.setdefault(directive.target, set()).update(directive.rules)
        return {line: frozenset(rules) for line, rules in out.items()}

    @classmethod
    def scan(cls, source: str) -> "Suppressions":
        """Collect directives from raw source text."""
        directives: list[Directive] = []
        lines = source.splitlines()
        for number, line in enumerate(lines, start=1):
            match = _DIRECTIVE.search(line)
            if not match:
                continue
            kind = match.group("kind")
            reason = match.group("reason")
            target: int | None = None
            if kind == "disable":
                comment_only = line.lstrip().startswith("#")
                target = _shield_target(lines, number) if comment_only else number
            directives.append(Directive(
                line=number,
                kind=kind,
                rules=_parse_rules(match.group("rules")),
                justified=bool(reason),
                target=target,
            ))
        return cls(directives=directives)

    def covers(self, diagnostic: Diagnostic) -> bool:
        """True when the diagnostic is silenced; records directive usage."""
        hit = False
        for directive in self.directives:
            if directive.matches(diagnostic):
                directive.used.add(diagnostic.rule)
                hit = True
        return hit
