"""Inline suppression directives.

Two forms are recognised, mirroring the pylint/ruff convention but
namespaced so foreign tools ignore them:

* ``# bonsai-lint: disable=rule-a,rule-b`` — on a code line, suppresses
  those rules for that line; on a comment-only line, suppresses them for
  the *next* line (useful when the flagged line has no room).
* ``# bonsai-lint: disable-file=rule-a`` — anywhere in the file,
  suppresses the rule for the whole file (used by ``repro/units.py``,
  which *defines* the unit constants the unit-mix rule points at).

``disable=all`` suppresses every rule.  Anything after `` -- `` in the
directive is a free-form justification; the repo convention is that
every suppression carries one.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.lint.diagnostics import Diagnostic

_DIRECTIVE = re.compile(
    r"#\s*bonsai-lint:\s*(?P<kind>disable-file|disable)\s*="
    r"\s*(?P<rules>[A-Za-z0-9_,\- ]+?)\s*(?:--|$)"
)


def _parse_rules(text: str) -> frozenset[str]:
    return frozenset(part.strip() for part in text.split(",") if part.strip())


@dataclass
class Suppressions:
    """Parsed suppression directives of one file."""

    file_rules: frozenset[str] = frozenset()
    line_rules: dict[int, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def scan(cls, source: str) -> "Suppressions":
        """Collect directives from raw source text."""
        file_rules: set[str] = set()
        line_rules: dict[int, set[str]] = {}
        for number, line in enumerate(source.splitlines(), start=1):
            match = _DIRECTIVE.search(line)
            if not match:
                continue
            rules = _parse_rules(match.group("rules"))
            if match.group("kind") == "disable-file":
                file_rules |= rules
            else:
                # A comment-only line shields the line below it; an
                # inline trailer shields its own line.
                target = number + 1 if line.lstrip().startswith("#") else number
                line_rules.setdefault(target, set()).update(rules)
        return cls(
            file_rules=frozenset(file_rules),
            line_rules={k: frozenset(v) for k, v in line_rules.items()},
        )

    def covers(self, diagnostic: Diagnostic) -> bool:
        """True when the diagnostic is silenced by a directive."""
        for active in (self.file_rules, self.line_rules.get(diagnostic.line, frozenset())):
            if "all" in active or diagnostic.rule in active:
                return True
        return False
