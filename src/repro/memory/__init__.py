"""Off-chip memory models.

Bonsai treats memories as bandwidth/capacity envelopes (Table II:
``beta_DRAM``, ``beta_I/O``, ``C_DRAM``) plus the batching behaviour the
data loader exists to serve (reads must be batched into 1-4 KB chunks to
reach peak bandwidth, §II).  This package models exactly those properties:

* :mod:`repro.memory.base` — the common :class:`MemoryModel` envelope with
  a batching-efficiency curve.
* :mod:`repro.memory.dram` — multi-bank DDR DRAM (AWS F1: 4 x 8 GB/s).
* :mod:`repro.memory.hbm` — high-bandwidth memory (32 banks, §IV-B).
* :mod:`repro.memory.ssd` — SSD/flash behind an I/O bus (§IV-C).
* :mod:`repro.memory.hierarchy` — the two-tier DRAM+SSD hierarchy.
* :mod:`repro.memory.traffic` — byte-traffic accounting used to report
  achieved bandwidth and bandwidth-efficiency (Fig. 12).
"""

from repro.memory.base import MemoryModel
from repro.memory.dram import DdrDram
from repro.memory.hbm import Hbm
from repro.memory.ssd import Ssd
from repro.memory.hierarchy import TwoTierHierarchy
from repro.memory.traffic import TrafficMeter

__all__ = [
    "MemoryModel",
    "DdrDram",
    "Hbm",
    "Ssd",
    "TwoTierHierarchy",
    "TrafficMeter",
]
