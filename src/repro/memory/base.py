"""Common memory envelope: capacity, bandwidth, batching efficiency.

The model has deliberately few parameters — the same ones the paper's
equations consume (Table II) — plus one extra, ``batch_overhead_bytes``,
which produces the "reads and writes must be batched into 1-4 KB chunks to
reach peak bandwidth" behaviour of §II.  The efficiency curve is the usual
fixed-overhead-per-burst form::

    efficiency(b) = b / (b + batch_overhead_bytes)

so a 1 KiB batch against the default 32-byte overhead reaches ~97% of
peak, while unbatched 64-byte accesses reach only ~67% — which is why the
data loader double-buffers whole batches per leaf.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MemoryModelError
from repro.units import KiB


@dataclass(frozen=True)
class MemoryModel:
    """Bandwidth/capacity envelope of one off-chip memory.

    Parameters
    ----------
    name:
        Label used in reports ("DDR4", "HBM2", "NVMe SSD").
    capacity_bytes:
        Total capacity (``C_DRAM`` in Table II).
    peak_bandwidth:
        Peak *per-direction* bandwidth in bytes/second when ``duplex``;
        total shared bandwidth otherwise.
    duplex:
        True when reads and writes proceed concurrently at full rate
        (the paper's F1 DRAM offers "32 GB/s concurrent read and write").
    banks:
        Number of independent banks/channels (F1 DDR4: 4; HBM tile: 32).
    batch_overhead_bytes:
        Per-burst fixed overhead driving the batching-efficiency curve.
    measured_bandwidth:
        Optionally, the empirically achieved bandwidth (the paper measured
        ~29 GB/s against the 32 GB/s spec).  Experiments that reproduce
        measured tables use this; model-only sweeps use the peak.
    """

    name: str
    capacity_bytes: int
    peak_bandwidth: float
    duplex: bool = True
    banks: int = 1
    batch_overhead_bytes: int = 32
    measured_bandwidth: float | None = None

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise MemoryModelError(f"capacity must be positive, got {self.capacity_bytes}")
        if self.peak_bandwidth <= 0:
            raise MemoryModelError(f"bandwidth must be positive, got {self.peak_bandwidth}")
        if self.banks < 1:
            raise MemoryModelError(f"bank count must be >= 1, got {self.banks}")
        if self.batch_overhead_bytes < 0:
            raise MemoryModelError("batch overhead must be non-negative")
        if self.measured_bandwidth is not None and self.measured_bandwidth <= 0:
            raise MemoryModelError("measured bandwidth must be positive")

    # ------------------------------------------------------------------
    # bandwidth queries
    # ------------------------------------------------------------------
    @property
    def bandwidth(self) -> float:
        """Effective bandwidth used by experiments: measured if available."""
        return self.measured_bandwidth or self.peak_bandwidth

    @property
    def per_bank_bandwidth(self) -> float:
        """Peak bandwidth of a single bank."""
        return self.peak_bandwidth / self.banks

    def batching_efficiency(self, batch_bytes: int) -> float:
        """Fraction of peak bandwidth achieved at a given burst size."""
        if batch_bytes <= 0:
            raise MemoryModelError(f"batch size must be positive, got {batch_bytes}")
        return batch_bytes / (batch_bytes + self.batch_overhead_bytes)

    def effective_bandwidth(self, batch_bytes: int = 4 * KiB) -> float:
        """Bandwidth achieved when all accesses use ``batch_bytes`` bursts."""
        return self.bandwidth * self.batching_efficiency(batch_bytes)

    # ------------------------------------------------------------------
    # timing queries
    # ------------------------------------------------------------------
    def transfer_time(self, n_bytes: float, batch_bytes: int = 4 * KiB) -> float:
        """Seconds to move ``n_bytes`` in one direction."""
        if n_bytes < 0:
            raise MemoryModelError(f"byte count must be >= 0, got {n_bytes}")
        return n_bytes / self.effective_bandwidth(batch_bytes)

    def stream_pass_time(self, n_bytes: float, batch_bytes: int = 4 * KiB) -> float:
        """Seconds for one full read-everything + write-everything pass.

        With duplex memory the two directions overlap (one pass costs
        ``n / beta``); half-duplex memory pays for both directions.
        """
        single = self.transfer_time(n_bytes, batch_bytes)
        return single if self.duplex else 2 * single

    def fits(self, n_bytes: float) -> bool:
        """Whether an array of ``n_bytes`` fits in this memory."""
        return n_bytes <= self.capacity_bytes

    def check_fits(self, n_bytes: float) -> None:
        """Raise :class:`MemoryModelError` when the array does not fit."""
        if not self.fits(n_bytes):
            raise MemoryModelError(
                f"{n_bytes:.3g}-byte array exceeds {self.name} capacity "
                f"of {self.capacity_bytes:.3g} bytes"
            )
