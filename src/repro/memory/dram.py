"""DDR DRAM model.

The AWS EC2 F1.2xlarge DRAM the paper targets: "a 64 GB DDR DRAM that has
4 banks, each with 8 GB/s concurrent read and write bandwidth and a
capacity of 16 GB" (§VI-A), with a measured rate of roughly 29 GB/s
against the 32 GB/s spec (§IV-A footnote).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MemoryModelError
from repro.memory.base import MemoryModel
from repro.units import GB


@dataclass(frozen=True)
class DdrDram(MemoryModel):
    """Multi-bank DDR DRAM.

    Defaults model the F1 instance; construct with other values for
    bandwidth sweeps (Fig. 5) or throttled experiments (§VI-E throttles
    DRAM to 8 GB/s to stand in for SSD flash).
    """

    name: str = "DDR4"
    capacity_bytes: int = 64 * GB
    peak_bandwidth: float = 32 * GB
    duplex: bool = True
    banks: int = 4
    measured_bandwidth: float | None = 29 * GB

    def bank(self) -> MemoryModel:
        """Envelope of a single bank (used by pipelined configurations).

        Each AMT in a pipeline saturates one bank (§IV-C), so pipelined
        timing divides capacity and bandwidth per bank.
        """
        measured = (
            self.measured_bandwidth / self.banks
            if self.measured_bandwidth is not None
            else None
        )
        return MemoryModel(
            name=f"{self.name}-bank",
            capacity_bytes=self.capacity_bytes // self.banks,
            peak_bandwidth=self.per_bank_bandwidth,
            duplex=self.duplex,
            banks=1,
            batch_overhead_bytes=self.batch_overhead_bytes,
            measured_bandwidth=measured,
        )

    def throttled(self, bandwidth: float) -> "DdrDram":
        """A copy whose bandwidth is capped, as in the paper's SSD emulation.

        §VI-E: "We throttled the DRAM throughput to that of modern SSD
        Flash (8 GB/s)".
        """
        if bandwidth <= 0:
            raise MemoryModelError(f"throttle bandwidth must be positive, got {bandwidth}")
        if bandwidth > self.peak_bandwidth:
            raise MemoryModelError(
                "throttling cannot raise bandwidth above peak "
                f"({bandwidth} > {self.peak_bandwidth})"
            )
        return DdrDram(
            name=f"{self.name}@{bandwidth / GB:g}GB/s",
            capacity_bytes=self.capacity_bytes,
            peak_bandwidth=bandwidth,
            duplex=self.duplex,
            banks=self.banks,
            batch_overhead_bytes=self.batch_overhead_bytes,
            measured_bandwidth=None,
        )
