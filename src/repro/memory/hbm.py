"""High-bandwidth memory model (§IV-B, §VI-D).

"Intel and Xilinx announced a release of a high-bandwidth memory (HBM) for
FPGAs that is expected to achieve up to 512 GB/s bandwidth and has a
capacity of up to 16 GB."  The Alveo U50 tile the paper discusses
"incorporates 32 DDR4 memory banks, with each bank providing up to 8 GB/s
read/write bandwidth" (§VI-D).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.base import MemoryModel
from repro.units import GB


@dataclass(frozen=True)
class Hbm(MemoryModel):
    """32-bank HBM tile as on the Xilinx Alveo U50."""

    name: str = "HBM2"
    capacity_bytes: int = 16 * GB
    peak_bandwidth: float = 256 * GB
    duplex: bool = True
    banks: int = 32
    measured_bandwidth: float | None = None

    @classmethod
    def projected_512(cls) -> "Hbm":
        """The 512 GB/s projection the paper's §IV-B analysis uses."""
        return cls(name="HBM2-512", peak_bandwidth=512 * GB)
