"""Two-tier memory hierarchy (DRAM + SSD) for terabyte-scale sorting.

"The key insight for such two-level hierarchies is that the sorting
procedure should be divided into two distinct phases, with each phase
using a different AMT configuration" (§IV-C).  The hierarchy object
answers the questions the SSD planner asks: what fits where, what each
tier's pass costs, and where a given input must initially live.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MemoryModelError
from repro.memory.base import MemoryModel
from repro.memory.dram import DdrDram
from repro.memory.ssd import Ssd


@dataclass(frozen=True)
class TwoTierHierarchy:
    """A fast small tier (DRAM) backed by a large slow tier (SSD)."""

    fast: MemoryModel = field(default_factory=DdrDram)
    slow: MemoryModel = field(default_factory=Ssd)

    def __post_init__(self) -> None:
        if self.fast.capacity_bytes >= self.slow.capacity_bytes:
            raise MemoryModelError(
                "two-tier hierarchy expects the slow tier to be larger: "
                f"{self.fast.name} {self.fast.capacity_bytes} >= "
                f"{self.slow.name} {self.slow.capacity_bytes}"
            )

    @property
    def io_bandwidth(self) -> float:
        """``beta_I/O``: the bus feeding data between tiers and to the host."""
        return self.slow.bandwidth

    def home_tier(self, n_bytes: float) -> MemoryModel:
        """The tier where an input array initially resides."""
        if self.fast.fits(n_bytes):
            return self.fast
        if self.slow.fits(n_bytes):
            return self.slow
        raise MemoryModelError(
            f"{n_bytes:.3g}-byte array exceeds even the slow tier "
            f"({self.slow.name}, {self.slow.capacity_bytes:.3g} bytes); "
            "raise the capacity or model an external/distributed store"
        )

    def requires_two_phase(self, n_bytes: float) -> bool:
        """True when the input cannot be sorted entirely inside DRAM."""
        return not self.fast.fits(n_bytes)
