"""SSD / flash model behind an I/O bus (§IV-C).

The paper's terabyte-scale analysis assumes "a 2 TB SSD with 8 GB/s I/O
bandwidth".  SSD traffic always crosses the I/O bus (``beta_I/O`` in
Table II), which is the scarce resource AMT pipelining exists to keep
busy (§III-A3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.base import MemoryModel
from repro.units import GB, TB


@dataclass(frozen=True)
class Ssd(MemoryModel):
    """NVMe SSD/flash array reachable over the I/O bus.

    ``duplex`` defaults to True: the F1 I/O fabric can sustain reads of
    unsorted input and writes of sorted runs concurrently, which is what
    lets each SSD "round trip" cost one pass rather than two (§IV-C sizes
    phase timings this way: 2 TB per phase at 8 GB/s = 256 s).
    """

    name: str = "NVMe-SSD"
    #: The paper's "2 TB SSD" must hold 256 runs of 8 GB (§IV-C), i.e.
    #: 2048 decimal GB; we size the device to that convention.
    capacity_bytes: int = 2048 * GB
    peak_bandwidth: float = 8 * GB
    duplex: bool = True
    banks: int = 1
    #: flash pages are large; model a coarser per-burst overhead
    batch_overhead_bytes: int = 256
    measured_bandwidth: float | None = None
