"""Byte-traffic accounting.

Bandwidth-efficiency — "the ratio of the throughput of the sorter to the
available bandwidth of off-chip memory" (§VI-C2) — needs an accurate count
of how many bytes actually moved.  Both the cycle simulator and the timed
engine report their traffic through a :class:`TrafficMeter`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MemoryModelError


@dataclass
class TrafficMeter:
    """Accumulates read/write byte counts per device."""

    reads: dict[str, int] = field(default_factory=dict)
    writes: dict[str, int] = field(default_factory=dict)

    def record_read(self, device: str, n_bytes: int) -> None:
        """Account ``n_bytes`` read from ``device``."""
        self._check(n_bytes)
        self.reads[device] = self.reads.get(device, 0) + n_bytes

    def record_write(self, device: str, n_bytes: int) -> None:
        """Account ``n_bytes`` written to ``device``."""
        self._check(n_bytes)
        self.writes[device] = self.writes.get(device, 0) + n_bytes

    @staticmethod
    def _check(n_bytes: int) -> None:
        if n_bytes < 0:
            raise MemoryModelError(f"traffic bytes must be >= 0, got {n_bytes}")

    def bytes_read(self, device: str | None = None) -> int:
        """Total bytes read, optionally restricted to one device."""
        if device is not None:
            return self.reads.get(device, 0)
        return sum(self.reads.values())

    def bytes_written(self, device: str | None = None) -> int:
        """Total bytes written, optionally restricted to one device."""
        if device is not None:
            return self.writes.get(device, 0)
        return sum(self.writes.values())

    def total_bytes(self, device: str | None = None) -> int:
        """Reads plus writes."""
        return self.bytes_read(device) + self.bytes_written(device)

    def achieved_bandwidth(self, elapsed_seconds: float, device: str | None = None) -> float:
        """Average duplex bandwidth over an interval (max of directions).

        For duplex memories the paper quotes per-direction rates, so we
        report the larger of the two directions' average rates.
        """
        if elapsed_seconds <= 0:
            raise MemoryModelError(
                f"elapsed time must be positive, got {elapsed_seconds}"
            )
        per_direction = max(self.bytes_read(device), self.bytes_written(device))
        return per_direction / elapsed_seconds

    def merge(self, other: "TrafficMeter") -> None:
        """Fold another meter's counts into this one."""
        for device, count in other.reads.items():
            self.record_read(device, count)
        for device, count in other.writes.items():
            self.record_write(device, count)
