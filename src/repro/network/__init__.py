"""Sorting-network substrate.

Hardware mergers are built from bitonic half-mergers (§I-A); this package
models those networks at the combinational level:

* :mod:`repro.network.compare_exchange` — compare-and-exchange elements and
  generic staged networks with size/depth accounting.
* :mod:`repro.network.bitonic` — bitonic sorting networks (Batcher).
* :mod:`repro.network.halfmerger` — the 2k-record bitonic half-merger that
  merges two sorted k-tuples per cycle with latency ``log k``.
* :mod:`repro.network.presorter` — the 16-record bitonic presorter that
  removes one merge stage (§VI-C, Table IV).
* :mod:`repro.network.costs` — operation/latency cost accounting used by the
  resource model's asymptotic checks.
"""

from repro.network.compare_exchange import CompareExchange, Network, NetworkStage
from repro.network.bitonic import (
    bitonic_sort_network,
    bitonic_merge_network,
    apply_network,
)
from repro.network.halfmerger import BitonicHalfMerger
from repro.network.presorter import Presorter
from repro.network.costs import network_costs, NetworkCosts

__all__ = [
    "CompareExchange",
    "Network",
    "NetworkStage",
    "bitonic_sort_network",
    "bitonic_merge_network",
    "apply_network",
    "BitonicHalfMerger",
    "Presorter",
    "network_costs",
    "NetworkCosts",
]
