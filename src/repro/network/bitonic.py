"""Bitonic sorting and merging networks (Batcher 1968).

The merge tree's datapath is built from bitonic half-mergers; this module
constructs the underlying networks as explicit :class:`~repro.network
.compare_exchange.Network` objects so their size and depth can be audited
against the paper's ``k log k`` / ``log k`` claims (§I-A).

Constructions follow Batcher's recursive definition specialised to
power-of-two widths (the only widths hardware mergers use).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from repro.errors import ConfigurationError
from repro.network.compare_exchange import Network, stages_from_pairs
from repro.units import is_power_of_two, log2_int


@lru_cache(maxsize=None)
def bitonic_merge_network(width: int) -> Network:
    """Network that sorts any *bitonic* sequence of ``width`` records.

    A bitonic sequence first increases then decreases (or is a cyclic
    rotation of such).  The network has ``log2(width)`` stages of
    ``width / 2`` compare-exchange elements each — the "log k steps, k
    compare-and-exchange operations" structure the paper describes.
    """
    if not is_power_of_two(width):
        raise ConfigurationError(f"bitonic networks need power-of-two width, got {width}")
    stage_pairs = []
    gap = width // 2
    while gap >= 1:
        pairs = []
        for start in range(0, width, 2 * gap):
            for offset in range(gap):
                pairs.append((start + offset, start + offset + gap))
        stage_pairs.append(pairs)
        gap //= 2
    return stages_from_pairs(width, stage_pairs)


@lru_cache(maxsize=None)
def bitonic_sort_network(width: int) -> Network:
    """Full bitonic sorting network for arbitrary input of ``width`` records.

    Used by the presorter (§VI-C).  Depth is ``log k (log k + 1) / 2``
    stages; size is ``k/2`` elements per stage.
    """
    if not is_power_of_two(width):
        raise ConfigurationError(f"bitonic networks need power-of-two width, got {width}")
    stage_pairs: list[list[tuple[int, int]]] = []
    levels = log2_int(width)
    for level in range(1, levels + 1):
        block = 1 << level
        # First stage of each level: the "reversal" comparisons that turn
        # adjacent sorted runs into a bitonic sequence.
        pairs = []
        for start in range(0, width, block):
            for offset in range(block // 2):
                pairs.append((start + offset, start + block - 1 - offset))
        stage_pairs.append(pairs)
        # Remaining stages: standard bitonic merge within each block.
        gap = block // 4
        while gap >= 1:
            pairs = []
            for start in range(0, width, 2 * gap):
                for offset in range(gap):
                    pairs.append((start + offset, start + offset + gap))
            stage_pairs.append(pairs)
            gap //= 2
    return stages_from_pairs(width, stage_pairs)


def apply_network(network: Network, values: Sequence) -> list:
    """Convenience wrapper: run ``network`` on ``values`` and return a list."""
    return network.apply(values)


def merge_sorted_pair(left: Sequence, right: Sequence) -> list:
    """Merge two sorted k-sequences through a 2k bitonic merge network.

    The hardware feeds the second sequence reversed, turning the
    concatenation into a bitonic sequence the merge network can sort.
    This is the combinational core of the half-merger.
    """
    if len(left) != len(right):
        raise ConfigurationError(
            f"half-merger inputs must have equal width, got {len(left)} and "
            f"{len(right)}"
        )
    width = 2 * len(left)
    network = bitonic_merge_network(width)
    bitonic_input = list(left) + list(reversed(list(right)))
    return network.apply(bitonic_input)
