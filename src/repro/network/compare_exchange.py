"""Compare-and-exchange elements and staged combinational networks.

A sorting/merging network is a sequence of *stages*; each stage is a set of
:class:`CompareExchange` elements operating on disjoint wire pairs, so all
elements of a stage execute in the same clock cycle when pipelined.  The
paper's resource argument (§I-A: a 2k-record half-merger has ``log k``
steps of ``k`` compare-and-exchange operations, hence ``k log k`` logic and
latency ``log k``) maps directly onto :attr:`Network.size` and
:attr:`Network.depth`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CompareExchange:
    """A single compare-and-exchange element between wires ``low`` and ``high``.

    After the element fires, the smaller record is on wire ``low`` and the
    larger on wire ``high`` (ascending order).
    """

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < 0:
            raise ConfigurationError("wire indices must be non-negative")
        if self.low == self.high:
            raise ConfigurationError(
                f"compare-exchange wires must differ, got {self.low} twice"
            )
        if self.low > self.high:
            # Normalise so `low < high`; ascending networks only.
            low, high = self.high, self.low
            object.__setattr__(self, "low", low)
            object.__setattr__(self, "high", high)


@dataclass(frozen=True)
class NetworkStage:
    """One clock cycle's worth of parallel compare-exchange elements."""

    elements: tuple[CompareExchange, ...]

    def __post_init__(self) -> None:
        touched: set[int] = set()
        for element in self.elements:
            if element.low in touched or element.high in touched:
                raise ConfigurationError(
                    "stage elements must touch disjoint wires; wire "
                    f"{element.low if element.low in touched else element.high} "
                    "is used twice"
                )
            touched.add(element.low)
            touched.add(element.high)

    def __len__(self) -> int:
        return len(self.elements)


@dataclass(frozen=True)
class Network:
    """A staged combinational network over ``width`` wires."""

    width: int
    stages: tuple[NetworkStage, ...]

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ConfigurationError(f"network width must be positive, got {self.width}")
        for stage in self.stages:
            for element in stage.elements:
                if element.high >= self.width:
                    raise ConfigurationError(
                        f"element touches wire {element.high} outside width "
                        f"{self.width}"
                    )

    @property
    def depth(self) -> int:
        """Pipeline latency in cycles (number of stages)."""
        return len(self.stages)

    @property
    def size(self) -> int:
        """Total number of compare-and-exchange elements (logic cost)."""
        return sum(len(stage) for stage in self.stages)

    def apply(self, values: Sequence) -> list:
        """Run the network on a list of comparable values.

        Returns a new list; the input is not modified.  Comparison uses
        ``<`` only, so any totally ordered record type works.
        """
        if len(values) != self.width:
            raise ConfigurationError(
                f"network of width {self.width} applied to {len(values)} values"
            )
        wires = list(values)
        for stage in self.stages:
            for element in stage.elements:
                low_value = wires[element.low]
                high_value = wires[element.high]
                if high_value < low_value:
                    wires[element.low] = high_value
                    wires[element.high] = low_value
        return wires


def stages_from_pairs(
    width: int, stage_pairs: Iterable[Iterable[tuple[int, int]]]
) -> Network:
    """Build a :class:`Network` from an iterable of stages of wire pairs."""
    stages = tuple(
        NetworkStage(tuple(CompareExchange(low, high) for low, high in pairs))
        for pairs in stage_pairs
    )
    return Network(width=width, stages=stages)
