"""Cost accounting for combinational networks.

Provides the asymptotic-sanity layer between the constructed networks and
the resource model: the paper argues the logic of a 2k-merger is dominated
by its two bitonic half-mergers and is therefore Theta(k log k) (§I-A).
These helpers expose exact element counts so tests can verify the claim
numerically, and so ablation benches can compare "paper Table VI LUTs"
against "pure CAS-count scaling".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.bitonic import bitonic_merge_network, bitonic_sort_network
from repro.network.compare_exchange import Network


@dataclass(frozen=True)
class NetworkCosts:
    """Size/depth summary of a combinational network."""

    width: int
    size: int
    depth: int

    @property
    def elements_per_stage(self) -> float:
        """Average compare-exchange elements per pipeline stage."""
        return self.size / self.depth if self.depth else 0.0


def network_costs(network: Network) -> NetworkCosts:
    """Summarise an already-built network."""
    return NetworkCosts(width=network.width, size=network.size, depth=network.depth)


def merge_network_costs(width: int) -> NetworkCosts:
    """Costs of the bitonic merge network of ``width`` records."""
    return network_costs(bitonic_merge_network(width))


def sort_network_costs(width: int) -> NetworkCosts:
    """Costs of the full bitonic sorting network of ``width`` records."""
    return network_costs(bitonic_sort_network(width))


def merger_cas_count(k: int) -> int:
    """Compare-and-exchange elements in a k-merger datapath.

    A k-merger pipelines two 2k-record bitonic half-mergers (§I-A), so its
    CAS count is twice the 2k merge network's.  Used only for asymptotic
    checks and LUT-per-CAS ablations; the resource model proper uses the
    paper's measured Table VI numbers.
    """
    if k == 1:
        # A 1-merger is a plain two-input compare-and-select element.
        return 1
    return 2 * merge_network_costs(2 * k).size


def merger_latency_cycles(k: int) -> int:
    """Pipeline latency of a k-merger in cycles (two half-mergers deep)."""
    if k == 1:
        return 1
    return 2 * merge_network_costs(2 * k).depth
