"""FLiMS-style batched merge kernels with selectable backends.

FLiMS (arXiv 2112.05607) merges two sorted ``k``-sequences with a
single rank of pairwise min/max units — element ``i`` of A against
element ``k-1-i`` of B — followed by an independent clean-up of each
half: concatenating A with reversed B forms a bitonic sequence, so
after the butterfly exchange every element of the lower half is ≤
every element of the upper half, and each half sorts independently.
That structure is exactly what vectorizes: the whole exchange is two
``np.minimum``/``np.maximum`` calls and the clean-up two ``np.sort``
calls, regardless of ``k``.

This module hosts the simulator's merge kernels behind one backend
switch:

* ``python`` — scalar kernels (the native ``sorted``/two-pointer
  merges).  Always available; for integer keys their output is the
  sorted permutation of the inputs, which is also exactly what the
  bitonic network computes, so the backends are interchangeable bit
  for bit (``tests/network/test_flims.py`` pins this across seeds,
  widths, duplicates and sentinel padding).
* ``numpy`` — the vectorized FLiMS kernels.  Worthwhile for wide
  tuples and whole-run merges; for the narrow per-cycle tuples of a
  small ``k``-merger the per-call array-conversion overhead exceeds
  the comparator work, which is why ``auto`` keeps those scalar.
* ``auto`` (default) — ``python`` below :data:`NUMPY_WIDTH_THRESHOLD`
  records per call, ``numpy`` at or above it; degrades to ``python``
  everywhere when numpy is unavailable.

The backend is chosen at import from ``BONSAI_MERGE_BACKEND`` and can
be overridden per run via ``--merge-backend`` on the CLI (which calls
:func:`set_backend`).  Requesting ``numpy`` without numpy installed
raises :class:`~repro.errors.ConfigurationError` up front rather than
silently degrading.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Iterator, Sequence

from repro.errors import ConfigurationError

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]

BACKENDS = ("auto", "numpy", "python")

#: Minimum records per call (both sides combined) before the ``auto``
#: backend switches a kernel from scalar to numpy.  Below this the
#: fixed cost of building/converting arrays exceeds the comparator
#: work; per-cycle tuples of the hardware model (2k ≤ 64 for the
#: paper's mergers) stay scalar, whole-run merges go vectorized.
NUMPY_WIDTH_THRESHOLD = 512

_backend = "auto"


def _coerce(name: str) -> str:
    if name not in BACKENDS:
        raise ConfigurationError(
            f"unknown merge backend {name!r}; expected one of {BACKENDS}"
        )
    if name == "numpy" and _np is None:
        raise ConfigurationError(
            "merge backend 'numpy' requested but numpy is not importable"
        )
    return name


def set_backend(name: str) -> None:
    """Select the merge-kernel backend (``auto``/``numpy``/``python``)."""
    # bonsai-lint: disable=proc-global-write -- backend choice flows parent->worker only (fork inherits it; spawn re-reads BONSAI_MERGE_BACKEND at import) and both backends are bit-identical, so worker-local rebinds can never leak state the parent needs back
    global _backend
    _backend = _coerce(name)


def get_backend() -> str:
    """The currently selected backend name (as requested, pre-``auto``)."""
    return _backend


def available_backends() -> tuple[str, ...]:
    """The backend names selectable on this host (bench identity gates
    iterate these to cross-check kernels without tripping the
    numpy-missing :class:`~repro.errors.ConfigurationError`)."""
    return BACKENDS if _np is not None else ("auto", "python")


def use_numpy(width: int) -> bool:
    """True when a kernel over ``width`` records should use numpy.

    For kernels whose operands are native tuples/lists: the ``auto``
    backend weighs the per-call conversion cost against the comparator
    work via :data:`NUMPY_WIDTH_THRESHOLD`.
    """
    if _backend == "python" or _np is None:
        return False
    if _backend == "numpy":
        return True
    return width >= NUMPY_WIDTH_THRESHOLD


def use_numpy_arrays() -> bool:
    """True when kernels over *numpy operands* should stay vectorized.

    Array inputs carry no conversion cost into the numpy path (and a
    real ``tolist`` cost out of it), so ``auto`` always vectorizes
    them; only a forced ``python`` backend — or numpy being absent —
    selects the scalar route.
    """
    return _np is not None and _backend != "python"


@contextmanager
def forced_backend(name: str) -> Iterator[None]:
    """Temporarily pin the backend (bench identity gates, tests)."""
    previous = _backend
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


# Honour the environment at import so subprocess workers and plain
# `python -m` entry points inherit the session's choice without CLI
# plumbing.
_env_choice = os.environ.get("BONSAI_MERGE_BACKEND", "").strip().lower()
if _env_choice:
    set_backend(_env_choice)


# ----------------------------------------------------------------------
# Tuple kernel: the k-merger datapath (two sorted k-tuples -> 2k)
# ----------------------------------------------------------------------
def _merge_halves_python(left: tuple, right: tuple, k: int) -> tuple[tuple, tuple]:
    """Scalar 2k merge: native sort of the concatenation (Timsort's
    galloping merge of two sorted runs), split into lower/upper k."""
    merged = sorted(left + right)
    return tuple(merged[:k]), tuple(merged[k:])


def _merge_halves_numpy(left: tuple, right: tuple, k: int) -> tuple[tuple, tuple]:
    """FLiMS 2k merge: one butterfly exchange, then sort each half.

    ``A + reversed(B)`` is bitonic, so ``min(A[i], B[k-1-i])`` collects
    the k smallest records and ``max`` the k largest; each half then
    sorts independently.  For integer keys this equals the scalar
    kernel's output exactly.  ``tolist()`` converts back to native
    ints so downstream comparisons and digests see identical objects.
    """
    a = _np.asarray(left, dtype=_np.uint64)
    b = _np.asarray(right, dtype=_np.uint64)[::-1]
    lower = _np.sort(_np.minimum(a, b))
    upper = _np.sort(_np.maximum(a, b))
    return tuple(lower.tolist()), tuple(upper.tolist())


def tuple_merge_kernel(k: int) -> Callable[[tuple, tuple], tuple[tuple, tuple]]:
    """Bind the (lower, upper) 2k-tuple merge kernel for width ``k``.

    Resolved once per merger construction so the per-cycle datapath
    carries no backend dispatch; ``k == 1`` degenerates to a single
    compare-exchange in either backend.
    """
    if k == 1:
        def compare_swap(left: tuple, right: tuple) -> tuple[tuple, tuple]:
            if right[0] < left[0]:
                return right, left
            return left, right

        return compare_swap
    if use_numpy(2 * k):
        def numpy_kernel(left: tuple, right: tuple) -> tuple[tuple, tuple]:
            return _merge_halves_numpy(left, right, k)

        return numpy_kernel

    def python_kernel(left: tuple, right: tuple) -> tuple[tuple, tuple]:
        return _merge_halves_python(left, right, k)

    return python_kernel


# ----------------------------------------------------------------------
# Run kernel: whole sorted runs in one call (model-mode merge stages)
# ----------------------------------------------------------------------
def merge_runs_python(left: Sequence[int], right: Sequence[int]) -> list[int]:
    """Stable scalar merge of two sorted runs (left wins ties)."""
    out: list[int] = []
    append = out.append
    i = j = 0
    n_left = len(left)
    n_right = len(right)
    while i < n_left and j < n_right:
        a = left[i]
        b = right[j]
        if b < a:
            append(b)
            j += 1
        else:
            append(a)
            i += 1
    if i < n_left:
        out.extend(left[i:])
    else:
        out.extend(right[j:])
    return out
