"""The 2k-record bitonic half-merger (§I-A).

"A 2k-record bitonic half-merger is a fully-pipelined network that merges
two k-record sorted arrays per cycle.  The network is made up of log k
steps.  In each step, k compare-and-exchange operations are executed in
parallel. Thus, the bitonic half-merger merges with latency log k and
requires k log k logic units."

Note the counts: a *half*-merger of 2k records uses the ``log(2k) - 1``…
``log k``-stage tail of the bitonic merge network, because the k-merger
feeding it guarantees its input is already pairwise interleaved.  We model
the half-merger as the full 2k bitonic merge network but report the
paper's cost accounting (``k log k`` elements over ``log k`` stages) via
:attr:`BitonicHalfMerger.paper_size` / :attr:`paper_depth`, and the exact
constructed network's counts via :attr:`size` / :attr:`depth`.  Both are
exercised in tests; the resource model uses measured component LUTs from
the paper's Table VI, not these counts, so the distinction only matters
for asymptotic sanity checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigurationError
from repro.network.bitonic import bitonic_merge_network
from repro.network.compare_exchange import Network
from repro.units import is_power_of_two, log2_int


@dataclass
class BitonicHalfMerger:
    """Merges two sorted ``k``-record tuples into one sorted ``2k`` tuple.

    The object is stateless between calls; pipelining (one result per
    cycle, latency ``depth``) is accounted for by the cycle-level merger
    model in :mod:`repro.hw.merger`.
    """

    k: int
    _network: Network = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.k):
            raise ConfigurationError(f"half-merger k must be a power of two, got {self.k}")
        self._network = bitonic_merge_network(2 * self.k)

    @property
    def width(self) -> int:
        """Total records processed per invocation (2k)."""
        return 2 * self.k

    @property
    def depth(self) -> int:
        """Constructed network latency in cycles (= log2(2k))."""
        return self._network.depth

    @property
    def size(self) -> int:
        """Constructed network compare-exchange count (= k * log2(2k))."""
        return self._network.size

    @property
    def paper_depth(self) -> int:
        """Latency quoted by the paper: ``log k`` (for k > 1, else 1)."""
        return max(1, log2_int(self.k))

    @property
    def paper_size(self) -> int:
        """Logic units quoted by the paper: ``k log k`` (for k > 1, else 1)."""
        return max(1, self.k * log2_int(self.k)) if self.k > 1 else 1

    def merge(self, left: Sequence, right: Sequence) -> list:
        """Merge two sorted k-tuples; returns a sorted 2k list.

        ``right`` is reversed internally so the concatenation is bitonic.
        Raises :class:`ConfigurationError` for mis-sized inputs.
        """
        if len(left) != self.k or len(right) != self.k:
            raise ConfigurationError(
                f"{self.k}-half-merger fed tuples of size {len(left)} and "
                f"{len(right)}"
            )
        bitonic_input = list(left) + list(reversed(list(right)))
        return self._network.apply(bitonic_input)
