"""The bitonic presorter (§VI-C, Table IV).

"We use a 16-record bitonic network to presort the data into 16-record
subsequences before the first merge stage.  This reduces the total number
of stages by one, and the total execution time by 10-20%."

The presorter is a fully pipelined bitonic sorting network that consumes
one ``run_length``-record tuple per cycle and emits it sorted.  It sits
between the unpacker and the first merge stage (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.errors import ConfigurationError
from repro.network.bitonic import bitonic_sort_network
from repro.network.compare_exchange import Network
from repro.units import is_power_of_two

#: Run length used by the paper's DRAM sorter.
DEFAULT_RUN_LENGTH = 16


@dataclass
class Presorter:
    """Sorts fixed-length record tuples with a bitonic network.

    Parameters
    ----------
    run_length:
        Records per presorted run; must be a power of two.  The paper's
        implementation uses 16.
    """

    run_length: int = DEFAULT_RUN_LENGTH
    _network: Network = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.run_length):
            raise ConfigurationError(
                f"presorter run length must be a power of two, got {self.run_length}"
            )
        self._network = bitonic_sort_network(self.run_length)

    @property
    def depth(self) -> int:
        """Pipeline latency in cycles."""
        return self._network.depth

    @property
    def size(self) -> int:
        """Compare-exchange element count."""
        return self._network.size

    def sort_run(self, run: Sequence) -> list:
        """Sort one tuple of exactly ``run_length`` records."""
        if len(run) != self.run_length:
            raise ConfigurationError(
                f"presorter of width {self.run_length} fed {len(run)} records"
            )
        return self._network.apply(run)

    def presort(self, records: Iterable) -> Iterator[list]:
        """Stream records through the presorter, yielding sorted runs.

        The trailing partial run (when the input length is not a multiple
        of ``run_length``) is sorted as-is without padding, mirroring the
        data loader's handling of array tails.
        """
        buffer: list = []
        for record in records:
            buffer.append(record)
            if len(buffer) == self.run_length:
                yield self.sort_run(buffer)
                buffer = []
        if buffer:
            yield sorted(buffer)
