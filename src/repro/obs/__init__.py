"""Unified observability: metrics, spans, sinks, manifests.

The subsystem is zero-dependency and off by default: instrumented code
reads the process-wide :func:`~repro.obs.runtime.observation` handle,
which is a no-op bundle until a CLI ``--trace``/``--metrics`` session
(or a test) installs a live one.  See ``docs/observability.md`` for the
tour.

:mod:`repro.obs.report` (the trace renderer) is intentionally not
imported here — it pulls the analysis table renderer, which the hot
instrumentation path never needs.
"""

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    config_digest,
    git_revision,
    write_manifest,
)
from repro.obs.metrics import (
    SNAPSHOT_SCHEMA,
    MetricsRegistry,
    NullRegistry,
    diff_counters,
)
from repro.obs.runtime import (
    DISABLED,
    Observation,
    ObsTaskContext,
    absorb,
    activated,
    install,
    live_observation,
    observation,
    session,
    task_context,
    worker_observation,
    worker_payload,
)
from repro.obs.sink import JsonlSink, MemorySink, read_jsonl
from repro.obs.spans import NullTracer, Span, Tracer

__all__ = [
    "MANIFEST_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "DISABLED",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "ObsTaskContext",
    "Observation",
    "Span",
    "Tracer",
    "absorb",
    "activated",
    "build_manifest",
    "config_digest",
    "diff_counters",
    "git_revision",
    "install",
    "live_observation",
    "observation",
    "read_jsonl",
    "session",
    "task_context",
    "worker_observation",
    "worker_payload",
    "write_manifest",
]
