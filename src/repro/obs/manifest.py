# bonsai-lint: disable-file=determinism -- a run manifest exists to record
# *this* run's wall-clock timestamp and host; it is provenance metadata,
# never an input to models or simulation.
"""Run manifests: the provenance record CI archives next to every trace.

A manifest answers "what exactly produced this result?": the resolved
configuration (and its digest, so two runs are comparable by one string
equality), the seed, the CLI argument vector, the host, the package
version, and the git revision.  It is a plain JSON document with a
schema tag so downstream tooling can reject manifests it does not
understand.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
import time
from pathlib import Path

MANIFEST_SCHEMA = "bonsai-manifest/v1"


def config_digest(config: object) -> str:
    """Stable sha256 over the canonical JSON form of ``config``.

    Accepts anything JSON-serialisable (non-serialisable leaves are
    stringified), so dataclass ``asdict`` outputs and argparse
    namespaces digest alike.
    """
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def git_revision(repo_root: str | Path | None = None) -> str | None:
    """The checked-out commit sha, read from ``.git`` without subprocess.

    Walks up from ``repo_root`` (default: this file's location) to find
    a ``.git`` directory, resolves ``HEAD`` through one level of ref
    indirection (covering detached heads and packed refs).  Returns
    ``None`` when no repository is found — manifests must work from an
    installed wheel too.
    """
    start = Path(repo_root) if repo_root is not None else Path(__file__)
    for candidate in [start, *start.parents]:
        git_dir = candidate / ".git"
        if git_dir.is_dir():
            break
    else:
        return None
    try:
        head = (git_dir / "HEAD").read_text().strip()
    except OSError:
        return None
    if not head.startswith("ref:"):
        return head or None
    ref = head.split(None, 1)[1].strip()
    ref_file = git_dir / ref
    try:
        if ref_file.is_file():
            return ref_file.read_text().strip() or None
        packed = git_dir / "packed-refs"
        if packed.is_file():
            for line in packed.read_text().splitlines():
                line = line.strip()
                if line.startswith(("#", "^")) or not line:
                    continue
                sha, _, name = line.partition(" ")
                if name == ref:
                    return sha
    except OSError:
        return None
    return None


def _package_version() -> str | None:
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - 3.10+ always has it
        return None
    try:
        return version("repro")
    except PackageNotFoundError:
        return None


def build_manifest(
    command: str,
    config: object = None,
    seed: int | None = None,
    argv: list[str] | None = None,
    extra: dict | None = None,
) -> dict:
    """Assemble the manifest document for one run."""
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "command": command,
        "created_unix": round(time.time(), 3),
        "argv": list(sys.argv if argv is None else argv),
        "seed": seed,
        "config": config,
        "config_digest": config_digest(config) if config is not None else None,
        "git_revision": git_revision(),
        "package_version": _package_version(),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "hostname": platform.node(),
        },
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(path: str | Path, manifest: dict) -> dict:
    """Write ``manifest`` as indented JSON to ``path`` and return it."""
    Path(path).write_text(
        json.dumps(manifest, indent=2, sort_keys=True, default=str) + "\n"
    )
    return manifest
