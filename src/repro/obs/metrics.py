"""The metrics registry: counters, gauges and histograms with labels.

One registry holds every numeric observation of a run — engine record
and byte counters, optimizer memo hits, simulator cycle totals — as
labelled series.  The design contract, shared with the span tracer, is
that *deterministic* metrics (records, bytes, memo accounting) are equal
for equal computations regardless of how the work was executed: the
parallel layer merges worker snapshots back into the parent registry and
``tests/obs`` pins serial-vs-sharded equality.

Everything here is pure bookkeeping: no clocks, no randomness, no I/O
except the explicit :meth:`MetricsRegistry.write` helper.  The disabled
path is :class:`NullRegistry`, whose methods are empty — instrumented
code pays one attribute load and one no-op call per observation.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Iterable, Mapping

from repro.errors import ObservabilityError
from repro.units import GB, KB, MB

#: Histogram bucket upper bounds (decades; the last implicit bucket is
#: +inf).  Chosen wide so one scheme serves span durations, cycle
#: counts and byte sizes alike — the upper decades reuse the byte-unit
#: constants because byte-valued series are their main tenant.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
    float(KB), float(MB), float(GB),
)

#: Snapshot schema tag; bump when the JSON layout changes.
SNAPSHOT_SCHEMA = "bonsai-metrics/v1"


def _series_key(name: str, labels: Mapping[str, object]) -> tuple:
    """Canonical series key: name plus sorted ``(label, value)`` pairs."""
    if not labels:
        return (name,)
    return (name,) + tuple(sorted((k, str(v)) for k, v in labels.items()))


def _key_to_json(key: tuple) -> dict:
    return {"name": key[0], "labels": {k: v for k, v in key[1:]}}


class _Histogram:
    """Count/sum/min/max plus fixed-bound bucket counts."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.buckets = [0] * (len(DEFAULT_BUCKETS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for index, bound in enumerate(DEFAULT_BUCKETS):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def to_json(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": list(self.buckets),
        }

    def merge_json(self, payload: Mapping) -> None:
        self.count += int(payload["count"])
        self.total += float(payload["sum"])
        for bound in ("min", "max"):
            value = payload.get(bound)
            if value is None:
                continue
            current = getattr(self, bound)
            picked = value if current is None else (
                min(current, value) if bound == "min" else max(current, value)
            )
            setattr(self, bound, picked)
        incoming = list(payload.get("buckets", ()))
        if len(incoming) != len(self.buckets):
            raise ObservabilityError(
                f"histogram bucket count mismatch: {len(incoming)} vs "
                f"{len(self.buckets)} (snapshot from another schema?)"
            )
        self.buckets = [a + b for a, b in zip(self.buckets, incoming)]


class MetricsRegistry:
    """Thread-safe labelled metric store.

    ``count`` accumulates, ``gauge`` overwrites (last write wins, which
    merge preserves by applying snapshots in arrival order), ``observe``
    feeds a histogram.  ``total_updates`` counts every mutating call —
    the perf-smoke suite multiplies it by the measured no-op call cost
    to bound what instrumentation *could* add to an uninstrumented run.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple, float] = {}
        self._gauges: dict[tuple, float] = {}
        self._histograms: dict[tuple, _Histogram] = {}
        self.total_updates = 0

    # ------------------------------------------------------------------
    def count(self, name: str, value: float = 1, **labels: object) -> None:
        """Add ``value`` to the counter series ``name`` + ``labels``."""
        key = _series_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value
            self.total_updates += 1

    def gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge series to ``value`` (last write wins)."""
        key = _series_key(name, labels)
        with self._lock:
            self._gauges[key] = value
            self.total_updates += 1

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record one histogram observation."""
        key = _series_key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = _Histogram()
            histogram.observe(value)
            self.total_updates += 1

    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels: object) -> float:
        """Current value of one counter series (0 when never written)."""
        return self._counters.get(_series_key(name, labels), 0)

    def counter_total(self, name: str) -> float:
        """Sum of one counter across all of its label series."""
        return sum(
            value for key, value in self._counters.items() if key[0] == name
        )

    def counters(self, prefix: str = "") -> dict[tuple, float]:
        """Copy of the counter series, optionally name-filtered."""
        with self._lock:
            return {
                key: value
                for key, value in self._counters.items()
                if key[0].startswith(prefix)
            }

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able copy of every series, deterministically ordered."""
        with self._lock:
            return {
                "schema": SNAPSHOT_SCHEMA,
                "counters": [
                    {**_key_to_json(key), "value": value}
                    for key, value in sorted(self._counters.items())
                ],
                "gauges": [
                    {**_key_to_json(key), "value": value}
                    for key, value in sorted(self._gauges.items())
                ],
                "histograms": [
                    {**_key_to_json(key), **histogram.to_json()}
                    for key, histogram in sorted(self._histograms.items())
                ],
            }

    def merge(self, snapshot: Mapping) -> None:
        """Fold a :meth:`snapshot` payload into this registry.

        Counters and histograms accumulate; gauges take the snapshot's
        value.  Used by the parallel layer to land worker-process
        metrics in the parent registry.
        """
        schema = snapshot.get("schema")
        if schema != SNAPSHOT_SCHEMA:
            raise ObservabilityError(
                f"cannot merge metrics snapshot with schema {schema!r}; "
                f"expected {SNAPSHOT_SCHEMA!r}"
            )
        for entry in snapshot.get("counters", ()):
            self.count(entry["name"], entry["value"], **entry.get("labels", {}))
        for entry in snapshot.get("gauges", ()):
            self.gauge(entry["name"], entry["value"], **entry.get("labels", {}))
        for entry in snapshot.get("histograms", ()):
            key = _series_key(entry["name"], entry.get("labels", {}))
            with self._lock:
                histogram = self._histograms.get(key)
                if histogram is None:
                    histogram = self._histograms[key] = _Histogram()
                histogram.merge_json(entry)
                self.total_updates += 1

    def write(self, path: str | Path) -> dict:
        """Serialise the snapshot to ``path`` and return it."""
        payload = self.snapshot()
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return payload


class NullRegistry:
    """The disabled registry: every method is a no-op.

    Instrumented code calls these unconditionally; keeping the bodies
    empty (no locking, no dict work) is what makes the instrumentation
    near-free when observability is off.
    """

    __slots__ = ()
    enabled = False
    total_updates = 0

    def count(self, name: str, value: float = 1, **labels: object) -> None:
        return None

    def gauge(self, name: str, value: float, **labels: object) -> None:
        return None

    def observe(self, name: str, value: float, **labels: object) -> None:
        return None

    def counter_value(self, name: str, **labels: object) -> float:
        return 0

    def counter_total(self, name: str) -> float:
        return 0

    def counters(self, prefix: str = "") -> dict:
        return {}

    def snapshot(self) -> dict:
        return {"schema": SNAPSHOT_SCHEMA, "counters": [], "gauges": [],
                "histograms": []}

    def merge(self, snapshot: Mapping) -> None:
        return None


def diff_counters(
    left: Mapping[tuple, float], right: Mapping[tuple, float],
    ignore_prefixes: Iterable[str] = (),
) -> list[str]:
    """Human-readable differences between two counter maps.

    Used by the differential tests: returns one line per series whose
    value differs (or that exists on only one side), skipping series
    whose name starts with any ignored prefix — execution-shape
    bookkeeping like ``parallel.*`` legitimately differs between serial
    and sharded runs.
    """
    prefixes = tuple(ignore_prefixes)

    def keep(key: tuple) -> bool:
        return not key[0].startswith(prefixes) if prefixes else True

    problems = []
    for key in sorted(set(left) | set(right)):
        if not keep(key):
            continue
        a, b = left.get(key), right.get(key)
        if a != b:
            problems.append(f"{_key_to_json(key)}: {a!r} != {b!r}")
    return problems
