"""Render a JSONL trace into a per-phase attribution report.

``bonsai report trace.jsonl`` reads the span records a traced run
emitted and answers "where did the wall time go?".  Attribution is by
*self time*: each span's duration minus the durations of its direct
children (floored at zero — clock jitter can make children sum past
the parent by nanoseconds), aggregated per span name.  Self times of a
well-nested trace partition the run exactly, so the report's coverage
figure — the share of root wall time attributed to named phases plus
the roots' own self time — is a built-in completeness check: the
acceptance bar is ≥95%.

Main-process spans carry the attribution; worker-process spans (merged
into the same trace by the parallel layer) are summarised separately
because their wall time overlaps the parent's dispatch spans.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ObservabilityError
from repro.obs.sink import read_jsonl
from repro.units import MS

REPORT_SCHEMA = "bonsai-report/v1"


def _span_events(events: Sequence[Mapping]) -> list[Mapping]:
    return [e for e in events if e.get("kind") == "span"]


def _require(event: Mapping, field: str) -> object:
    try:
        return event[field]
    except KeyError:
        raise ObservabilityError(
            f"span record missing required field {field!r}: {event!r}"
        ) from None


def attribute(events: Sequence[Mapping]) -> dict:
    """Fold span events into the per-phase attribution structure.

    Returns a dict with ``total_s`` (summed root-span durations),
    ``coverage`` (attributed share of ``total_s``), ``rows`` (one per
    span name, ordered by descending self time), and ``workers``
    (span/duration tallies for non-main processes).
    """
    spans = _span_events(events)
    main = [s for s in spans if s.get("proc", "main") == "main"]
    by_id = {_require(s, "span"): s for s in main}

    child_time: dict[str, float] = {}
    for span in main:
        parent = span.get("parent")
        if parent in by_id:
            child_time[parent] = child_time.get(parent, 0.0) + float(
                _require(span, "dur_s")
            )

    roots = [s for s in main if s.get("parent") not in by_id]
    total = sum(float(_require(s, "dur_s")) for s in roots)

    phases: dict[str, dict] = {}
    attributed = 0.0
    for span in main:
        name = str(_require(span, "name"))
        duration = float(_require(span, "dur_s"))
        self_time = max(0.0, duration - child_time.get(span["span"], 0.0))
        row = phases.setdefault(
            name,
            {"name": name, "count": 0, "total_s": 0.0, "self_s": 0.0,
             "cycles": 0, "has_cycles": False},
        )
        row["count"] += 1
        row["total_s"] += duration
        row["self_s"] += self_time
        if span.get("cycles") is not None:
            row["cycles"] += int(span["cycles"])
            row["has_cycles"] = True
        if span not in roots:
            attributed += self_time
    root_self = sum(
        max(0.0, float(s["dur_s"]) - child_time.get(s["span"], 0.0))
        for s in roots
    )

    rows = []
    for row in sorted(
        phases.values(), key=lambda r: (-r["self_s"], r["name"])
    ):
        rows.append(
            {
                "name": row["name"],
                "count": row["count"],
                "total_s": row["total_s"],
                "self_s": row["self_s"],
                "share": (row["self_s"] / total) if total else 0.0,
                "cycles": row["cycles"] if row["has_cycles"] else None,
            }
        )

    workers: dict[str, dict] = {}
    for span in spans:
        proc = span.get("proc", "main")
        if proc == "main":
            continue
        entry = workers.setdefault(proc, {"spans": 0, "total_s": 0.0})
        entry["spans"] += 1
        entry["total_s"] += float(_require(span, "dur_s"))

    coverage = ((attributed + root_self) / total) if total else 0.0
    return {
        "schema": REPORT_SCHEMA,
        "spans": len(main),
        "total_s": total,
        "coverage": coverage,
        "rows": rows,
        "workers": {k: workers[k] for k in sorted(workers)},
    }


def build_report(path: str) -> dict:
    """Read a JSONL trace file and attribute it.

    The trailing ``metrics`` record a CLI session appends (when
    present) rides along under ``"metrics"`` so ``--format json``
    output is self-contained.
    """
    events = read_jsonl(path)
    if not _span_events(events):
        raise ObservabilityError(
            f"{path} contains no span records; was the run traced?"
        )
    report = attribute(events)
    report["trace"] = next(
        (e["trace"] for e in events if e.get("kind") == "span"), None
    )
    for event in events:
        if event.get("kind") == "metrics":
            report["metrics"] = event.get("snapshot")
            break
    return report


def _ms(seconds: float) -> str:
    return f"{seconds / MS:.3f}"


def render_report(report: Mapping) -> str:
    """Plain-text table form of an attribution report."""
    from repro.analysis.tables import render_table

    headers = ("phase", "count", "total ms", "self ms", "share %", "cycles")
    rows = [
        (
            row["name"],
            row["count"],
            _ms(row["total_s"]),
            _ms(row["self_s"]),
            f"{row['share'] * 100:.1f}",
            "-" if row["cycles"] is None else str(row["cycles"]),
        )
        for row in report["rows"]
    ]
    title = f"trace {report.get('trace') or '?'}: phase attribution"
    text = render_table(headers, rows, title=title)
    lines = [
        text.rstrip("\n"),
        "",
        f"spans: {report['spans']}  "
        f"wall: {_ms(report['total_s'])} ms  "
        f"coverage: {report['coverage'] * 100:.1f}%",
    ]
    workers = report.get("workers") or {}
    if workers:
        spans = sum(w["spans"] for w in workers.values())
        busy = sum(w["total_s"] for w in workers.values())
        lines.append(
            f"workers: {len(workers)} process(es), {spans} span(s), "
            f"{_ms(busy)} ms busy (overlaps main)"
        )
    return "\n".join(lines) + "\n"
