"""The active observation: one handle bundling registry, tracer, sink.

Instrumented code across the stack asks for the process-wide active
:class:`Observation` (``observation()``) and calls ``span``/``count``/
``gauge``/``observe`` on it.  By default the active observation is
:data:`DISABLED` — a singleton whose registry and tracer are the no-op
implementations — so the cost of instrumentation when observability is
off is one module-global read plus empty method calls, gated by nothing
heavier than the dispatch itself.

Cross-process propagation: :func:`task_context` captures the enabled
state, trace id and current span id on the parent side;
:func:`worker_observation` rebuilds a buffering observation from it
inside a pool process; :func:`worker_payload` / :func:`absorb` move the
worker's metrics and span events back into the parent registry and
sink.  The parallel plan (:mod:`repro.parallel.plan`) is the only
caller of that trio, so every sharded loop inherits observability
without touching its worker entries.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.obs.sink import JsonlSink, MemorySink
from repro.obs.spans import NullTracer, Tracer


@dataclass
class Observation:
    """The bundle instrumented code talks to.

    ``span``/``event`` delegate to the tracer, ``count``/``gauge``/
    ``observe`` to the registry; either half can independently be the
    null implementation (``--metrics`` without ``--trace`` and vice
    versa).
    """

    registry: object = field(default_factory=NullRegistry)
    tracer: object = field(default_factory=NullTracer)
    sink: object = None
    enabled: bool = False

    # -- tracing -------------------------------------------------------
    def span(self, name: str, **attrs: object):
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs: object) -> None:
        self.tracer.event(name, **attrs)

    # -- metrics -------------------------------------------------------
    def count(self, name: str, value: float = 1, **labels: object) -> None:
        self.registry.count(name, value, **labels)

    def gauge(self, name: str, value: float, **labels: object) -> None:
        self.registry.gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels: object) -> None:
        self.registry.observe(name, value, **labels)

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()


#: The permanent no-op observation; never mutated, always installable.
DISABLED = Observation()

_active: Observation = DISABLED


def observation() -> Observation:
    """The process-wide active observation (the no-op one by default)."""
    return _active


def install(obs: Observation) -> Observation:
    """Swap the active observation; returns the previous one."""
    global _active
    previous = _active
    _active = obs
    return previous


@contextmanager
def activated(obs: Observation) -> Iterator[Observation]:
    """Scope ``obs`` as the active observation, restoring on exit."""
    previous = install(obs)
    try:
        yield obs
    finally:
        install(previous)


def live_observation(sink=None, trace_id: str = "run") -> Observation:
    """A fully-enabled observation writing spans to ``sink``.

    ``sink=None`` buffers in a :class:`~repro.obs.sink.MemorySink` —
    the in-process enablement used by tests and the bench overhead
    scenario.
    """
    sink = sink if sink is not None else MemorySink()
    return Observation(
        registry=MetricsRegistry(),
        tracer=Tracer(sink=sink, trace_id=trace_id),
        sink=sink,
        enabled=True,
    )


# ----------------------------------------------------------------------
# CLI session
# ----------------------------------------------------------------------
@contextmanager
def session(
    command: str,
    trace: str | None = None,
    metrics: str | None = None,
    **root_attrs: object,
) -> Iterator[Observation]:
    """Observability for one CLI invocation.

    Builds the observation the flags ask for (a JSONL tracer for
    ``--trace``, a metrics registry for ``--metrics`` — and both when
    either needs the other's half for the final snapshot), installs it,
    runs the body under a root ``cli.<command>`` span, and on exit
    writes the metrics snapshot, appends it to the trace for
    self-containedness, and closes the sink.
    """
    sink = JsonlSink(trace) if trace else None
    tracer = (
        Tracer(sink=sink, trace_id=f"cli.{command}") if sink else NullTracer()
    )
    registry = MetricsRegistry()
    obs = Observation(registry=registry, tracer=tracer, sink=sink, enabled=True)
    with activated(obs):
        try:
            with obs.span(f"cli.{command}", **root_attrs):
                yield obs
        finally:
            snapshot = registry.snapshot()
            if sink is not None:
                sink.emit({"kind": "metrics", "snapshot": snapshot})
            if metrics:
                registry.write(metrics)
            obs.close()


# ----------------------------------------------------------------------
# cross-process propagation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ObsTaskContext:
    """Picklable capture of the parent's observation state for workers."""

    trace_id: str
    parent_span: str | None
    trace_spans: bool
    process: str = "worker"

    def for_chunk(self, index: int) -> "ObsTaskContext":
        """Label the context with the chunk's stable worker id."""
        return replace(self, process=f"w{index}")


def task_context() -> ObsTaskContext | None:
    """Parent-side capture, or ``None`` when observability is off."""
    obs = _active
    if not obs.enabled:
        return None
    return ObsTaskContext(
        trace_id=obs.tracer.trace_id,
        parent_span=obs.tracer.current_span_id(),
        trace_spans=obs.tracer.enabled,
    )


def worker_observation(ctx: ObsTaskContext) -> Observation:
    """Child-side observation buffering into memory for later absorption."""
    sink = MemorySink()
    tracer = (
        Tracer(
            sink=sink,
            trace_id=ctx.trace_id,
            process=ctx.process,
            root_parent=ctx.parent_span,
        )
        if ctx.trace_spans
        else NullTracer()
    )
    return Observation(
        registry=MetricsRegistry(), tracer=tracer, sink=sink, enabled=True
    )


def worker_payload(obs: Observation) -> dict:
    """What a worker ships back: its metrics snapshot plus span events."""
    events = obs.sink.events if isinstance(obs.sink, MemorySink) else []
    return {"metrics": obs.registry.snapshot(), "events": events}


def absorb(payload: dict) -> None:
    """Fold a worker payload into the active (parent) observation."""
    obs = _active
    if not obs.enabled or not payload:
        return
    metrics = payload.get("metrics")
    if metrics is not None:
        obs.registry.merge(metrics)
    if obs.sink is not None:
        for event in payload.get("events", ()):
            obs.sink.emit(event)
