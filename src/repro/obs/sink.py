"""Event sinks: where span records and telemetry events land.

Two implementations share one two-method protocol (``emit``/``close``):

* :class:`JsonlSink` appends one JSON object per line to a file — the
  format ``bonsai report`` renders and CI uploads as an artifact;
* :class:`MemorySink` buffers events in a list — what worker processes
  use so the parent can re-emit their events into the real sink, and
  what tests assert against.

Sinks never interpret events; every record is a plain dict with at
least a ``"kind"`` field (``"span"``, ``"event"``, ``"metrics"``).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from repro.errors import ObservabilityError


class JsonlSink:
    """Append-only JSONL file sink (thread-safe, line-buffered)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        try:
            self._handle = self.path.open("w", encoding="utf-8")
        except OSError as error:
            raise ObservabilityError(
                f"cannot open trace file {self.path}: {error}"
            ) from error

    def emit(self, record: dict) -> None:
        """Write one event as a JSON line."""
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if self._handle.closed:
                raise ObservabilityError(
                    f"trace sink {self.path} already closed"
                )
            self._handle.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()


class MemorySink:
    """In-memory sink: events accumulate on ``.events``."""

    def __init__(self) -> None:
        self.events: list[dict] = []
        self._lock = threading.Lock()

    def emit(self, record: dict) -> None:
        with self._lock:
            self.events.append(record)

    def close(self) -> None:
        return None

    def spans(self) -> list[dict]:
        """The span records emitted so far, in emission order."""
        with self._lock:
            return [e for e in self.events if e.get("kind") == "span"]


def read_jsonl(path: str | Path) -> list[dict]:
    """Parse a JSONL trace file into a list of event dicts."""
    source = Path(path)
    try:
        text = source.read_text(encoding="utf-8")
    except OSError as error:
        raise ObservabilityError(
            f"cannot read trace file {source}: {error}"
        ) from error
    events = []
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ObservabilityError(
                f"{source}:{number}: invalid JSON in trace: {error}"
            ) from error
        if not isinstance(record, dict):
            raise ObservabilityError(
                f"{source}:{number}: trace events must be JSON objects, "
                f"got {type(record).__name__}"
            )
        events.append(record)
    return events
