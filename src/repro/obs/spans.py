# bonsai-lint: disable-file=determinism -- spans time host wall-clock by
# design; they are telemetry about a run, never inputs to the simulation, and
# the whole subsystem is off by default.
"""Span-based tracing: nested wall-clock (+ cycle-count) intervals.

A span is one timed phase of a run — a CLI command, a merge stage, an
optimizer sweep, a worker chunk.  Spans nest: the tracer keeps the
current span per thread, each new span records its parent, and
``bonsai report`` later folds the tree into a per-phase attribution
table.  Cycle counts (simulated time) attach to spans via
:meth:`Span.set`, landing hardware telemetry and wall-clock telemetry in
one place.

Span identifiers are deterministic sequence numbers prefixed with the
tracer's process label (``main``, ``w3``…), so traces merged from
worker processes never collide and replays of the same run produce the
same identifier sequence.

:class:`NullTracer` is the disabled path: ``span()`` hands back one
shared no-op context manager and never reads a clock.
"""

from __future__ import annotations

import threading
import time

from repro.errors import ObservabilityError


class Span:
    """One open interval; a context manager that emits on exit."""

    __slots__ = (
        "tracer", "name", "attrs", "span_id", "parent_id",
        "start_unix", "_start_perf", "cycles",
    )

    def __init__(
        self, tracer: "Tracer", name: str, span_id: str,
        parent_id: str | None, attrs: dict,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.cycles: int | None = None
        self.start_unix = time.time()
        self._start_perf = time.perf_counter()

    # ------------------------------------------------------------------
    def set(self, cycles: int | None = None, **attrs: object) -> None:
        """Attach simulated-cycle counts and extra attributes mid-span."""
        if cycles is not None:
            self.cycles = int(cycles)
        if attrs:
            self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start_perf
        self.tracer._pop(self)
        record = {
            "kind": "span",
            "trace": self.tracer.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "proc": self.tracer.process,
            "start_unix": round(self.start_unix, 6),
            "dur_s": duration,
        }
        if self.cycles is not None:
            record["cycles"] = self.cycles
        if self.attrs:
            record["attrs"] = self.attrs
        if exc_type is not None:
            record["error"] = exc_type.__name__
        self.tracer._emit(record)
        return False


class _NullSpan:
    """The shared no-op span: enter/exit/set all do nothing."""

    __slots__ = ()

    def set(self, cycles: int | None = None, **attrs: object) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Creates spans and tracks the current one per thread.

    Parameters
    ----------
    sink:
        Where span records go (a :class:`~repro.obs.sink.JsonlSink` or
        :class:`~repro.obs.sink.MemorySink`).
    trace_id:
        Shared identifier stamped on every record; one per run.
    process:
        Label prefixing span ids (``main`` in the CLI process, a worker
        label inside pool processes) so merged traces stay collision
        free.
    root_parent:
        Parent span id inherited from another process — how a worker's
        spans attach under the parent-side span that dispatched the
        chunk.
    """

    enabled = True

    def __init__(
        self, sink, trace_id: str = "run", process: str = "main",
        root_parent: str | None = None,
    ) -> None:
        if sink is None:
            raise ObservabilityError("Tracer needs a sink; use NullTracer")
        self.sink = sink
        self.trace_id = trace_id
        self.process = process
        self.root_parent = root_parent
        self.spans_closed = 0
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object) -> Span:
        """Open a nested span; use as ``with tracer.span("phase"):``."""
        with self._seq_lock:
            self._seq += 1
            span_id = f"{self.process}:{self._seq}"
        return Span(
            tracer=self,
            name=name,
            span_id=span_id,
            parent_id=self.current_span_id(),
            attrs=dict(attrs),
        )

    def event(self, name: str, **attrs: object) -> None:
        """Emit a point-in-time event under the current span."""
        record = {
            "kind": "event",
            "trace": self.trace_id,
            "name": name,
            "proc": self.process,
            "parent": self.current_span_id(),
            "start_unix": round(time.time(), 6),
        }
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    def current_span_id(self) -> str | None:
        """The innermost open span id on this thread (or the inherited
        cross-process parent when no span is open)."""
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1].span_id
        return self.root_parent

    # ------------------------------------------------------------------
    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if not stack or stack[-1] is not span:
            raise ObservabilityError(
                f"span {span.span_id} ({span.name}) closed out of order"
            )
        stack.pop()
        self.spans_closed += 1

    def _emit(self, record: dict) -> None:
        self.sink.emit(record)


class NullTracer:
    """The disabled tracer: no clocks, no allocation, no records."""

    __slots__ = ()
    enabled = False
    trace_id = "disabled"
    process = "main"
    spans_closed = 0

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, **attrs: object) -> None:
        return None

    def current_span_id(self) -> None:
        return None
