"""Process-pool execution layer for independent merges, trees and sweeps.

The paper's performance story is built on *independent* units of work —
λ_unrl trees over disjoint partitions, per-group merges within a stage,
per-configuration optimizer evaluations — and this package runs them
side by side on host cores without changing a single result:

* :class:`ParallelPlan` is the one policy object (worker count, backend,
  chunking, per-task timeout with serial fallback) and its
  :meth:`~ParallelPlan.map` the one execution entry point;
* :mod:`repro.parallel.shm` ships numpy arrays through POSIX shared
  memory instead of pickles;
* :mod:`repro.parallel.workers` holds the module-level, import-pure
  worker entries (enforced by ``bonsai check``'s ``worker-entry`` rule);
* :mod:`repro.parallel.api` reproduces each serial hot loop with an
  order-stable sharded equivalent.

Determinism contract: same task list + same worker function +
order-stable reduction ⇒ bit-identical results for every ``jobs``
setting, pinned by the differential suite in ``tests/parallel``.
"""

from repro.parallel.plan import ParallelPlan, available_cpus
from repro.parallel.shm import ShmArrays

__all__ = ["ParallelPlan", "ShmArrays", "available_cpus"]
