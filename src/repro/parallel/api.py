"""Parent-side sharding helpers for the engine's serial hot loops.

Each helper takes the exact inputs of one serial loop plus a
:class:`~repro.parallel.plan.ParallelPlan` and reproduces that loop's
results through :meth:`ParallelPlan.map`.  The task decomposition never
depends on the ``jobs`` setting, and every reduction is order-stable, so
a helper's output is bit-identical across ``jobs=1``, ``jobs=N`` and
``backend="serial"`` — the differential suite in ``tests/parallel``
pins this.

Record data — model-mode arrays *and* simulate-mode runs — travels
through :mod:`repro.parallel.shm`: the parent packs batches into one
shared block, workers attach zero-copy views, and only tiny descriptors
and cycle counts ride the pickles.  Simulate-mode keys that cannot pack
into a uint64 block (negative, or beyond 64 bits) degrade to the
original pickled-int-list transport with identical results.
"""

from __future__ import annotations

import numpy as np

from repro.engine.stage import merge_stage
from repro.parallel.plan import ParallelPlan
from repro.parallel.shm import (
    alloc_arrays,
    as_uint64_runs,
    pack_arrays,
    release,
    view_array,
)
from repro.parallel.workers import (
    worker_merge_group,
    worker_simulate_group,
    worker_simulate_group_shm,
    worker_simulate_unit,
    worker_simulate_unit_shm,
    worker_sort_partition,
)


# Kept as a module attribute (not a bare-name import) so the
# differential suite's monkeypatch of ``api._as_uint64_runs`` still
# reroutes every call site below onto the pickled fallback.
_as_uint64_runs = as_uint64_runs


def merge_stage_sharded(
    runs: list[np.ndarray], leaves: int, plan: ParallelPlan | None
) -> list[np.ndarray]:
    """One AMT merge stage, groups fanned out across the pool.

    Semantics match :func:`repro.engine.stage.merge_stage` exactly; the
    serial function is also the fallback whenever sharding cannot help
    (no plan, a single group, mixed-dtype runs that would change the
    packed block's common dtype, or a serial-forced plan).
    """
    if not runs or leaves < 2:
        return merge_stage(runs, leaves)
    bounds = [
        (start, min(start + leaves, len(runs)))
        for start in range(0, len(runs), leaves)
    ]
    dtypes = {run.dtype for run in runs}
    if (
        plan is None
        or len(dtypes) != 1
        or not plan.wants_processes(len(bounds))
    ):
        return merge_stage(runs, leaves)
    dtype = dtypes.pop()
    in_block, in_desc = pack_arrays(runs)
    out_lengths = [
        sum(int(runs[i].size) for i in range(start, stop))
        for start, stop in bounds
    ]
    out_block, out_desc = alloc_arrays(out_lengths, dtype)
    try:
        tasks = [
            (in_desc, out_desc, group, start, stop)
            for group, (start, stop) in enumerate(bounds)
        ]
        plan.map(worker_merge_group, tasks)
        return [
            view_array(out_desc, group, out_block).copy()
            for group in range(len(bounds))
        ]
    finally:
        release(in_block)
        release(out_block)


def simulate_stage_sharded(
    runs: list[np.ndarray],
    p: int,
    leaves: int,
    record_bytes: int,
    read_bytes_per_cycle: float,
    write_bytes_per_cycle: float,
    batch_bytes: int,
    plan: ParallelPlan,
) -> tuple[list[list[int]], int]:
    """Cycle-simulate one stage with each merge group on its own tree.

    A stage's groups share one physical tree in the joint simulation
    (they stream through it back to back), so the faithful reduction
    here is the **sum** of per-group cycle counts: the same work with
    the cross-group pipeline overlap — a few fill/drain cycles per
    group — accounted to neither group.  The decomposition is the same
    for every ``jobs`` setting, so cycle counts stay bit-identical
    across serial and parallel plans.

    Record transport is zero-copy: runs pack into one shared uint64
    block, workers attach views of their group's slots, and merged
    groups land in a pre-allocated output block (a merge preserves its
    record count, so every output slot's size is known up front).  Only
    keys that cannot live in a uint64 block ride the pickled fallback.
    """
    arrays = None if not runs else _as_uint64_runs(runs)
    if arrays is None:
        return _simulate_stage_pickled(
            runs, p, leaves, record_bytes,
            read_bytes_per_cycle, write_bytes_per_cycle, batch_bytes, plan,
        )
    bounds = [
        (start, min(start + leaves, len(arrays)))
        for start in range(0, len(arrays), leaves)
    ]
    in_block, in_desc = pack_arrays(arrays)
    out_lengths = [
        sum(int(arrays[i].size) for i in range(start, stop))
        for start, stop in bounds
    ]
    out_block, out_desc = alloc_arrays(out_lengths, np.uint64)
    try:
        tasks = [
            (
                in_desc, out_desc, group, start, stop,
                p, leaves, record_bytes,
                read_bytes_per_cycle, write_bytes_per_cycle, batch_bytes,
            )
            for group, (start, stop) in enumerate(bounds)
        ]
        results = plan.map(worker_simulate_group_shm, tasks)
        out_runs = []
        cycles = 0
        for group, (run_lengths, group_cycles) in enumerate(results):
            cycles += group_cycles
            slot = view_array(out_desc, group, out_block)
            position = 0
            for length in run_lengths:
                out_runs.append(slot[position : position + length].tolist())
                position += length
        return out_runs, cycles
    finally:
        release(in_block)
        release(out_block)


def _simulate_stage_pickled(
    runs: list[np.ndarray],
    p: int,
    leaves: int,
    record_bytes: int,
    read_bytes_per_cycle: float,
    write_bytes_per_cycle: float,
    batch_bytes: int,
    plan: ParallelPlan,
) -> tuple[list[list[int]], int]:
    """Fallback transport: runs as int lists inside the task pickles."""
    int_runs = [[int(x) for x in run] for run in runs]
    tasks = [
        (
            p,
            leaves,
            int_runs[start : start + leaves],
            record_bytes,
            read_bytes_per_cycle,
            write_bytes_per_cycle,
            batch_bytes,
        )
        for start in range(0, len(int_runs), leaves)
    ]
    results = plan.map(worker_simulate_group, tasks)
    out_runs = [run for group_runs, _cycles in results for run in group_runs]
    cycles = sum(group_cycles for _runs, group_cycles in results)
    return out_runs, cycles


def sort_partitions_sharded(
    partitions: list[np.ndarray],
    config,
    hardware,
    arch,
    presort_run: int,
    plan: ParallelPlan | None,
) -> list | None:
    """Model-mode sort of independent partitions, one worker each.

    Returns a list of :class:`~repro.engine.results.SortOutcome` in
    partition order, or ``None`` when sharding does not apply and the
    caller should run its serial loop (same worker code path either
    way, so both give identical outcomes).
    """
    from repro.engine.results import SortOutcome

    dtypes = {part.dtype for part in partitions}
    if (
        plan is None
        or len(dtypes) != 1
        or not plan.wants_processes(len(partitions))
    ):
        return None
    dtype = dtypes.pop()
    in_block, in_desc = pack_arrays(partitions)
    out_block, out_desc = alloc_arrays([int(p.size) for p in partitions], dtype)
    try:
        tasks = [
            (in_desc, out_desc, index, config, hardware, arch, presort_run, "model")
            for index in range(len(partitions))
        ]
        results = plan.map(worker_sort_partition, tasks)
        outcomes = []
        for index, seconds, stages, traffic, detail in results:
            outcomes.append(
                SortOutcome(
                    data=view_array(out_desc, index, out_block).copy(),
                    seconds=seconds,
                    stages=stages,
                    record_bytes=arch.record_bytes,
                    mode="model",
                    traffic=traffic,
                    detail=detail,
                )
            )
        return outcomes
    finally:
        release(in_block)
        release(out_block)


def simulate_unrolled_sharded(
    array: list[int],
    p: int,
    leaves: int,
    lambda_unroll: int,
    record_bytes: int,
    presort_run: int,
    total_bytes_per_cycle: float,
    batch_bytes: int,
    plan: ParallelPlan,
    max_cycles: int = 5_000_000,
) -> tuple[list[int], int, int, int]:
    """λ unrolled units, each cycle-simulated in its own worker.

    Mirrors :meth:`repro.hw.banks.UnrolledSimulation.run`: every unit
    sorts its address-range chunk on a 1/λ bandwidth share, then the
    sorted ranges merge through one tree at the aggregate budget.  In
    the joint loop a finished unit's tick is a no-op, so ticking each
    unit alone visits the exact same cycles — per-unit completion
    counts reduce to ``parallel_cycles`` with the existing ``max()``
    semantics, bit-identical to the joint simulation.

    Record transport is zero-copy: the array packs into one shared
    uint64 block as λ chunk slots, each worker attaches a view of its
    chunk and writes the sorted range back into the same-sized output
    slot; only cycle/stage counts ride the result pickles.  Keys that
    cannot live in a uint64 block ride the pickled fallback.

    Returns ``(output, max_stages_done, parallel_cycles,
    final_merge_cycles)``.
    """
    from repro.hw.tree import simulate_merge

    share = total_bytes_per_cycle / lambda_unroll
    chunk = -(-len(array) // lambda_unroll)
    chunks = [
        list(array[index * chunk : (index + 1) * chunk])
        for index in range(lambda_unroll)
    ]
    arrays = _as_uint64_runs(chunks)
    if arrays is not None:
        in_block, in_desc = pack_arrays(arrays)
        out_block, out_desc = alloc_arrays(
            [int(a.size) for a in arrays], np.uint64
        )
        try:
            tasks = [
                (
                    in_desc, out_desc, index, p, leaves, record_bytes,
                    share, batch_bytes, presort_run, max_cycles,
                )
                for index in range(lambda_unroll)
            ]
            results = plan.map(worker_simulate_unit_shm, tasks)
            parallel_cycles = max(cycles for _busy, _stages, cycles in results)
            stages_done = max(stages for _busy, stages, _cycles in results)
            ranges = [
                view_array(out_desc, index, out_block).tolist()
                for index in range(lambda_unroll)
            ]
        finally:
            release(in_block)
            release(out_block)
    else:
        tasks = [
            (
                p,
                leaves,
                record_bytes,
                share,
                batch_bytes,
                presort_run,
                chunks[index],
                max_cycles,
            )
            for index in range(lambda_unroll)
        ]
        results = plan.map(worker_simulate_unit, tasks)
        parallel_cycles = max(cycles for _out, _busy, _stages, cycles in results)
        stages_done = max(stages for _out, _busy, stages, _cycles in results)
        ranges = [output for output, _busy, _stages, _cycles in results]
    merged, stats = simulate_merge(
        p=p,
        leaves=leaves,
        runs=ranges,
        record_bytes=record_bytes,
        read_bytes_per_cycle=total_bytes_per_cycle,
        write_bytes_per_cycle=total_bytes_per_cycle,
        batch_bytes=batch_bytes,
        check_sorted_inputs=False,
    )
    return merged[0], stages_done, parallel_cycles, stats.cycles
