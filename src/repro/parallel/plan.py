"""The parallel execution plan: one policy object for every sharded loop.

Every independently-executable unit of work in the reproduction — the
merge groups of one stage, the λ_unrl trees of an unrolled sort, the
configuration chunks of an optimizer sweep, the scenarios of a bench
run — goes through one entry point, :meth:`ParallelPlan.map`.  The plan
decides *how* the map runs (a process pool or a plain loop); it never
changes *what* is computed, so results are bit-identical across every
``jobs`` setting by construction: the same module-level worker function
is applied to the same task list in the same order, and the reduction is
order-stable (results land at their task's index, never in completion
order).

Serial execution is forced — regardless of ``jobs`` — when any of these
hold:

* ``backend="serial"`` was requested explicitly;
* ``jobs`` resolves to 1, or there are fewer than two tasks;
* the platform cannot ``fork`` (process workers would re-import the
  world per task under ``spawn``, which costs more than it saves for
  our task sizes);
* the current process is itself a pool worker (no nested pools).

Worker failure is not fatal: a crashed or timed-out chunk is recomputed
serially in the parent, so a flaky pool can slow a run down but can
never change its output or kill it.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

from repro.errors import ConfigurationError
from repro.obs.runtime import (
    ObsTaskContext,
    absorb,
    activated,
    observation,
    task_context,
    worker_observation,
    worker_payload,
)

Task = TypeVar("Task")
Result = TypeVar("Result")

#: ``jobs="auto"`` resolves to the machine's CPU count via this function
#: (isolated for tests to monkeypatch).
def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def _call_chunk(
    fn: Callable, tasks: list, obs_ctx: ObsTaskContext | None = None
) -> tuple[list, dict | None]:
    """Pool-side trampoline: apply ``fn`` to one chunk, keep order.

    When the parent shipped an observation context, the chunk runs
    under a fresh buffering observation whose metrics snapshot and span
    events ride back with the results (the second tuple element); the
    parent absorbs them, so instrumented counters are identical to a
    serial run by construction.
    """
    if obs_ctx is None:
        return [fn(task) for task in tasks], None
    worker = worker_observation(obs_ctx)
    with activated(worker):
        with worker.span("parallel.chunk", tasks=len(tasks)):
            results = [fn(task) for task in tasks]
    return results, worker_payload(worker)


@dataclass(frozen=True)
class ParallelPlan:
    """How to execute a list of independent tasks.

    Parameters
    ----------
    jobs:
        Worker count, or ``"auto"`` for the machine's CPU count.
    backend:
        ``"process"`` (default) shards across a process pool;
        ``"serial"`` runs a plain loop in the parent (useful to compare
        against, and what every serial-forcing condition degrades to).
    chunk_size:
        Tasks per pool submission, or ``"auto"`` to split the task list
        into about four chunks per worker (amortises pickling for many
        small tasks while keeping the pool load-balanced).
    task_timeout:
        Optional per-task seconds before a chunk is declared lost and
        recomputed serially in the parent.  ``None`` waits forever.
    """

    jobs: int | str = 1
    backend: str = "process"
    chunk_size: int | str = "auto"
    task_timeout: float | None = None

    def __post_init__(self) -> None:
        if isinstance(self.jobs, str):
            if self.jobs != "auto":
                raise ConfigurationError(
                    f"jobs must be a positive int or 'auto', got {self.jobs!r}"
                )
        elif self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.backend not in ("process", "serial"):
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; expected 'process' or 'serial'"
            )
        if isinstance(self.chunk_size, str):
            if self.chunk_size != "auto":
                raise ConfigurationError(
                    f"chunk_size must be a positive int or 'auto', got "
                    f"{self.chunk_size!r}"
                )
        elif self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ConfigurationError(
                f"task_timeout must be positive, got {self.task_timeout}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def serial(cls) -> "ParallelPlan":
        """The do-nothing plan: a plain loop in the parent."""
        return cls(jobs=1, backend="serial")

    @classmethod
    def from_jobs(cls, jobs: int | str | None) -> "ParallelPlan | None":
        """CLI adapter: ``None`` stays ``None`` (caller keeps its default
        path), 1 forces serial, anything else shards."""
        if jobs is None:
            return None
        if jobs == 1:
            return cls.serial()
        return cls(jobs=jobs)

    # ------------------------------------------------------------------
    def resolve_jobs(self) -> int:
        """The concrete worker count ``jobs`` stands for."""
        if self.jobs == "auto":
            return available_cpus()
        return int(self.jobs)

    def wants_processes(self, n_tasks: int) -> bool:
        """True when this map should actually shard across a pool."""
        return (
            self.backend == "process"
            and n_tasks > 1
            and self.resolve_jobs() > 1
            and "fork" in multiprocessing.get_all_start_methods()
            and not multiprocessing.current_process().daemon
        )

    def chunks(self, n_tasks: int) -> list[range]:
        """Contiguous index ranges covering ``range(n_tasks)`` in order."""
        if n_tasks <= 0:
            return []
        if self.chunk_size == "auto":
            size = max(1, -(-n_tasks // (self.resolve_jobs() * 4)))
        else:
            size = int(self.chunk_size)
        return [
            range(start, min(start + size, n_tasks))
            for start in range(0, n_tasks, size)
        ]

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Task], Result], tasks: Sequence[Task]) -> list[Result]:
        """Order-stable ``[fn(t) for t in tasks]``, possibly sharded.

        ``fn`` must be a module-level function (process workers import
        it by qualified name) and every task must be picklable.  The
        returned list is always in task order; worker failures and
        timeouts degrade the affected chunk to a serial recompute in the
        parent, so the result is independent of how the pool behaved.
        """
        tasks = list(tasks)
        obs = observation()
        if not self.wants_processes(len(tasks)):
            obs.count("parallel.maps", mode="serial")
            return [fn(task) for task in tasks]
        obs.count("parallel.maps", mode="pool")
        obs.count("parallel.tasks", len(tasks))
        chunks = self.chunks(len(tasks))
        results: list = [None] * len(tasks)
        context = multiprocessing.get_context("fork")
        max_workers = min(self.resolve_jobs(), len(chunks))
        executor = ProcessPoolExecutor(max_workers=max_workers, mp_context=context)
        try:
            with obs.span(
                "parallel.map", tasks=len(tasks), chunks=len(chunks),
                workers=max_workers,
            ):
                # Captured inside the span so worker span trees hang off
                # the dispatch span that actually ran them.
                ctx = task_context()
                futures = [
                    executor.submit(
                        _call_chunk,
                        fn,
                        [tasks[i] for i in chunk],
                        None if ctx is None else ctx.for_chunk(number),
                    )
                    for number, chunk in enumerate(chunks)
                ]
                for chunk, future in zip(chunks, futures):
                    timeout = (
                        None if self.task_timeout is None
                        else self.task_timeout * len(chunk)
                    )
                    try:
                        chunk_results, payload = future.result(timeout=timeout)
                    except FutureTimeoutError:
                        future.cancel()
                        # Recomputed in the parent under the parent's own
                        # observation, so the lost chunk's metrics are
                        # still counted exactly once.
                        obs.count("parallel.recomputed_chunks")
                        chunk_results = [fn(tasks[i]) for i in chunk]
                    except Exception:  # bonsai-lint: disable=exn-broad-fallback -- the serial recompute re-raises any real task error in the parent with a clean traceback, so nothing is masked
                        # Worker crash (BrokenProcessPool), unpicklable
                        # result, or the task's own deterministic error:
                        # recompute serially — a real error raises again
                        # here, in the parent, with a clean traceback.
                        obs.count("parallel.recomputed_chunks")
                        chunk_results = [fn(tasks[i]) for i in chunk]
                    else:
                        if payload is not None:
                            absorb(payload)
                    for index, value in zip(chunk, chunk_results):
                        results[index] = value
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        return results
