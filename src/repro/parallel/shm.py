"""Shared-memory transport for numpy record arrays.

Process workers receive their tasks by pickling; for the model-mode
merge path the tasks *are* large record arrays, and pickling them twice
(parent -> worker, worker -> parent) would dominate the wall-clock the
pool is supposed to save.  This module ships arrays through
``multiprocessing.shared_memory`` instead:

* the parent packs every input run into one shared block and sends
  workers only a tiny :class:`ShmArrays` descriptor (block name, dtype,
  per-array lengths);
* the parent pre-allocates one *output* block — merge outputs have
  exactly known sizes (a merged group is as long as the sum of its
  inputs) — and each worker writes its group's result into its own
  disjoint slice, returning nothing but an acknowledgement.

Workers attach read-only by convention: tasks partition both blocks, so
no two workers ever touch the same output slice and no lock is needed.
The parent owns both blocks' lifetimes (``close`` + ``unlink`` in a
``finally``); workers only ever ``close`` their attachment.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ShmArrays:
    """Picklable descriptor of arrays packed end-to-end in one block."""

    name: str
    dtype: str
    lengths: tuple[int, ...]

    @property
    def offsets(self) -> tuple[int, ...]:
        """Element offset of each array inside the block."""
        out = []
        position = 0
        for length in self.lengths:
            out.append(position)
            position += length
        return tuple(out)

    @property
    def total(self) -> int:
        return sum(self.lengths)


def pack_arrays(
    arrays: list[np.ndarray],
) -> tuple[shared_memory.SharedMemory, ShmArrays]:
    """Copy ``arrays`` into one fresh shared block; caller owns cleanup."""
    if not arrays:
        raise ConfigurationError("cannot pack zero arrays into shared memory")
    dtype = np.result_type(*arrays)
    total = sum(int(a.size) for a in arrays)
    block = shared_memory.SharedMemory(
        create=True, size=max(1, total * dtype.itemsize)
    )
    flat = np.ndarray((total,), dtype=dtype, buffer=block.buf)
    position = 0
    for array in arrays:
        flat[position : position + array.size] = array
        position += array.size
    descriptor = ShmArrays(
        name=block.name,
        dtype=dtype.str,
        lengths=tuple(int(a.size) for a in arrays),
    )
    return block, descriptor


def alloc_arrays(
    lengths: list[int], dtype: np.dtype | str
) -> tuple[shared_memory.SharedMemory, ShmArrays]:
    """Allocate an uninitialised shared block for arrays of known sizes."""
    dtype = np.dtype(dtype)
    total = sum(int(n) for n in lengths)
    block = shared_memory.SharedMemory(
        create=True, size=max(1, total * dtype.itemsize)
    )
    descriptor = ShmArrays(
        name=block.name, dtype=dtype.str, lengths=tuple(int(n) for n in lengths)
    )
    return block, descriptor


def read_array(descriptor: ShmArrays, index: int) -> np.ndarray:
    """Copy array ``index`` out of the block (safe after the block dies)."""
    block = shared_memory.SharedMemory(name=descriptor.name)
    try:
        view = view_array(descriptor, index, block)
        return view.copy()
    finally:
        block.close()


def view_array(
    descriptor: ShmArrays, index: int, block: shared_memory.SharedMemory
) -> np.ndarray:
    """Zero-copy view of array ``index`` inside an attached block."""
    offset = descriptor.offsets[index]
    length = descriptor.lengths[index]
    dtype = np.dtype(descriptor.dtype)
    return np.ndarray(
        (length,), dtype=dtype, buffer=block.buf,
        offset=offset * dtype.itemsize,
    )


def write_array(descriptor: ShmArrays, index: int, values: np.ndarray) -> None:
    """Fill slot ``index`` of a (freshly attached) block with ``values``."""
    if values.size != descriptor.lengths[index]:
        raise ConfigurationError(
            f"shared slot {index} holds {descriptor.lengths[index]} elements, "
            f"got {values.size}"
        )
    block = shared_memory.SharedMemory(name=descriptor.name)
    try:
        view_array(descriptor, index, block)[:] = values
    finally:
        block.close()


def as_uint64_runs(runs: list) -> list[np.ndarray] | None:
    """Coerce int runs to uint64 arrays for shm transport, or ``None``.

    The simulator's record space is non-negative 64-bit keys; anything
    outside that (signalled by numpy's conversion errors) keeps the
    caller on the pickled-int-list fallback, whose arbitrary-precision
    ints have no such limit.  This is the one packability gate shared by
    the simulate-mode transport and the cluster exchange shuttles.
    """
    arrays = []
    for run in runs:
        if isinstance(run, np.ndarray):
            # Casting straight to uint64 silently wraps negatives and
            # truncates floats instead of raising, so gate on the
            # array's own dtype kind and range first.
            if run.dtype.kind == "u":
                arrays.append(run.astype(np.uint64))
                continue
            if run.dtype.kind == "i" and not (run.size and int(run.min()) < 0):
                arrays.append(run.astype(np.uint64))
                continue
            return None
        # Lists: require genuine ints before casting (floats would
        # truncate, and large values make numpy infer float64, so the
        # element scan is the only airtight check; it costs the same
        # O(n) as the pickled path's per-element int() conversions).
        if not all(type(x) is int or isinstance(x, np.integer) for x in run):
            return None
        try:
            # The explicit cast raises on anything outside [0, 2**64).
            arrays.append(np.asarray(run, dtype=np.uint64))
        except (OverflowError, ValueError, TypeError):
            return None
    return arrays


def release(block: shared_memory.SharedMemory) -> None:
    """Close and unlink a parent-owned block, tolerating double release."""
    try:
        block.close()
        block.unlink()
    except FileNotFoundError:  # bonsai-lint: disable=exn-swallow -- already unlinked (e.g. crashed cleanup ran); tolerating double release is this function's contract
        pass
