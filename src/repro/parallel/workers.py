"""Process-pool worker entry points.

Every function here is a *worker entry*: a module-level function taking
one picklable task tuple, imported by qualified name inside pool
processes.  Two invariants keep the pool deterministic and safe, and
``bonsai check``'s ``worker-entry`` rule enforces both:

* entries are **module-level** (nested functions and lambdas cannot be
  pickled by reference, and would silently capture parent state);
* this module is **import-pure** — importing it runs no code beyond
  ``def``/``import``, so a forked or spawned worker observes exactly the
  same module as the parent and results cannot depend on import order.

Entries return plain data (tuples of ints/floats, lists, small frozen
dataclasses); large numpy arrays travel through
:mod:`repro.parallel.shm` descriptors instead of pickles.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.shm import ShmArrays, read_array, view_array, write_array


# ----------------------------------------------------------------------
# model-mode merge stage (engine/stage.py)
# ----------------------------------------------------------------------
def worker_merge_group(task: tuple) -> int:
    """Merge one group of runs: shared block in, shared slot out.

    ``task = (in_desc, out_desc, group_index, start, stop)`` — merge
    input runs ``[start, stop)`` through the binary tournament and write
    the result into output slot ``group_index``.  Returns the group
    index as an acknowledgement (the data never rides the pickle).
    """
    from multiprocessing import shared_memory

    from repro.engine.stage import merge_runs_numpy

    in_desc, out_desc, group_index, start, stop = task
    block = shared_memory.SharedMemory(name=in_desc.name)
    try:
        runs = [view_array(in_desc, i, block) for i in range(start, stop)]
        merged = merge_runs_numpy(runs)
        write_array(out_desc, group_index, merged)
    finally:
        block.close()
    return group_index


# ----------------------------------------------------------------------
# model-mode unrolled partitions (engine/unrolled.py)
# ----------------------------------------------------------------------
def worker_sort_partition(task: tuple) -> tuple:
    """Sort one partition through a single-tree :class:`AmtSorter`.

    ``task = (in_desc, out_desc, index, config, hardware, arch,
    presort_run, mode)``; the partition lives in input slot ``index``
    and the sorted data is written back to output slot ``index``.
    Returns the timing/traffic metadata the parent needs to rebuild the
    partition's :class:`~repro.engine.results.SortOutcome`.
    """
    from repro.engine.sorter import AmtSorter

    in_desc, out_desc, index, config, hardware, arch, presort_run, mode = task
    data = read_array(in_desc, index)
    sorter = AmtSorter(
        config=config, hardware=hardware, arch=arch,
        presort_run=presort_run, mode=mode,
    )
    outcome = sorter.sort(data)
    write_array(out_desc, index, np.asarray(outcome.data, dtype=data.dtype))
    return (index, outcome.seconds, outcome.stages, outcome.traffic, outcome.detail)


# ----------------------------------------------------------------------
# simulate-mode stage groups (engine/sorter.py)
# ----------------------------------------------------------------------
def worker_simulate_group(task: tuple) -> tuple:
    """Cycle-simulate one merge group on its own tree.

    ``task = (p, leaves, runs, record_bytes, read_bytes_per_cycle,
    write_bytes_per_cycle, batch_bytes)`` with ``runs`` as plain int
    lists riding the task pickle.  This is the fallback transport for
    records that cannot pack into a uint64 shared block (negative or
    >64-bit keys); the fast lane is :func:`worker_simulate_group_shm`.
    Returns ``(output_runs, cycles)``.
    """
    from repro.hw.tree import simulate_merge

    p, leaves, runs, record_bytes, read_bpc, write_bpc, batch_bytes = task
    out_runs, stats = simulate_merge(
        p=p,
        leaves=leaves,
        runs=runs,
        record_bytes=record_bytes,
        read_bytes_per_cycle=read_bpc,
        write_bytes_per_cycle=write_bpc,
        batch_bytes=batch_bytes,
        check_sorted_inputs=False,
    )
    return (out_runs, stats.cycles)


def worker_simulate_group_shm(task: tuple) -> tuple:
    """Cycle-simulate one merge group with its runs in shared memory.

    ``task = (in_desc, out_desc, group_index, start, stop, p, leaves,
    record_bytes, read_bytes_per_cycle, write_bytes_per_cycle,
    batch_bytes)`` — the group's input runs occupy slots ``[start,
    stop)`` of the input block and the sorted output concatenates into
    output slot ``group_index`` (a merge is length-preserving, so the
    slot size is exactly the sum of the group's inputs).  Returns
    ``(output_run_lengths, cycles)``; record data never rides a pickle
    in either direction.
    """
    from multiprocessing import shared_memory

    from repro.hw.tree import simulate_merge

    (
        in_desc, out_desc, group_index, start, stop,
        p, leaves, record_bytes, read_bpc, write_bpc, batch_bytes,
    ) = task
    block = shared_memory.SharedMemory(name=in_desc.name)
    try:
        # tolist() materialises native ints once, up front: the simulator
        # compares and hashes records in pure Python, where numpy scalars
        # would be both slower and digest-visible.
        runs = [view_array(in_desc, i, block).tolist() for i in range(start, stop)]
    finally:
        block.close()
    out_runs, stats = simulate_merge(
        p=p,
        leaves=leaves,
        runs=runs,
        record_bytes=record_bytes,
        read_bytes_per_cycle=read_bpc,
        write_bytes_per_cycle=write_bpc,
        batch_bytes=batch_bytes,
        check_sorted_inputs=False,
    )
    flat = [record for run in out_runs for record in run]
    write_array(out_desc, group_index, np.asarray(flat, dtype=np.dtype(out_desc.dtype)))
    return (tuple(len(run) for run in out_runs), stats.cycles)


# ----------------------------------------------------------------------
# simulate-mode unrolled units (hw/banks.py)
# ----------------------------------------------------------------------
def worker_simulate_unit(task: tuple) -> tuple:
    """Run one unrolled sorter unit's full cycle loop.

    ``task = (p, leaves, record_bytes, bytes_per_cycle, batch_bytes,
    presort_run, chunk, max_cycles)`` with ``chunk`` riding the task
    pickle (the fallback transport when records cannot pack into a
    uint64 shared block; see :func:`worker_simulate_unit_shm`).  Ticks
    the unit exactly as :meth:`UnrolledSimulation.run`'s joint loop
    would — a done unit's tick is a no-op there, so per-unit cycle
    counts are identical and the parent recovers ``parallel_cycles`` as
    their ``max()``.  Returns ``(output, busy_cycles, stages_done,
    cycles)``.
    """
    from repro.errors import SimulationError
    from repro.hw.banks import _SorterUnit

    p, leaves, record_bytes, bytes_per_cycle, batch_bytes, presort_run, chunk, max_cycles = task
    unit = _SorterUnit(
        p=p,
        leaves=leaves,
        record_bytes=record_bytes,
        bytes_per_cycle=bytes_per_cycle,
        batch_bytes=batch_bytes,
        presort_run=presort_run,
    )
    unit.load(list(chunk))
    cycle = 0
    while not unit.done:
        if cycle >= max_cycles:
            raise SimulationError(
                f"unrolled phase did not finish within {max_cycles} cycles"
            )
        unit.tick(cycle)
        cycle += 1
    return (unit.output, unit.busy_cycles, unit.stages_done, cycle)


def worker_simulate_unit_shm(task: tuple) -> tuple:
    """Run one unrolled unit with its chunk in shared memory.

    ``task = (in_desc, out_desc, index, p, leaves, record_bytes,
    bytes_per_cycle, batch_bytes, presort_run, max_cycles)`` — the
    unit's address-range chunk lives in input slot ``index`` and its
    sorted output is written back to output slot ``index`` (same
    length).  The cycle loop is identical to
    :func:`worker_simulate_unit`; only the record transport differs.
    Returns ``(busy_cycles, stages_done, cycles)``.
    """
    from multiprocessing import shared_memory

    from repro.errors import SimulationError
    from repro.hw.banks import _SorterUnit

    (
        in_desc, out_desc, index, p, leaves, record_bytes,
        bytes_per_cycle, batch_bytes, presort_run, max_cycles,
    ) = task
    block = shared_memory.SharedMemory(name=in_desc.name)
    try:
        chunk = view_array(in_desc, index, block).tolist()
    finally:
        block.close()
    unit = _SorterUnit(
        p=p,
        leaves=leaves,
        record_bytes=record_bytes,
        bytes_per_cycle=bytes_per_cycle,
        batch_bytes=batch_bytes,
        presort_run=presort_run,
    )
    unit.load(chunk)
    cycle = 0
    while not unit.done:
        if cycle >= max_cycles:
            raise SimulationError(
                f"unrolled phase did not finish within {max_cycles} cycles"
            )
        unit.tick(cycle)
        cycle += 1
    write_array(out_desc, index, np.asarray(unit.output, dtype=np.dtype(out_desc.dtype)))
    return (unit.busy_cycles, unit.stages_done, cycle)


# ----------------------------------------------------------------------
# cluster exchange + per-node sorts (distributed/executor.py)
# ----------------------------------------------------------------------
def worker_exchange_partition(task: tuple) -> tuple:
    """Range-partition one sender's chunk into its shuffle slot.

    ``task = (in_desc, shuffle_desc, sender, splitters)`` — read input
    slot ``sender``, compute each record's owning node against the
    splitter boundaries, and write the chunk back to shuffle slot
    ``sender`` grouped by receiver (stable argsort, so a receiver's
    shard preserves the sender's input order).  Returns the
    per-receiver record counts; the parent assembles the counts matrix
    into a :class:`~repro.distributed.exchange.ShuffleLayout`.
    """
    from multiprocessing import shared_memory

    from repro.distributed.exchange import partition_owners
    from repro.obs.runtime import observation

    in_desc, shuffle_desc, sender, splitters = task
    block = shared_memory.SharedMemory(name=in_desc.name)
    try:
        chunk = view_array(in_desc, sender, block).copy()
    finally:
        block.close()
    owners = partition_owners(chunk, np.asarray(splitters, dtype=np.uint64))
    order = np.argsort(owners, kind="stable")
    write_array(shuffle_desc, sender, chunk[order])
    counts = np.bincount(owners, minlength=len(splitters) + 1)
    observation().count("cluster.exchange_records", int(chunk.size))
    return tuple(int(count) for count in counts)


def worker_cluster_node_sort(task: tuple) -> tuple:
    """Gather one node's shards from the shuffle block and sort them.

    ``task = (shuffle_desc, out_desc, flag_desc, receiver, ranges,
    config, hardware, arch, presort_run, mode, straggler)`` — copy the
    ``(sender_slot, start, stop)`` shard ranges out of the shuffle
    block, concatenate them, sort through a single-tree
    :class:`AmtSorter`, and write the sorted partition to output slot
    ``receiver``.  Returns ``(receiver, model_seconds, stages)``.

    ``straggler`` (``None`` or ``(node, mode, seconds)``) injects a
    fault into exactly one node's sort — ``"kill"`` SIGKILLs the worker
    process, ``"sleep"`` stalls it past the plan's task timeout — to
    exercise the parallel layer's serial-recompute fallback.  Injection
    is gated on actually being a pool child (``parent_process()``), so
    the parent's recompute of the same task runs clean, and marks the
    shared flag slot first, so the parent can report that recovery
    happened even with observability disabled.
    """
    from multiprocessing import parent_process, shared_memory

    from repro.engine.sorter import AmtSorter
    from repro.obs.runtime import observation

    (
        shuffle_desc, out_desc, flag_desc, receiver, ranges,
        config, hardware, arch, presort_run, mode, straggler,
    ) = task
    if (
        straggler is not None
        and straggler[0] == receiver
        and parent_process() is not None
    ):
        flag_block = shared_memory.SharedMemory(name=flag_desc.name)
        try:
            flags = view_array(flag_desc, 0, flag_block)
            already_injected = bool(flags[0])
            flags[0] = 1
        finally:
            flag_block.close()
        if not already_injected:
            if straggler[1] == "kill":
                import os
                import signal

                os.kill(os.getpid(), signal.SIGKILL)
            else:
                import time

                time.sleep(float(straggler[2]))
    block = shared_memory.SharedMemory(name=shuffle_desc.name)
    try:
        shards = [
            view_array(shuffle_desc, sender, block)[start:stop].copy()
            for sender, start, stop in ranges
        ]
    finally:
        block.close()
    data = (
        np.concatenate(shards) if shards
        else np.empty(0, dtype=np.uint64)
    )
    sorter = AmtSorter(
        config=config, hardware=hardware, arch=arch,
        presort_run=presort_run, mode=mode,
    )
    outcome = sorter.sort(data)
    write_array(out_desc, receiver, np.asarray(outcome.data, dtype=np.uint64))
    observation().count("cluster.node_records", int(data.size))
    return (receiver, float(outcome.seconds), int(outcome.stages))


# ----------------------------------------------------------------------
# optimizer sweeps (core/optimizer.py)
# ----------------------------------------------------------------------
def worker_eval_latency(task: tuple) -> list[tuple]:
    """Evaluate §III-C latency for a chunk of configurations.

    ``task = (bonsai_kwargs, configs, array, unroll_mode)``.  Builds a
    fresh :class:`Bonsai` from the parent's constructor kwargs so the
    evaluation runs the *same* code path as the serial loop, then
    returns ``(config, latency_seconds)`` pairs for the parent to fold
    into its frozen-key memoization cache.
    """
    from repro.core.optimizer import Bonsai

    bonsai_kwargs, configs, array, unroll_mode = task
    bonsai = Bonsai(**bonsai_kwargs)
    return [
        (config, bonsai._latency(config, array, unroll_mode))
        for config in configs
    ]


def worker_eval_throughput(task: tuple) -> list[tuple]:
    """Evaluate Eq. 5 + throughput/latency for a chunk of configurations.

    ``task = (bonsai_kwargs, configs, array)``.  Mirrors the serial
    ``rank_by_throughput`` loop: configurations failing
    ``pipeline_can_sort`` are skipped (their objective is never
    computed, exactly like serial).  Returns
    ``(config, can_sort, throughput_bytes, latency_seconds)`` with
    ``None`` objectives for skipped configs.
    """
    from repro.core.optimizer import Bonsai

    bonsai_kwargs, configs, array = task
    bonsai = Bonsai(**bonsai_kwargs)
    results = []
    for config in configs:
        if not bonsai.pipeline_can_sort(config, array):
            results.append((config, False, None, None))
            continue
        results.append(
            (
                config,
                True,
                bonsai._throughput(config),
                bonsai._latency(config, array, "combined"),
            )
        )
    return results


# ----------------------------------------------------------------------
# benchmark scenarios (bench/runner.py)
# ----------------------------------------------------------------------
def worker_bench_scenario(task: tuple):
    """Run one benchmark scenario, naive/fast pair pinned together.

    ``task = (name, quick, seed)``.  Both engine timings of a scenario
    run inside the same worker (same core, same cache state), so the
    recorded speedup ratio stays honest under ``bench --jobs N``.
    Imported lazily: the runner imports this module, not vice versa.
    """
    import dataclasses

    from repro.bench.runner import run_scenario
    from repro.bench.scenarios import BY_NAME

    name, quick, seed = task
    scenario = BY_NAME[name]
    if seed is not None:
        scenario = dataclasses.replace(scenario, seed=seed)
    return run_scenario(scenario, quick=quick)


#: Names re-exported for the ``worker-entry`` check's allow-list tests.
WORKER_ENTRIES = (
    worker_merge_group,
    worker_sort_partition,
    worker_simulate_group,
    worker_simulate_group_shm,
    worker_simulate_unit,
    worker_simulate_unit_shm,
    worker_exchange_partition,
    worker_cluster_node_sort,
    worker_eval_latency,
    worker_eval_throughput,
    worker_bench_scenario,
)

__all__ = [
    "ShmArrays",
    "WORKER_ENTRIES",
    "worker_bench_scenario",
    "worker_cluster_node_sort",
    "worker_eval_latency",
    "worker_eval_throughput",
    "worker_exchange_partition",
    "worker_merge_group",
    "worker_simulate_group",
    "worker_simulate_group_shm",
    "worker_simulate_unit",
    "worker_simulate_unit_shm",
    "worker_sort_partition",
]
