"""Record formats and workload generation.

This package provides the data substrate of the reproduction:

* :mod:`repro.records.record` — fixed-width record formats (the paper
  evaluates 32-bit integers and 100-byte gensort records packed into
  16-byte key/value pairs).
* :mod:`repro.records.workloads` — deterministic workload generators
  (uniform random, sorted, reverse, nearly-sorted, duplicate-heavy, zipf).
* :mod:`repro.records.gensort` — a gensort-compatible 100-byte record
  generator following Jim Gray's sort-benchmark layout.
* :mod:`repro.records.keyhash` — the paper's hash of the 90-byte value to
  a 6-byte index so wide records fit a 16-byte merge path (§VI-A).
"""

from repro.records.record import (
    RecordFormat,
    U32,
    U64,
    U128,
    GENSORT_PACKED,
    key_dtype_for,
)
from repro.records.workloads import (
    WorkloadSpec,
    generate,
    uniform_random,
    sorted_ascending,
    sorted_descending,
    nearly_sorted,
    duplicate_heavy,
    zipfian,
    runs_of_sorted,
)
from repro.records.gensort import GensortRecord, generate_gensort, pack_records
from repro.records.keyhash import fnv1a_hash, hash_value_to_index
from repro.records.files import read_records, record_count, write_records
from repro.records.valsort import SortSummary, summarize, validate_sort

__all__ = [
    "RecordFormat",
    "U32",
    "U64",
    "U128",
    "GENSORT_PACKED",
    "key_dtype_for",
    "WorkloadSpec",
    "generate",
    "uniform_random",
    "sorted_ascending",
    "sorted_descending",
    "nearly_sorted",
    "duplicate_heavy",
    "zipfian",
    "runs_of_sorted",
    "GensortRecord",
    "generate_gensort",
    "pack_records",
    "fnv1a_hash",
    "hash_value_to_index",
    "read_records",
    "record_count",
    "write_records",
    "SortSummary",
    "summarize",
    "validate_sort",
]
