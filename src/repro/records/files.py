"""Binary record files: the on-disk interface of a real deployment.

The paper's system ingests arrays over PCIe from host memory or SSD
files; a downstream user of this library has the same need, so records
can be written to and memory-mapped from flat little-endian binary
files.  The layout is the simplest possible: ``n`` fixed-width keys,
no header — compatible with ``numpy.fromfile`` and with piping between
tools.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.errors import WorkloadError
from repro.records.record import RecordFormat, U32, key_dtype_for


def write_records(
    path: str | pathlib.Path, keys: np.ndarray, fmt: RecordFormat = U32
) -> int:
    """Write a key array as a flat little-endian binary file.

    Returns the number of bytes written.
    """
    keys = np.asarray(keys)
    dtype = key_dtype_for(fmt).newbyteorder("<")
    data = keys.astype(dtype, copy=False)
    path = pathlib.Path(path)
    data.tofile(path)
    return path.stat().st_size


def read_records(
    path: str | pathlib.Path, fmt: RecordFormat = U32, mmap: bool = False
) -> np.ndarray:
    """Read a flat binary record file (optionally memory-mapped)."""
    path = pathlib.Path(path)
    if not path.exists():
        raise WorkloadError(f"record file not found: {path}")
    dtype = key_dtype_for(fmt).newbyteorder("<")
    size = path.stat().st_size
    if size % dtype.itemsize:
        raise WorkloadError(
            f"{path} holds {size} bytes, not a multiple of the "
            f"{dtype.itemsize}-byte record key"
        )
    if mmap:
        return np.memmap(path, dtype=dtype, mode="r")
    return np.fromfile(path, dtype=dtype)


def record_count(path: str | pathlib.Path, fmt: RecordFormat = U32) -> int:
    """Number of records in a file without reading it."""
    path = pathlib.Path(path)
    if not path.exists():
        raise WorkloadError(f"record file not found: {path}")
    return path.stat().st_size // key_dtype_for(fmt).itemsize
