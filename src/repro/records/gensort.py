"""Gensort-compatible 100-byte record generation (§VI-A).

Jim Gray's sort benchmark defines 100-byte records: a 10-byte key followed
by a 90-byte value.  The reference ``gensort`` tool is not available
offline, so this module generates records with the same *layout* and the
same key distribution (uniform random 10-byte keys) from a deterministic
PRNG; the value encodes the record's ordinal so tests can verify that
payloads follow their keys through a sort.

The paper's trick for sorting these on a 16-byte datapath (§VI-A):

1. hash the 90-byte value to a 6-byte index,
2. sort packed 16-byte records of (10-byte key, 6-byte index),
3. after sorting, use the index to fetch the full payload.

:func:`pack_records` performs step 1-2's packing, returning both the packed
key array used by the merge path and the index→payload table used for
recovery.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.network import flims
from repro.records.keyhash import fnv1a_hash_batch, hash_value_to_index

KEY_BYTES = 10
VALUE_BYTES = 90
RECORD_BYTES = KEY_BYTES + VALUE_BYTES
INDEX_BYTES = 6
PACKED_BYTES = KEY_BYTES + INDEX_BYTES


@dataclass(frozen=True)
class GensortRecord:
    """One 100-byte benchmark record."""

    key: bytes
    value: bytes

    def __post_init__(self) -> None:
        if len(self.key) != KEY_BYTES:
            raise WorkloadError(f"gensort key must be {KEY_BYTES} bytes")
        if len(self.value) != VALUE_BYTES:
            raise WorkloadError(f"gensort value must be {VALUE_BYTES} bytes")

    def to_bytes(self) -> bytes:
        """The raw 100-byte record (key then value)."""
        return self.key + self.value

    @classmethod
    def from_bytes(cls, raw: bytes) -> "GensortRecord":
        """Parse one raw 100-byte record."""
        if len(raw) != RECORD_BYTES:
            raise WorkloadError(
                f"gensort record must be {RECORD_BYTES} bytes, got {len(raw)}"
            )
        return cls(key=raw[:KEY_BYTES], value=raw[KEY_BYTES:])


def generate_gensort(n_records: int, seed: int = 0) -> list[GensortRecord]:
    """Generate ``n_records`` deterministic benchmark records.

    Keys are uniform random bytes; values carry the zero-padded decimal
    ordinal followed by filler, mimicking gensort's printable payload.
    """
    if n_records < 0:
        raise WorkloadError(f"record count must be >= 0, got {n_records}")
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 256, size=(n_records, KEY_BYTES), dtype=np.uint8)
    records = []
    for ordinal in range(n_records):
        ordinal_text = f"{ordinal:020d}".encode("ascii")
        filler = bytes((ordinal * 7 + offset) % 256 for offset in range(VALUE_BYTES - 20))
        records.append(
            GensortRecord(key=keys[ordinal].tobytes(), value=ordinal_text + filler)
        )
    return records


def packed_sort_key(record: GensortRecord) -> int:
    """The 10-byte key as a big-endian integer (memcmp order)."""
    return int.from_bytes(record.key, "big")


def pack_records(
    records: list[GensortRecord],
) -> tuple[np.ndarray, np.ndarray, dict[int, list[int]]]:
    """Pack 100-byte records into the paper's 16-byte merge-path format.

    Returns
    -------
    sort_keys:
        ``uint64`` array of the *top 8 bytes* of each 10-byte key.  The
        merge path in this reproduction compares 64-bit prefixes; the
        2 low key bytes ride along in ``packed_low`` and break prefix
        ties during post-sort verification.
    packed_low:
        ``uint64`` array holding, per record, the 2 remaining key bytes
        concatenated with the 6-byte value index (the payload pointer).
    index_table:
        Maps a 6-byte value index to the ordinals of records carrying it,
        allowing payload recovery after the sort (collisions map to
        multiple ordinals, resolved by comparing values).

    Dispatches through the :mod:`repro.network.flims` backend switch:
    the vectorized codec packs whole batches at once, the scalar codec
    walks record by record; their outputs are bit-identical
    (``tests/records/test_gensort.py`` pins this across batch shapes).
    """
    if flims.use_numpy(len(records)):
        return _pack_records_vectorized(records)
    return _pack_records_scalar(records)


def _pack_records_scalar(
    records: list[GensortRecord],
) -> tuple[np.ndarray, np.ndarray, dict[int, list[int]]]:
    """Reference per-record packing loop (pure-Python fallback)."""
    sort_keys = np.empty(len(records), dtype=np.uint64)
    packed_low = np.empty(len(records), dtype=np.uint64)
    # defaultdict avoids setdefault's per-record empty-list allocation
    index_table: defaultdict[int, list[int]] = defaultdict(list)
    for ordinal, record in enumerate(records):
        key_int = packed_sort_key(record)
        sort_keys[ordinal] = key_int >> 16
        low_key_bytes = key_int & 0xFFFF
        value_index = hash_value_to_index(record.value, INDEX_BYTES)
        packed_low[ordinal] = (low_key_bytes << 48) | value_index
        index_table[value_index].append(ordinal)
    return sort_keys, packed_low, dict(index_table)


def _pack_records_vectorized(
    records: list[GensortRecord],
) -> tuple[np.ndarray, np.ndarray, dict[int, list[int]]]:
    """Whole-batch packing: one pass over keys, one over values.

    The 10-byte keys concatenate into an ``(n, 10)`` uint8 matrix; the
    top 8 bytes reinterpret as big-endian uint64 (exactly
    ``key_int >> 16`` of the scalar path) and the low 2 bytes combine
    with the batched FNV-1a value hashes into ``packed_low``.  Only the
    index-table fill remains a Python loop, and it does no hashing.
    """
    n_records = len(records)
    if not n_records:
        return _pack_records_scalar(records)
    keys = np.frombuffer(
        b"".join(record.key for record in records), dtype=np.uint8
    ).reshape(n_records, KEY_BYTES)
    sort_keys = (
        np.ascontiguousarray(keys[:, :8]).view(">u8").ravel().astype(np.uint64)
    )
    low_key_bytes = (keys[:, 8].astype(np.uint64) << np.uint64(8)) | keys[:, 9]
    values = np.frombuffer(
        b"".join(record.value for record in records), dtype=np.uint8
    ).reshape(n_records, VALUE_BYTES)
    value_indices = fnv1a_hash_batch(values) >> np.uint64(8 * (8 - INDEX_BYTES))
    packed_low = (low_key_bytes << np.uint64(48)) | value_indices
    index_table: defaultdict[int, list[int]] = defaultdict(list)
    for ordinal, value_index in enumerate(value_indices.tolist()):
        index_table[value_index].append(ordinal)
    return sort_keys, packed_low, dict(index_table)


def unpack_sorted(
    order: np.ndarray, records: list[GensortRecord]
) -> list[GensortRecord]:
    """Materialise full records in sorted order given a permutation."""
    return [records[int(position)] for position in order]
