"""Hashing wide values down to short indices (§VI-A).

The paper sorts 100-byte gensort records by "hashing the 90-byte value to a
6-byte index, which allows us to feed the 10-byte key and 6-byte value into
a 16-byte AMT sorter".  The index is not part of the sort order; it lets the
host recover the full record after the sort without streaming 90-byte
payloads through the merge tree.

We use FNV-1a, a small, endianness-free hash that is easy to replicate in
hardware, truncated to the requested index width.  Collisions are
acceptable: the index only needs to identify the payload with high
probability, and the host keeps a side table from index to payload offset
(see :func:`repro.records.gensort.pack_records`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_U64_MASK = (1 << 64) - 1


def fnv1a_hash(data: bytes) -> int:
    """64-bit FNV-1a hash of a byte string."""
    acc = _FNV_OFFSET
    for byte in data:
        acc ^= byte
        acc = (acc * _FNV_PRIME) & _U64_MASK
    return acc


def hash_value_to_index(value: bytes, index_bytes: int = 6) -> int:
    """Hash a record payload to an ``index_bytes``-wide integer index.

    Parameters
    ----------
    value:
        The record payload (the gensort 90-byte value).
    index_bytes:
        Width of the resulting index; the paper uses 6 bytes.
    """
    if not 1 <= index_bytes <= 8:
        raise ConfigurationError(
            f"index width must be between 1 and 8 bytes, got {index_bytes}"
        )
    return fnv1a_hash(value) >> (8 * (8 - index_bytes))


def fnv1a_hash_batch(values: np.ndarray) -> np.ndarray:
    """64-bit FNV-1a of each row of a ``(n, width)`` uint8 matrix.

    FNV-1a is sequential in the *byte* dimension but embarrassingly
    parallel in the *record* dimension: the accumulator update is
    applied column by column to all rows at once, so hashing ``n``
    equal-width payloads costs ``width`` vector operations instead of
    ``n * width`` scalar ones.  uint64 arithmetic wraps mod 2**64
    exactly like the masked scalar loop, so the outputs are
    bit-identical to :func:`fnv1a_hash` per row.
    """
    rows = values.astype(np.uint64)
    acc = np.full(rows.shape[0], _FNV_OFFSET, dtype=np.uint64)
    prime = np.uint64(_FNV_PRIME)
    for column in range(rows.shape[1]):
        acc ^= rows[:, column]
        acc *= prime
    return acc


def hash_values_to_indices(values: list[bytes], index_bytes: int = 6) -> np.ndarray:
    """Vector form of :func:`hash_value_to_index` returning ``uint64``."""
    out = np.empty(len(values), dtype=np.uint64)
    for position, value in enumerate(values):
        out[position] = hash_value_to_index(value, index_bytes)
    return out
