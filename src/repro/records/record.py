"""Fixed-width record formats.

The AMT architecture treats a record as an opaque fixed-width item whose
ordering is defined by an unsigned key prefix (§II: "any key and value width
up to 512 bits").  A :class:`RecordFormat` captures the key width and value
width in bytes; everything downstream (mergers, memory traffic, performance
equations) only needs the total record width ``r`` and, for functional
sorting, the key width.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Paper limit: records up to 512 bits wide (§II).
MAX_RECORD_BITS = 512


@dataclass(frozen=True)
class RecordFormat:
    """A fixed-width record with an unsigned integer sort key.

    Parameters
    ----------
    key_bytes:
        Width of the sort key in bytes.  Keys sort as unsigned
        big-endian integers, matching gensort's memcmp ordering.
    value_bytes:
        Width of the non-key payload in bytes (zero for pure-key records).
    name:
        Human-readable format name used in reports.
    """

    key_bytes: int
    value_bytes: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        if self.key_bytes <= 0:
            raise ConfigurationError(
                f"key width must be positive, got {self.key_bytes}"
            )
        if self.value_bytes < 0:
            raise ConfigurationError(
                f"value width must be non-negative, got {self.value_bytes}"
            )
        if self.width_bits > MAX_RECORD_BITS:
            raise ConfigurationError(
                f"record width {self.width_bits} bits exceeds the paper's "
                f"{MAX_RECORD_BITS}-bit datapath limit"
            )
        if not self.name:
            object.__setattr__(self, "name", f"u{self.width_bits}")

    @property
    def width_bytes(self) -> int:
        """Total record width ``r`` in bytes (Table II)."""
        return self.key_bytes + self.value_bytes

    @property
    def width_bits(self) -> int:
        """Total record width in bits."""
        return 8 * (self.key_bytes + self.value_bytes)

    @property
    def key_bits(self) -> int:
        """Sort-key width in bits."""
        return 8 * self.key_bytes

    @property
    def max_key(self) -> int:
        """Largest representable key value."""
        return (1 << self.key_bits) - 1

    def records_per_bus_word(self, bus_bits: int = 512) -> int:
        """How many records fit in one memory-bus word (§V, Fig. 7).

        The AWS F1 AXI interface is 512 bits wide; the packer/unpacker
        translate between bus words and records.
        """
        if bus_bits % 8:
            raise ConfigurationError(f"bus width must be whole bytes, got {bus_bits}")
        per_word = bus_bits // self.width_bits
        if per_word < 1:
            raise ConfigurationError(
                f"record of {self.width_bits} bits does not fit a "
                f"{bus_bits}-bit bus word"
            )
        return per_word

    def bytes_for(self, n_records: int) -> int:
        """Array footprint of ``n_records`` records."""
        if n_records < 0:
            raise ConfigurationError(f"record count must be >= 0, got {n_records}")
        return n_records * self.width_bytes

    def records_for(self, n_bytes: int) -> int:
        """Number of whole records that fit in ``n_bytes``."""
        if n_bytes < 0:
            raise ConfigurationError(f"byte count must be >= 0, got {n_bytes}")
        return n_bytes // self.width_bytes

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def key_dtype_for(fmt: RecordFormat) -> np.dtype:
    """Smallest numpy unsigned dtype that can hold this format's keys.

    Keys wider than 64 bits cannot be held in a single numpy integer; the
    gensort path hashes them down to a 16-byte packed record whose sort key
    is 64 bits or less, so this helper rejects wider keys explicitly.
    """
    if fmt.key_bits <= 8:
        return np.dtype(np.uint8)
    if fmt.key_bits <= 16:
        return np.dtype(np.uint16)
    if fmt.key_bits <= 32:
        return np.dtype(np.uint32)
    if fmt.key_bits <= 64:
        return np.dtype(np.uint64)
    raise ConfigurationError(
        f"keys wider than 64 bits ({fmt.key_bits} requested) must be hashed "
        "or compared bit-serially; see repro.records.keyhash"
    )


#: 32-bit integer records — the paper's primary benchmark format (§VI-A).
U32 = RecordFormat(key_bytes=4, value_bytes=0, name="u32")

#: 64-bit integer records.
U64 = RecordFormat(key_bytes=8, value_bytes=0, name="u64")

#: 128-bit records — Table VI's wide-record building blocks.
U128 = RecordFormat(key_bytes=8, value_bytes=8, name="u128")

#: Gensort records after the paper's packing: 10-byte key + 6-byte hashed
#: index = 16 bytes (§VI-A).  The key is truncated to its 8 high bytes for
#: numpy comparisons; ties are broken by the remaining bytes in the packed
#: representation (see :mod:`repro.records.gensort`).
GENSORT_PACKED = RecordFormat(key_bytes=10, value_bytes=6, name="gensort16")
